//! Deterministic open-loop workload generator for the service.
//!
//! The driver turns `(seed, epoch)` into a timeline of [`ServiceOp`]s:
//! exponential inter-arrival interactions per node, a disclosure and
//! query mix riding on top, malicious providers with degraded quality.
//! Determinism follows the sharded scenario engine's discipline — every
//! `(epoch, node)` pair draws from its own [`SimRng::stream`], and the
//! per-node op lists are merged in a fixed key order — so the timeline
//! is a pure function of the configuration, independent of how (or how
//! often) it is generated. That purity is what the
//! streaming-equals-batch and checkpoint-equals-uninterrupted tests
//! pin.

use crate::event::{ServiceEvent, ServiceOp};
use crate::host::{ApplyOutcome, HostError, ServiceHost};
use crate::replica::ReplicaSet;
use crate::service::{Staleness, TrustService};
use tsn_reputation::InteractionOutcome;
use tsn_simnet::{
    MembershipConfig, MembershipRuntime, NodeId, SimDuration, SimRng, SimTime, StreamDomain,
    MEMBERSHIP_SEED_SALT,
};

/// Stream-label domain for per-node provider quality, disjoint from the
/// per-`(epoch, node)` op streams (those use `epoch << 32 | node`, which
/// stays far below this bit). Registered as
/// [`StreamDomain::ServiceQuality`].
const QUALITY_STREAM_DOMAIN: u64 = StreamDomain::ServiceQuality.tag();

/// Stream-label domain for retry jitter, disjoint from both the op
/// streams and the quality stream. Registered as
/// [`StreamDomain::ServiceRetry`].
const RETRY_STREAM_DOMAIN: u64 = StreamDomain::ServiceRetry.tag();

/// Configuration of a [`ServiceDriver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Population size (must match the driven service).
    pub nodes: usize,
    /// Expected interactions per node per epoch (open-loop Poisson).
    pub arrival_rate: f64,
    /// Probability that an interaction also emits a disclosure event
    /// about the provider.
    pub disclosure_rate: f64,
    /// Probability that an interaction is followed by a trust query
    /// from the consumer (every other such query reads exposure
    /// instead).
    pub query_rate: f64,
    /// Fraction of nodes (the tail of the id space) acting maliciously:
    /// low-quality service, careless disclosures.
    pub malicious_fraction: f64,
    /// Root seed; the whole timeline is a pure function of it.
    pub seed: u64,
    /// Peer-sampling membership overlay: when set, each node's
    /// interaction partner is sampled from its bounded partial view
    /// (evolved one shuffle per epoch) instead of the global
    /// population. A node whose view is empty that epoch initiates
    /// nothing — the deterministic-skip semantics. `None` keeps the
    /// legacy global draw bit-identical.
    pub membership: Option<MembershipConfig>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            nodes: 100,
            arrival_rate: 2.0,
            disclosure_rate: 0.2,
            query_rate: 0.5,
            malicious_fraction: 0.1,
            seed: 42,
            membership: None,
        }
    }
}

/// Reads `var` from the environment through `parse`, leaving the
/// default when unset. An unparsable value is an error naming both the
/// variable and the offending value.
fn env_override<T>(
    var: &str,
    slot: &mut T,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<(), String> {
    if let Ok(raw) = std::env::var(var) {
        *slot = parse(&raw).ok_or_else(|| format!("invalid value for {var}: {raw:?}"))?;
    }
    Ok(())
}

impl DriverConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("driver needs at least 2 nodes (interactions need a partner)".into());
        }
        if !self.arrival_rate.is_finite() || self.arrival_rate <= 0.0 {
            return Err(format!(
                "arrival_rate must be positive, got {}",
                self.arrival_rate
            ));
        }
        for (name, v) in [
            ("disclosure_rate", self.disclosure_rate),
            ("query_rate", self.query_rate),
            ("malicious_fraction", self.malicious_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if let Some(m) = &self.membership {
            m.validate()?;
            if m.relays >= self.nodes {
                return Err("membership needs more nodes than relays".into());
            }
        }
        Ok(())
    }

    /// Builds a configuration from the defaults overridden by the
    /// `SERVICE_NODES`, `SERVICE_ARRIVALS`, `SERVICE_DISCLOSURES`,
    /// `SERVICE_QUERIES`, `SERVICE_MALICIOUS` and `SERVICE_SEED`
    /// environment variables.
    ///
    /// # Errors
    ///
    /// An unset variable falls back to the default; a set-but-invalid
    /// one is an error naming the variable and the value.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = DriverConfig::default();
        env_override("SERVICE_NODES", &mut cfg.nodes, |s| s.parse().ok())?;
        env_override("SERVICE_ARRIVALS", &mut cfg.arrival_rate, |s| {
            s.parse().ok()
        })?;
        env_override("SERVICE_DISCLOSURES", &mut cfg.disclosure_rate, |s| {
            s.parse().ok()
        })?;
        env_override("SERVICE_QUERIES", &mut cfg.query_rate, |s| s.parse().ok())?;
        env_override("SERVICE_MALICIOUS", &mut cfg.malicious_fraction, |s| {
            s.parse().ok()
        })?;
        env_override("SERVICE_SEED", &mut cfg.seed, |s| s.parse().ok())?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Whether `node` is in the malicious tail of the id space.
    pub fn is_malicious(&self, node: NodeId) -> bool {
        let honest = self.nodes - (self.nodes as f64 * self.malicious_fraction) as usize;
        node.index() >= honest
    }
}

/// Client-side retry discipline for operations a [`ServiceHost`]
/// bounces with [`HostError::Unavailable`]: bounded attempts,
/// exponential backoff, deterministic jitter.
///
/// The jitter draw comes from its own [`SimRng::stream`] keyed by
/// `(seed, op id, attempt)`, so a retried timeline replays bit-for-bit
/// — the point of jitter (decorrelating retry storms) survives without
/// giving up determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included; at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic draw from `[1 - jitter, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(10),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        if self.base_backoff == SimDuration::ZERO {
            return Err("base_backoff must be positive".into());
        }
        if self.max_backoff < self.base_backoff {
            return Err("max_backoff must be at least base_backoff".into());
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!("jitter must be in [0, 1], got {}", self.jitter));
        }
        Ok(())
    }

    /// The backoff before retry number `attempt + 1` of operation
    /// `op_id`: `base * 2^attempt`, capped at `max_backoff`, scaled by
    /// the deterministic jitter draw.
    pub fn backoff(&self, seed: u64, op_id: u64, attempt: u32) -> SimDuration {
        let doubled = self
            .base_backoff
            .as_micros()
            .saturating_mul(1u64 << attempt.min(20));
        let capped = doubled.min(self.max_backoff.as_micros());
        let label = RETRY_STREAM_DOMAIN | (op_id << 8) | u64::from(attempt & 0xff);
        let mut rng = SimRng::stream(seed, label);
        let scale = 1.0 - self.jitter + self.jitter * rng.gen_f64();
        SimDuration::from_micros((capped as f64 * scale) as u64)
    }
}

/// What came out of one [`ServiceDriver::drive_host`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostDriveReport {
    /// Operations the host acknowledged (fresh or retried).
    pub applied: u64,
    /// Retries scheduled after an `Unavailable` bounce.
    pub retries: u64,
    /// Operations abandoned: attempts exhausted, or still pending when
    /// the run ended.
    pub abandoned: u64,
    /// Queries answered from degraded (recovery-window) state.
    pub degraded_answers: u64,
}

/// What the fault-tolerant drive loop needs from its target: a lone
/// [`ServiceHost`] and a whole [`ReplicaSet`] present the same client
/// surface — apply-or-bounce plus a clock — so the retry discipline is
/// written once.
trait OpSink {
    /// The population the target serves.
    fn nodes(&self) -> usize;
    /// The target's epoch length.
    fn epoch_len(&self) -> SimDuration;
    /// The epoch the next drive starts from.
    fn start_epoch(&self) -> u64;
    /// One application attempt.
    fn apply_op(&mut self, op: &ServiceOp) -> Result<ApplyOutcome, HostError>;
    /// Clock advance (epoch commits ride on this).
    fn advance(&mut self, at: SimTime) -> Result<(), String>;
}

impl OpSink for ServiceHost {
    fn nodes(&self) -> usize {
        self.config().service.nodes
    }
    fn epoch_len(&self) -> SimDuration {
        self.config().service.epoch
    }
    fn start_epoch(&self) -> u64 {
        self.service().map_or(0, |s| s.epoch_index())
    }
    fn apply_op(&mut self, op: &ServiceOp) -> Result<ApplyOutcome, HostError> {
        self.apply(op)
    }
    fn advance(&mut self, at: SimTime) -> Result<(), String> {
        self.advance_to(at)
    }
}

impl OpSink for ReplicaSet {
    fn nodes(&self) -> usize {
        self.config().host.service.nodes
    }
    fn epoch_len(&self) -> SimDuration {
        self.config().host.service.epoch
    }
    fn start_epoch(&self) -> u64 {
        // The primary sequences everything, so its committed epoch is
        // the set's.
        self.primary_service().map_or(0, |s| s.epoch_index())
    }
    fn apply_op(&mut self, op: &ServiceOp) -> Result<ApplyOutcome, HostError> {
        self.apply(op)
    }
    fn advance(&mut self, at: SimTime) -> Result<(), String> {
        self.advance_to(at)
    }
}

/// Deterministic workload generator (see the module docs).
#[derive(Debug, Clone)]
pub struct ServiceDriver {
    config: DriverConfig,
}

impl ServiceDriver {
    /// Creates a driver.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error.
    pub fn new(config: DriverConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(ServiceDriver { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// `node`'s service quality as a provider — a pure function of
    /// `(seed, node)`, so every epoch sees the same provider behaviour.
    pub fn provider_quality(&self, node: NodeId) -> f64 {
        let mut rng = SimRng::stream(self.config.seed, QUALITY_STREAM_DOMAIN | u64::from(node.0));
        let base = if self.config.is_malicious(node) {
            0.1
        } else {
            0.9
        };
        // Small stable per-node spread, clamped into [0, 1].
        (base + 0.1 * (rng.gen_f64() - 0.5)).clamp(0.0, 1.0)
    }

    /// The overlay's view state as of `epoch`, or `None` without an
    /// overlay: a fresh runtime advanced `epoch + 1` shuffle rounds
    /// (everyone alive, everyone reachable — workload generation
    /// models the healthy overlay; faults live at the host layer).
    /// Pure in `(config, epoch)`, like every other timeline input.
    fn membership_at(&self, epoch: u64) -> Option<MembershipRuntime> {
        let config = self.config.membership?;
        let mut runtime = MembershipRuntime::new(
            self.config.nodes,
            config,
            self.config.seed ^ MEMBERSHIP_SEED_SALT,
        )
        // tsn-lint: allow(no-unwrap, "DriverConfig::validate checked the overlay config and the relay/population ratio at construction")
        .expect("membership config validated at driver construction");
        for _ in 0..=epoch {
            runtime.shuffle_round(|_| true, |_, _| true);
        }
        Some(runtime)
    }

    /// Generates epoch `epoch` of the timeline for a service whose
    /// epoch boundaries are given by `epoch_end`. Ops come back sorted
    /// by `(time, node, seq)` — the fixed merge order that makes the
    /// result independent of generation order. Returns an empty
    /// timeline for an epoch whose start has saturated to the horizon.
    pub fn ops_for_epoch(&self, service: &TrustService, epoch: u64) -> Vec<ServiceOp> {
        self.ops_for_epoch_len(service.config().epoch, epoch)
    }

    /// [`ServiceDriver::ops_for_epoch`] for callers that do not hold a
    /// live service — e.g. driving a [`ServiceHost`] whose service is
    /// mid-crash. `epoch_len` is the epoch length the timeline is laid
    /// out on.
    pub fn ops_for_epoch_len(&self, epoch_len: SimDuration, epoch: u64) -> Vec<ServiceOp> {
        let epoch_us = epoch_len.as_micros();
        let Some(start_us) = epoch_us.checked_mul(epoch) else {
            return Vec::new(); // at the horizon: nothing left to schedule
        };
        // The overlay's per-epoch view snapshot, re-derived from
        // scratch: `epoch + 1` shuffles over a fully-live population is
        // a pure function of `(seed, epoch)`, which keeps the whole
        // timeline one too — checkpoint/restore and re-generation
        // cannot drift. (Relay *faults* live at the host layer: ops
        // addressed at a downed node bounce and retry there.)
        let membership = self.membership_at(epoch);
        // Keyed ops: (at_us, node, seq) is the merge key.
        let mut keyed: Vec<(u64, u32, u32, ServiceOp)> = Vec::new();
        for node_idx in 0..self.config.nodes {
            let node = NodeId::from_index(node_idx);
            let mut rng = SimRng::stream(self.config.seed, (epoch << 32) | node_idx as u64);
            let mut seq: u32 = 0;
            // Open-loop Poisson arrivals inside the unit epoch.
            let mut t = rng.gen_exp(self.config.arrival_rate);
            while t < 1.0 {
                // Map the unit offset into micros, clamped inside the
                // epoch so the event commits with its own epoch.
                let offset = ((t * epoch_us as f64) as u64).min(epoch_us - 1);
                let at_us = start_us.saturating_add(offset);
                let at = SimTime::from_micros(at_us);
                // Pick a partner: from the node's partial view under
                // the overlay (views never contain self), else
                // uniformly from the population, skipping self.
                let partner = match membership.as_ref() {
                    Some(m) => match m.view(node).sample(&mut rng) {
                        Some(p) => p,
                        None => {
                            // Empty view: this node is isolated this
                            // epoch — deterministic skip (no draws
                            // consumed, so later arrivals of other
                            // nodes are unaffected).
                            t += rng.gen_exp(self.config.arrival_rate);
                            continue;
                        }
                    },
                    None => {
                        let other = rng.gen_range(0..self.config.nodes - 1);
                        let idx = if other >= node_idx { other + 1 } else { other };
                        NodeId::from_index(idx)
                    }
                };
                let quality = self.provider_quality(partner);
                let outcome = if rng.gen_bool(quality) {
                    InteractionOutcome::Success {
                        quality: (quality + 0.5 * rng.gen_f64()).min(1.0),
                    }
                } else {
                    InteractionOutcome::Failure
                };
                keyed.push((
                    at_us,
                    node.0,
                    seq,
                    ServiceOp::Ingest(ServiceEvent::Interaction {
                        rater: node,
                        ratee: partner,
                        outcome,
                        at,
                    }),
                ));
                seq += 1;
                if rng.gen_bool(self.config.disclosure_rate) {
                    let honest = !self.config.is_malicious(partner);
                    let respected = rng.gen_bool(if honest { 0.95 } else { 0.4 });
                    keyed.push((
                        at_us,
                        node.0,
                        seq,
                        ServiceOp::Ingest(ServiceEvent::Disclosure {
                            node: partner,
                            respected,
                            at,
                        }),
                    ));
                    seq += 1;
                }
                if rng.gen_bool(self.config.query_rate) {
                    // Alternate the query kind deterministically.
                    let op = if seq.is_multiple_of(2) {
                        ServiceOp::QueryTrust { node: partner, at }
                    } else {
                        ServiceOp::QueryExposure { node: partner, at }
                    };
                    keyed.push((at_us, node.0, seq, op));
                    seq += 1;
                }
                t += rng.gen_exp(self.config.arrival_rate);
            }
        }
        // The fixed-order merge: sort by key, strip the key.
        keyed.sort_unstable_by_key(|&(at, node, seq, _)| (at, node, seq));
        keyed.into_iter().map(|(_, _, _, op)| op).collect()
    }

    /// Drives `service` for `epochs` epochs from its current position:
    /// generates each epoch's timeline, applies it, and closes the
    /// epoch so its events commit. If the service clock already sits
    /// inside the open epoch (a query advanced it), ops scheduled
    /// before the clock are skipped — the clock is monotone, and a
    /// deterministic skip keeps "checkpoint, restore, continue"
    /// equal to "never checkpointed" (both sides see the same clock,
    /// so both skip the same ops).
    ///
    /// # Errors
    ///
    /// Propagates the first failing operation's error.
    pub fn drive(&self, service: &mut TrustService, epochs: u64) -> Result<(), String> {
        if self.config.nodes != service.config().nodes {
            return Err(format!(
                "driver is sized for {} nodes, service for {}",
                self.config.nodes,
                service.config().nodes
            ));
        }
        for _ in 0..epochs {
            let epoch = service.epoch_index();
            let ops = self.ops_for_epoch(service, epoch);
            let now = service.now();
            for op in &ops {
                if op.at() >= now {
                    service.apply(op)?;
                }
            }
            service.finish_epoch()?;
        }
        Ok(())
    }

    /// Drives a [`ServiceHost`] for `epochs` epochs with the client
    /// half of fault tolerance: fresh ops that bounce with
    /// [`HostError::Unavailable`] are re-stamped and retried under
    /// `policy` (bounded attempts, exponential backoff, deterministic
    /// jitter). Retries due at or before a fresh op's time are flushed
    /// first, so the applied order is a pure function of the
    /// configuration — a faulted run replays bit-for-bit. Retries still
    /// pending when the run ends are abandoned (and counted).
    ///
    /// On a fault-free host this applies exactly the [`drive`] timeline,
    /// so the final service state is bit-identical to an undriven
    /// [`TrustService`] fed the same epochs.
    ///
    /// # Errors
    ///
    /// Propagates hard rejections ([`HostError::Rejected`]) — the
    /// workload itself never produces one, so a rejection means the
    /// host and driver disagree about the configuration.
    ///
    /// [`drive`]: ServiceDriver::drive
    pub fn drive_host(
        &self,
        host: &mut ServiceHost,
        epochs: u64,
        policy: &RetryPolicy,
    ) -> Result<HostDriveReport, String> {
        self.drive_target(host, epochs, policy)
    }

    /// [`ServiceDriver::drive_host`] against a whole [`ReplicaSet`]:
    /// the same client-side retry discipline, with the sequencer's
    /// failover underneath — an op bounced by a dying primary is
    /// re-sent and lands on whichever member got promoted. On a
    /// fault-free set this applies exactly the [`drive`] timeline, so
    /// every member ends bit-identical to an undriven
    /// [`TrustService`] fed the same epochs.
    ///
    /// # Errors
    ///
    /// Propagates hard rejections, including divergence diagnoses.
    ///
    /// [`drive`]: ServiceDriver::drive
    pub fn drive_replicas(
        &self,
        set: &mut ReplicaSet,
        epochs: u64,
        policy: &RetryPolicy,
    ) -> Result<HostDriveReport, String> {
        self.drive_target(set, epochs, policy)
    }

    /// The shared fault-tolerant drive loop (see [`drive_host`]).
    ///
    /// [`drive_host`]: ServiceDriver::drive_host
    fn drive_target<T: OpSink>(
        &self,
        host: &mut T,
        epochs: u64,
        policy: &RetryPolicy,
    ) -> Result<HostDriveReport, String> {
        policy.validate()?;
        let host_nodes = host.nodes();
        if self.config.nodes != host_nodes {
            return Err(format!(
                "driver is sized for {} nodes, host for {host_nodes}",
                self.config.nodes
            ));
        }
        let epoch_len = host.epoch_len();
        let start_epoch = host.start_epoch();
        let mut report = HostDriveReport::default();
        // Pending retries ordered by (due, op id); ids are global so the
        // order is total.
        let mut pending: Vec<(SimTime, u64, u32, ServiceOp)> = Vec::new();
        let mut next_id: u64 = 0;
        for e in 0..epochs {
            let epoch = start_epoch + e;
            for op in self.ops_for_epoch_len(epoch_len, epoch) {
                self.flush_due_retries(host, policy, &mut pending, &mut report, op.at())?;
                let id = next_id;
                next_id += 1;
                self.submit(host, policy, &mut pending, &mut report, (id, 0, op))?;
            }
            let Some(end_us) = epoch_len.as_micros().checked_mul(epoch + 1) else {
                break; // at the horizon: nothing left to drive
            };
            let end = SimTime::from_micros(end_us);
            self.flush_due_retries(host, policy, &mut pending, &mut report, end)?;
            host.advance(end)?;
        }
        // Whatever is still queued never got acknowledged in-run.
        report.abandoned += pending.len() as u64;
        Ok(report)
    }

    /// Applies every pending retry due at or before `cutoff`, in
    /// `(due, id)` order. A retry that bounces again re-queues itself
    /// (with a later due time) and is picked up in the same flush if it
    /// still lands inside the cutoff.
    fn flush_due_retries<T: OpSink>(
        &self,
        host: &mut T,
        policy: &RetryPolicy,
        pending: &mut Vec<(SimTime, u64, u32, ServiceOp)>,
        report: &mut HostDriveReport,
        cutoff: SimTime,
    ) -> Result<(), String> {
        while let Some(&(due, _, _, _)) = pending.first() {
            if due > cutoff {
                return Ok(());
            }
            let (due, id, attempt, op) = pending.remove(0);
            let restamped = op.with_time(due);
            self.submit(host, policy, pending, report, (id, attempt, restamped))?;
        }
        Ok(())
    }

    /// One attempt of one op: apply, or schedule the next retry.
    /// `attempt` is the `(op id, attempt index, stamped op)` triple.
    fn submit<T: OpSink>(
        &self,
        host: &mut T,
        policy: &RetryPolicy,
        pending: &mut Vec<(SimTime, u64, u32, ServiceOp)>,
        report: &mut HostDriveReport,
        attempt: (u64, u32, ServiceOp),
    ) -> Result<(), String> {
        let (id, attempt, op) = attempt;
        match host.apply_op(&op) {
            Ok(outcome) => {
                report.applied += 1;
                let degraded = matches!(
                    outcome,
                    ApplyOutcome::Trust(r) if r.mode == Staleness::Degraded
                ) || matches!(
                    outcome,
                    ApplyOutcome::Exposure(r) if r.mode == Staleness::Degraded
                );
                if degraded {
                    report.degraded_answers += 1;
                }
                Ok(())
            }
            Err(HostError::Unavailable { retry_at, .. }) => {
                if attempt + 1 >= policy.max_attempts {
                    report.abandoned += 1;
                    return Ok(());
                }
                let backoff = policy.backoff(self.config.seed, id, attempt);
                let due = retry_at.max(op.at()).saturating_add(backoff);
                let key = (due, id);
                let pos = pending
                    .binary_search_by_key(&key, |&(d, i, _, _)| (d, i))
                    .unwrap_or_else(|p| p);
                pending.insert(pos, (due, id, attempt + 1, op));
                report.retries += 1;
                Ok(())
            }
            Err(HostError::Rejected(e)) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use tsn_simnet::SimDuration;

    fn service(nodes: usize) -> TrustService {
        TrustService::new(ServiceConfig {
            nodes,
            epoch: SimDuration::from_secs(60),
            ..ServiceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn validation_names_the_field() {
        let bad = DriverConfig {
            nodes: 1,
            ..DriverConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("nodes"));
        let bad = DriverConfig {
            arrival_rate: 0.0,
            ..DriverConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("arrival_rate"));
        let bad = DriverConfig {
            query_rate: 1.5,
            ..DriverConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("query_rate"));
    }

    #[test]
    fn timeline_is_deterministic_and_sorted() {
        let driver = ServiceDriver::new(DriverConfig::default()).unwrap();
        let svc = service(100);
        let a = driver.ops_for_epoch(&svc, 3);
        let b = driver.ops_for_epoch(&svc, 3);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same (seed, epoch) must give the same timeline");
        assert!(
            a.windows(2).all(|w| w[0].at() <= w[1].at()),
            "timeline must be time-sorted"
        );
        let other_epoch = driver.ops_for_epoch(&svc, 4);
        assert_ne!(a, other_epoch, "different epochs draw different streams");
    }

    #[test]
    fn seeds_change_the_timeline_but_not_its_shape() {
        let svc = service(100);
        let a = ServiceDriver::new(DriverConfig::default())
            .unwrap()
            .ops_for_epoch(&svc, 0);
        let b = ServiceDriver::new(DriverConfig {
            seed: 43,
            ..DriverConfig::default()
        })
        .unwrap()
        .ops_for_epoch(&svc, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn interactions_never_self_rate() {
        let driver = ServiceDriver::new(DriverConfig {
            nodes: 3,
            arrival_rate: 5.0,
            ..DriverConfig::default()
        })
        .unwrap();
        let svc = service(3);
        for epoch in 0..10 {
            for op in driver.ops_for_epoch(&svc, epoch) {
                if let ServiceOp::Ingest(ServiceEvent::Interaction { rater, ratee, .. }) = op {
                    assert_ne!(rater, ratee);
                }
            }
        }
    }

    #[test]
    fn membership_timeline_is_pure_and_view_constrained() {
        let config = DriverConfig {
            nodes: 30,
            arrival_rate: 3.0,
            membership: Some(MembershipConfig::default()),
            ..DriverConfig::default()
        };
        let driver = ServiceDriver::new(config).unwrap();
        let svc = service(30);
        let a = driver.ops_for_epoch(&svc, 2);
        let b = driver.ops_for_epoch(&svc, 2);
        assert!(!a.is_empty(), "healthy overlay generates work");
        assert_eq!(a, b, "overlay timeline is a pure function of (seed, epoch)");
        // Every interaction's partner must sit in the rater's view of
        // that epoch (the sampled snapshot is re-derivable).
        let views = driver.membership_at(2).expect("overlay attached");
        for op in &a {
            if let ServiceOp::Ingest(ServiceEvent::Interaction { rater, ratee, .. }) = op {
                assert_ne!(rater, ratee, "views never contain self");
                assert!(
                    views.view(*rater).contains(*ratee),
                    "partner {ratee} must be in {rater}'s view"
                );
            }
        }
        // And the overlay changes the timeline vs the global draw.
        let global = ServiceDriver::new(DriverConfig {
            membership: None,
            ..config
        })
        .unwrap()
        .ops_for_epoch(&svc, 2);
        assert_ne!(a, global);
    }

    #[test]
    fn membership_driver_still_drives_the_service() {
        let driver = ServiceDriver::new(DriverConfig {
            nodes: 30,
            arrival_rate: 3.0,
            membership: Some(MembershipConfig::default()),
            ..DriverConfig::default()
        })
        .unwrap();
        let mut svc = service(30);
        driver.drive(&mut svc, 4).unwrap();
        assert_eq!(svc.epoch_index(), 4);
        assert!(svc.stats().ingested > 0, "view-sampled work still lands");
    }

    #[test]
    fn malicious_tail_has_low_quality() {
        let driver = ServiceDriver::new(DriverConfig {
            nodes: 10,
            malicious_fraction: 0.2,
            ..DriverConfig::default()
        })
        .unwrap();
        assert!(driver.config().is_malicious(NodeId(9)));
        assert!(driver.config().is_malicious(NodeId(8)));
        assert!(!driver.config().is_malicious(NodeId(7)));
        assert!(driver.provider_quality(NodeId(9)) < 0.2);
        assert!(driver.provider_quality(NodeId(0)) > 0.8);
        assert_eq!(
            driver.provider_quality(NodeId(3)),
            driver.provider_quality(NodeId(3)),
            "quality is a pure function of (seed, node)"
        );
    }

    #[test]
    fn driving_commits_epochs_and_separates_populations() {
        let driver = ServiceDriver::new(DriverConfig {
            nodes: 50,
            arrival_rate: 4.0,
            malicious_fraction: 0.2,
            ..DriverConfig::default()
        })
        .unwrap();
        let mut svc = service(50);
        driver.drive(&mut svc, 5).unwrap();
        assert_eq!(svc.samples().len(), 5);
        assert_eq!(svc.epoch_index(), 5);
        assert!(svc.stats().ingested > 0);
        assert!(svc.stats().queries > 0);
        let scores = svc.scores();
        let honest: f64 = scores[..40].iter().sum::<f64>() / 40.0;
        let malicious: f64 = scores[40..].iter().sum::<f64>() / 10.0;
        assert!(
            honest > malicious,
            "honest mean {honest} must beat malicious mean {malicious}"
        );
    }

    #[test]
    fn driver_rejects_mismatched_population() {
        let driver = ServiceDriver::new(DriverConfig {
            nodes: 10,
            ..DriverConfig::default()
        })
        .unwrap();
        let mut svc = service(20);
        let err = driver.drive(&mut svc, 1).unwrap_err();
        assert!(err.contains("sized for 10"), "{err}");
    }

    #[test]
    fn horizon_epoch_generates_no_ops() {
        let driver = ServiceDriver::new(DriverConfig::default()).unwrap();
        let svc = service(100);
        assert!(driver.ops_for_epoch(&svc, u64::MAX).is_empty());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let policy = RetryPolicy::default();
        assert_eq!(
            policy.backoff(42, 7, 0),
            policy.backoff(42, 7, 0),
            "same (seed, op, attempt) must draw the same jitter"
        );
        assert_ne!(
            policy.backoff(42, 7, 0),
            policy.backoff(42, 8, 0),
            "different ops must decorrelate"
        );
        let base = policy.base_backoff.as_micros();
        let b0 = policy.backoff(42, 7, 0).as_micros();
        assert!(b0 >= base / 2 && b0 <= base, "jitter scales into [0.5, 1]");
        for attempt in 0..12 {
            assert!(policy.backoff(42, 7, attempt) <= policy.max_backoff);
        }
        // Deep attempts sit at the (jittered) ceiling, not overflow.
        assert!(policy.backoff(42, 7, 63).as_micros() >= policy.max_backoff.as_micros() / 2);
    }

    #[test]
    fn retry_policy_validation_names_the_field() {
        let bad = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().unwrap_err().contains("max_attempts"));
        let bad = RetryPolicy {
            jitter: 1.5,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().unwrap_err().contains("jitter"));
        let bad = RetryPolicy {
            max_backoff: SimDuration::ZERO,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().unwrap_err().contains("max_backoff"));
    }

    #[test]
    fn faultless_drive_host_matches_plain_drive_bit_for_bit() {
        let config = DriverConfig {
            nodes: 40,
            arrival_rate: 3.0,
            ..DriverConfig::default()
        };
        let driver = ServiceDriver::new(config).unwrap();
        let mut bare = service(40);
        driver.drive(&mut bare, 4).unwrap();
        let mut host = crate::ServiceHost::new(crate::HostConfig {
            service: bare.config().clone(),
            ..crate::HostConfig::default()
        })
        .unwrap();
        let report = driver
            .drive_host(&mut host, 4, &RetryPolicy::default())
            .unwrap();
        assert_eq!(report.retries, 0);
        assert_eq!(report.abandoned, 0);
        assert_eq!(report.degraded_answers, 0);
        let hosted = host.service().unwrap();
        assert_eq!(bare.now(), hosted.now());
        assert_eq!(bare.stats(), hosted.stats());
        assert_eq!(bare.samples(), hosted.samples());
        assert_eq!(
            bare.scores()
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            hosted
                .scores()
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.applied, bare.stats().ingested + bare.stats().queries);
    }

    #[test]
    fn drive_host_retries_through_a_scheduled_crash() {
        use tsn_simnet::{FaultInjector, FaultPlan};
        let config = DriverConfig {
            nodes: 30,
            arrival_rate: 2.0,
            ..DriverConfig::default()
        };
        let driver = ServiceDriver::new(config).unwrap();
        let mut host = crate::ServiceHost::new(crate::HostConfig {
            service: crate::ServiceConfig {
                nodes: 30,
                epoch: SimDuration::from_secs(60),
                ..crate::ServiceConfig::default()
            },
            recovery_grace: SimDuration::from_secs(5),
            ..crate::HostConfig::default()
        })
        .unwrap();
        // Crash mid-epoch-1, down for 20 s.
        host.attach_faults(
            FaultInjector::new(
                FaultPlan::service_crash(SimTime::from_secs(90), SimDuration::from_secs(20)),
                9,
            )
            .unwrap(),
        );
        let host_config = host.config().clone();
        let rerun_driver = driver.clone();
        let run = move || {
            let mut h = crate::ServiceHost::new(host_config.clone()).unwrap();
            h.attach_faults(
                FaultInjector::new(
                    FaultPlan::service_crash(SimTime::from_secs(90), SimDuration::from_secs(20)),
                    9,
                )
                .unwrap(),
            );
            let report = rerun_driver
                .drive_host(&mut h, 3, &RetryPolicy::default())
                .unwrap();
            (report, h)
        };
        let report = driver
            .drive_host(&mut host, 3, &RetryPolicy::default())
            .unwrap();
        assert_eq!(host.stats().crashes, 1);
        assert_eq!(host.stats().recoveries, 1);
        assert!(report.retries > 0, "downtime ops must be retried");
        assert!(report.applied > 0);
        assert!(
            report.degraded_answers > 0,
            "grace-window queries answer degraded"
        );
        // Nothing acknowledged was lost: the recovered service kept
        // serving and its clock reached the driven horizon.
        let svc = host.service().unwrap();
        assert_eq!(svc.now(), SimTime::from_secs(180));
        // The whole faulted run replays bit-for-bit.
        let (report2, host2) = run();
        assert_eq!(report, report2);
        let svc2 = host2.service().unwrap();
        assert_eq!(svc.stats(), svc2.stats());
        assert_eq!(
            svc.scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            svc2.scores()
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
