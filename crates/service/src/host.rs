//! The [`ServiceHost`]: a [`TrustService`] process plus its durable
//! storage, crash/recovery state machine, and fault hookup.
//!
//! The service itself is pure state; the host models the *process*
//! around it. It owns what survives a crash — a ring of recent
//! checkpoints and the write-ahead [`EventJournal`] — and the volatile
//! part that does not: the running [`TrustService`]. Crashes (explicit
//! or scheduled by a [`FaultPlan`]) drop the volatile part; recovery
//! rebuilds it as
//!
//! > newest checkpoint that passes its per-section CRCs
//! > + replay of the journal suffix from that checkpoint's cursor
//!
//! falling back checkpoint by checkpoint when the newest is corrupt
//! (each rejection is reported with the section that failed), and from
//! scratch — full journal replay — when none survives. Because every
//! acknowledged operation is journaled, recovery is lossless: the only
//! operations missing afterwards are ones no client ever got an
//! acknowledgement for (a torn tail), and those are the client's to
//! retry.
//!
//! # Bounded storage, bounded recovery
//!
//! The journal is segmented (see [`crate::journal`]): a checkpoint
//! embeds its replay cursor, recovery opens only the segments holding
//! records past that cursor (the [`RecoveryReport`] counts them), and
//! after each checkpoint write the host garbage-collects every sealed
//! segment no retained checkpoint can still need. GC is gated on the
//! whole ring being intact — a damaged generation may force recovery
//! to fall back, in the worst case to a from-scratch full replay, so
//! nothing is collected while one is stored. Together the two bounds
//! hold: recovery cost is proportional to data since the checkpoint,
//! and on-disk journal bytes stay bounded on a long-lived host.
//!
//! # Degraded reads
//!
//! While the host is in its post-restart grace window
//! ([`HostConfig::recovery_grace`]), queries answer **degraded**: from
//! the recovered committed state, read-only, marked
//! [`Staleness::Degraded`](crate::Staleness) — instead of blocking or
//! erroring. Ingests during the window (and everything while the
//! process is down) get [`HostError::Unavailable`] with an explicit
//! retry time; the client-side discipline lives in
//! [`ServiceDriver::drive_host`](crate::ServiceDriver::drive_host).
//!
//! Degraded reads deliberately bypass the journal and the service
//! clock/stats, so serving them changes nothing about the recovered
//! state's bit-identity.
//!
//! [`FaultPlan`]: tsn_simnet::FaultPlan

use crate::event::ServiceOp;
use crate::journal::{EventJournal, JournalRecord, DEFAULT_SEGMENT_BYTES};
use crate::service::{
    checkpoint_cursor, checkpoint_sections, ExposureQueryResult, IngestOutcome, ServiceConfig,
    TrustQueryResult, TrustService,
};
use tsn_simnet::{FaultInjector, FaultTarget, NodeId, SimDuration, SimTime};

/// Configuration of a [`ServiceHost`].
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// The hosted service.
    pub service: ServiceConfig,
    /// Whether to keep a write-ahead journal. Without it, recovery
    /// falls back to the newest checkpoint alone: the open epoch (and
    /// anything after the checkpoint) is lost.
    pub journal: bool,
    /// Write a checkpoint automatically every N epoch commits
    /// (0 = only explicit [`ServiceHost::checkpoint_now`] calls).
    pub checkpoint_every_epochs: u64,
    /// How many checkpoints the storage ring retains (at least 1; the
    /// default 2 is what makes fallback-from-corruption possible).
    pub retain_checkpoints: usize,
    /// Degraded-query window after a restart: queries answer from the
    /// recovered state marked degraded, ingests wait. Zero skips the
    /// window entirely (restart goes straight to `Up`).
    pub recovery_grace: SimDuration,
    /// Journal segment seal threshold in bytes (see
    /// [`crate::journal`]): smaller segments mean finer-grained GC and
    /// tighter recovery bounds, at more per-segment header overhead.
    pub journal_segment_bytes: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            service: ServiceConfig::default(),
            journal: true,
            checkpoint_every_epochs: 1,
            retain_checkpoints: 2,
            recovery_grace: SimDuration::ZERO,
            journal_segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

impl HostConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the service's validation error, or a description of an
    /// invalid host field.
    pub fn validate(&self) -> Result<(), String> {
        self.service.validate()?;
        if self.retain_checkpoints == 0 {
            return Err("retain_checkpoints must be at least 1".into());
        }
        Ok(())
    }
}

/// The host's process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// Serving normally.
    Up,
    /// Crashed; nothing answers until the restart time.
    Down,
    /// Restarted and recovered, inside the grace window: queries answer
    /// degraded, ingests wait.
    Recovering,
}

/// Why an operation could not be applied right now.
#[derive(Debug, Clone, PartialEq)]
pub enum HostError {
    /// The process is down or still in its recovery window. Retry at
    /// (or after) `retry_at`.
    Unavailable {
        /// Earliest time a retry can succeed.
        retry_at: SimTime,
        /// Which unavailability this is ("down" or "recovering").
        reason: &'static str,
    },
    /// A hard rejection from the service (invalid node, clock rewind,
    /// …) — retrying the same operation cannot succeed.
    Rejected(String),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Unavailable { retry_at, reason } => write!(
                f,
                "service unavailable ({reason}); retry at {}us",
                retry_at.as_micros()
            ),
            HostError::Rejected(e) => write!(f, "operation rejected: {e}"),
        }
    }
}

/// What applying an operation produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApplyOutcome {
    /// An ingest was staged (or partition-rejected).
    Ingested(IngestOutcome),
    /// A trust query's answer.
    Trust(TrustQueryResult),
    /// An exposure query's answer.
    Exposure(ExposureQueryResult),
}

/// Lifetime counters of a host (fault and recovery accounting; the
/// service's own counters live in
/// [`ServiceStats`](crate::ServiceStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Crashes suffered (explicit or fault-scheduled).
    pub crashes: u64,
    /// Recoveries completed.
    pub recoveries: u64,
    /// Journal records replayed across all recoveries.
    pub journal_replays: u64,
    /// Checkpoints written to storage.
    pub checkpoints_written: u64,
    /// Recoveries that had to fall back past a corrupt checkpoint.
    pub checkpoint_fallbacks: u64,
    /// Storage faults injected into checkpoint writes.
    pub storage_faults: u64,
    /// Queries answered degraded during recovery windows.
    pub degraded_queries: u64,
    /// Operations bounced with [`HostError::Unavailable`].
    pub unavailable_rejections: u64,
    /// Sealed journal segments garbage-collected behind the
    /// checkpoint ring.
    pub journal_segments_gced: u64,
}

/// How one recovery went.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Checkpoints rejected before one restored (0 = newest was fine).
    pub fallbacks: u64,
    /// The rejection error of each corrupt checkpoint, newest first —
    /// each names the section that failed its CRC.
    pub corrupt: Vec<String>,
    /// Whether recovery started from a fresh service because no stored
    /// checkpoint was usable.
    pub from_scratch: bool,
    /// Journal records replayed on top of the restored state.
    pub replayed: u64,
    /// Whether the journal had a torn tail (one unacknowledged
    /// operation was discarded).
    pub torn_tail: bool,
    /// Journal segments actually opened (header verified + body
    /// scanned) by the replay — the bounded-recovery measure: with
    /// checkpoints every E epochs this stays proportional to E, never
    /// to the service's age.
    pub segments_opened: usize,
    /// Live journal segments skipped because they sit wholly below the
    /// checkpoint's cursor.
    pub segments_skipped: usize,
    /// The service clock after recovery.
    pub recovered_to: SimTime,
}

/// One checkpoint generation in the host's storage ring.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCheckpoint {
    /// The journal cursor the generation replays from (0 when the
    /// clock section could not be read — such a generation also grades
    /// as not intact).
    pub cursor: u64,
    /// Whether every section CRC held after the write, storage faults
    /// included. Only an all-intact ring allows journal GC: a damaged
    /// generation may force recovery to fall back — in the worst case
    /// to a from-scratch full replay that needs the whole journal.
    pub intact: bool,
    /// The stored checkpoint bytes.
    pub bytes: Vec<u8>,
}

/// Grades freshly stored checkpoint bytes: the embedded replay cursor
/// and whether every section CRC holds.
fn grade_checkpoint(bytes: &[u8]) -> (u64, bool) {
    let intact = checkpoint_sections(bytes).is_ok_and(|s| s.iter().all(|x| x.crc_ok));
    match checkpoint_cursor(bytes) {
        Ok(cursor) => (cursor, intact),
        Err(_) => (0, false),
    }
}

/// A crash-tolerant process around a [`TrustService`] (see the module
/// docs).
#[derive(Debug)]
pub struct ServiceHost {
    config: HostConfig,
    /// The volatile part: `None` while crashed.
    service: Option<TrustService>,
    /// Durable storage: recent checkpoint generations, newest last.
    checkpoints: Vec<StoredCheckpoint>,
    /// Durable storage: the segmented write-ahead journal.
    journal: EventJournal,
    injector: Option<FaultInjector>,
    /// Which process-fault schedule in the injector's plan is ours
    /// (a lone host is [`FaultTarget::Service`]; replica-set members
    /// each get their own [`FaultTarget::Replica`]).
    fault_target: FaultTarget,
    state: HostState,
    /// While `Down`: when the restart fires ([`SimTime::MAX`] = only an
    /// explicit [`ServiceHost::restart`] brings it back).
    down_until: SimTime,
    /// While `Recovering`: when the grace window ends.
    grace_until: SimTime,
    /// Where the fault schedule scan resumes.
    crash_cursor: SimTime,
    /// Checkpoint write index (labels storage-fault draws).
    writes: u64,
    /// Epoch index at the last automatic checkpoint.
    last_checkpoint_epoch: u64,
    stats: HostStats,
    last_recovery: Option<RecoveryReport>,
}

impl ServiceHost {
    /// Creates a host with a fresh service at sim time zero.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error.
    pub fn new(config: HostConfig) -> Result<Self, String> {
        config.validate()?;
        let service = TrustService::new(config.service.clone())?;
        Ok(ServiceHost {
            service: Some(service),
            checkpoints: Vec::new(),
            journal: EventJournal::with_segment_bytes(config.journal_segment_bytes),
            injector: None,
            fault_target: FaultTarget::Service,
            state: HostState::Up,
            down_until: SimTime::MAX,
            grace_until: SimTime::ZERO,
            crash_cursor: SimTime::ZERO,
            writes: 0,
            last_checkpoint_epoch: 0,
            stats: HostStats::default(),
            last_recovery: None,
            config,
        })
    }

    /// Builds a host in the [`HostState::Down`] state from surviving
    /// storage — stored checkpoint generations (oldest first, as
    /// [`ServiceHost::stored_checkpoints`] returns them) plus the
    /// journal — with no running service. [`ServiceHost::restart`] then
    /// runs the real recovery path: newest valid checkpoint + segment
    /// suffix replay. This is how externally persisted storage (e.g.
    /// files on disk) is re-hosted.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error.
    pub fn from_storage(
        config: HostConfig,
        checkpoints: Vec<Vec<u8>>,
        journal: EventJournal,
    ) -> Result<Self, String> {
        config.validate()?;
        let checkpoints = checkpoints
            .into_iter()
            .map(|bytes| {
                let (cursor, intact) = grade_checkpoint(&bytes);
                StoredCheckpoint {
                    cursor,
                    intact,
                    bytes,
                }
            })
            .collect();
        Ok(ServiceHost {
            service: None,
            checkpoints,
            journal,
            injector: None,
            fault_target: FaultTarget::Service,
            state: HostState::Down,
            down_until: SimTime::MAX,
            grace_until: SimTime::ZERO,
            crash_cursor: SimTime::ZERO,
            writes: 0,
            last_checkpoint_epoch: 0,
            stats: HostStats::default(),
            last_recovery: None,
            config,
        })
    }

    /// Attaches a fault injector: its process faults crash this host on
    /// schedule, its storage faults corrupt checkpoint writes. (Message
    /// faults are the network's job —
    /// [`Network::attach_faults`](tsn_simnet::Network::attach_faults).)
    pub fn attach_faults(&mut self, injector: FaultInjector) {
        self.attach_faults_for(injector, FaultTarget::Service);
    }

    /// Like [`ServiceHost::attach_faults`], but scoping the process
    /// faults to `target` — how a replica set hands each member its own
    /// crash schedule ([`FaultTarget::Replica`]) out of one shared
    /// plan.
    pub fn attach_faults_for(&mut self, injector: FaultInjector, target: FaultTarget) {
        self.injector = Some(injector);
        self.fault_target = target;
    }

    /// The configuration in use.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// The running service (`None` while crashed). Degraded reads and
    /// state comparisons go through here.
    pub fn service(&self) -> Option<&TrustService> {
        self.service.as_ref()
    }

    /// The current process state.
    pub fn state(&self) -> HostState {
        self.state
    }

    /// Fault and recovery counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// The stored checkpoint generations, newest last (diagnostics,
    /// persistence, tests).
    pub fn stored_checkpoints(&self) -> &[StoredCheckpoint] {
        &self.checkpoints
    }

    /// While down: the scheduled restart time ([`SimTime::MAX`] when
    /// only an explicit [`ServiceHost::restart`] brings it back).
    /// `None` when not down.
    pub fn down_until(&self) -> Option<SimTime> {
        (self.state == HostState::Down).then_some(self.down_until)
    }

    /// Test support: simulates a crash **during** a checkpoint write by
    /// truncating the newest stored generation to its first `len`
    /// bytes — a torn, partial write left on disk. The rest of the ring
    /// is untouched; recovery must skip the damaged generation via the
    /// newest→oldest fallback. Returns `false` when the ring is empty.
    pub fn tear_newest_checkpoint(&mut self, len: usize) -> bool {
        let Some(stored) = self.checkpoints.last_mut() else {
            return false;
        };
        stored.bytes.truncate(len);
        let (cursor, intact) = grade_checkpoint(&stored.bytes);
        stored.cursor = cursor;
        stored.intact = intact;
        true
    }

    /// The write-ahead journal (diagnostics and tests).
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// How the most recent recovery went, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Processes every scheduled state transition at or before `at`:
    /// fault-plan crashes, restarts, grace-window expiry.
    ///
    /// # Errors
    ///
    /// Propagates recovery failures (these are fatal: storage itself
    /// was unusable).
    pub fn tick(&mut self, at: SimTime) -> Result<(), String> {
        loop {
            match self.state {
                HostState::Up => {
                    let next = self
                        .injector
                        .as_ref()
                        .and_then(|i| i.next_crash(self.fault_target, self.crash_cursor));
                    match next {
                        Some(fault) if fault.at <= at => {
                            self.crash_at(fault.at, fault.restart_at());
                        }
                        _ => return Ok(()),
                    }
                }
                HostState::Down => {
                    if self.down_until > at {
                        return Ok(());
                    }
                    let restart_at = self.down_until;
                    self.recover(restart_at)?;
                }
                HostState::Recovering => {
                    if self.grace_until > at {
                        return Ok(());
                    }
                    self.state = HostState::Up;
                }
            }
        }
    }

    /// Crashes the process at `at`, losing all volatile state. It stays
    /// down until an explicit [`ServiceHost::restart`].
    pub fn crash(&mut self, at: SimTime) {
        self.crash_at(at, SimTime::MAX);
    }

    /// Crashes at `at` **mid-journal-append**: the most recent record
    /// is left half-written on storage (torn tail), exactly as if the
    /// process died inside the write. That operation was never
    /// acknowledged; recovery discards it and the client retries.
    pub fn crash_torn(&mut self, at: SimTime) {
        self.journal.tear_last_record();
        self.crash_at(at, SimTime::MAX);
    }

    fn crash_at(&mut self, at: SimTime, restart_at: SimTime) {
        self.service = None;
        self.state = HostState::Down;
        self.down_until = restart_at;
        self.stats.crashes += 1;
        // The next fault-schedule scan starts strictly after this crash.
        self.crash_cursor = at.saturating_add(SimDuration::from_micros(1));
    }

    /// Restarts a crashed process at `at`: recovery (checkpoint +
    /// journal replay) runs immediately; the grace window, if
    /// configured, follows.
    ///
    /// # Errors
    ///
    /// Fails when the host is not down, or when recovery itself fails.
    pub fn restart(&mut self, at: SimTime) -> Result<&RecoveryReport, String> {
        if self.state != HostState::Down {
            return Err("restart: the host is not down".into());
        }
        self.recover(at)?;
        // tsn-lint: allow(no-unwrap, "recover() stores last_recovery before returning on every path, including full replay")
        Ok(self.last_recovery.as_ref().expect("recover just ran"))
    }

    /// Recovery proper: newest valid checkpoint + segment-suffix
    /// replay from its cursor.
    fn recover(&mut self, at: SimTime) -> Result<(), String> {
        let mut corrupt = Vec::new();
        let mut restored: Option<(TrustService, u64)> = None;
        for stored in self.checkpoints.iter().rev() {
            match TrustService::restore_with_cursor(&stored.bytes) {
                Ok(pair) => {
                    restored = Some(pair);
                    break;
                }
                Err(e) => corrupt.push(e),
            }
        }
        let fallbacks = corrupt.len() as u64;
        let from_scratch = restored.is_none();
        let (mut service, cursor) = match restored {
            Some(pair) => pair,
            // No usable checkpoint: start fresh and replay everything.
            None => (TrustService::new(self.config.service.clone())?, 0),
        };
        // The shard knob is execution-only and never serialized; bring
        // the recovered service back to its configured parallelism.
        service.set_commit_shards(self.config.service.commit_shards);
        let replay = self
            .journal
            .replay_from(cursor)
            .map_err(|e| format!("recovery is unrecoverable: {e}"))?;
        let mut replayed = 0;
        for record in &replay.records {
            match record {
                JournalRecord::Op(op) => service
                    .apply(op)
                    .map_err(|e| format!("journal replay failed at record {cursor}: {e}"))?,
                JournalRecord::Advance { at } => service
                    .advance_to(*at)
                    .map_err(|e| format!("journal replay failed at record {cursor}: {e}"))?,
            }
            replayed += 1;
        }
        if replay.torn {
            // Drop the torn tail from storage: it was never acknowledged.
            self.journal.discard_torn_tail();
        }
        self.stats.recoveries += 1;
        self.stats.journal_replays += replayed;
        self.stats.checkpoint_fallbacks += fallbacks;
        self.last_recovery = Some(RecoveryReport {
            fallbacks,
            corrupt,
            from_scratch,
            replayed,
            torn_tail: replay.torn,
            segments_opened: replay.segments_opened,
            segments_skipped: replay.segments_skipped,
            recovered_to: service.now(),
        });
        self.service = Some(service);
        self.down_until = SimTime::MAX;
        if self.config.recovery_grace > SimDuration::ZERO {
            self.state = HostState::Recovering;
            self.grace_until = at.saturating_add(self.config.recovery_grace);
        } else {
            self.state = HostState::Up;
        }
        Ok(())
    }

    /// Writes a checkpoint to the storage ring (subject to any injected
    /// storage faults), embedding the journal cursor.
    ///
    /// # Errors
    ///
    /// Fails while the service is not up, or when the mechanism does
    /// not support snapshots.
    pub fn checkpoint_now(&mut self, at: SimTime) -> Result<(), String> {
        if self.state != HostState::Up {
            return Err("checkpoint: the service is not up".into());
        }
        // tsn-lint: allow(no-unwrap, "state-machine invariant: Up is only entered with a resident service (boot/recover set both)")
        let service = self.service.as_ref().expect("up implies a service");
        let mut bytes = service.checkpoint_with_cursor(self.journal.records())?;
        if let Some(injector) = &self.injector {
            let previous = self.checkpoints.last().map(|c| c.bytes.as_slice());
            let applied = injector.corrupt_checkpoint(&mut bytes, previous, at, self.writes);
            self.stats.storage_faults += applied.len() as u64;
        }
        self.writes += 1;
        let (cursor, intact) = grade_checkpoint(&bytes);
        self.checkpoints.push(StoredCheckpoint {
            cursor,
            intact,
            bytes,
        });
        while self.checkpoints.len() > self.config.retain_checkpoints {
            self.checkpoints.remove(0);
        }
        self.stats.checkpoints_written += 1;
        // Sealed segments below every retained cursor can never be
        // replayed again; collecting them is what keeps journal bytes
        // bounded. Gated on an all-intact ring (see the module docs).
        if let Some(floor) = self.journal_gc_floor() {
            self.stats.journal_segments_gced += self.journal.gc_before(floor) as u64;
        }
        self.last_checkpoint_epoch = self
            .service
            .as_ref()
            // tsn-lint: allow(no-unwrap, "state-machine invariant: Up is only entered with a resident service (boot/recover set both)")
            .expect("up implies a service")
            .epoch_index();
        Ok(())
    }

    /// The journal cursor below which no retained checkpoint can ever
    /// replay — `None` while GC is forbidden: an empty ring, or any
    /// stored generation that is damaged (recovery might then fall back
    /// past every cursor, down to a from-scratch full replay).
    fn journal_gc_floor(&self) -> Option<u64> {
        if self.checkpoints.is_empty() || self.checkpoints.iter().any(|c| !c.intact) {
            return None;
        }
        self.checkpoints.iter().map(|c| c.cursor).min()
    }

    /// After a successful apply/advance: auto-checkpoint if enough
    /// epochs have committed since the last one.
    fn maybe_auto_checkpoint(&mut self, at: SimTime) -> Result<(), String> {
        let every = self.config.checkpoint_every_epochs;
        if every == 0 || self.state != HostState::Up {
            return Ok(());
        }
        // tsn-lint: allow(no-unwrap, "state-machine invariant: Up is only entered with a resident service (boot/recover set both)")
        let epoch = self.service.as_ref().expect("up").epoch_index();
        if epoch >= self.last_checkpoint_epoch + every {
            self.checkpoint_now(at)?;
        }
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<(), HostError> {
        if node.index() >= self.config.service.nodes {
            return Err(HostError::Rejected(format!(
                "node {} out of range (service tracks {} nodes)",
                node.0, self.config.service.nodes
            )));
        }
        Ok(())
    }

    /// Pre-validates an op so a rejected one never touches the service
    /// clock (which would make journal replay diverge).
    fn validate_op(&self, op: &ServiceOp) -> Result<(), HostError> {
        match *op {
            ServiceOp::Ingest(crate::ServiceEvent::Interaction { rater, ratee, .. }) => {
                self.check_node(rater)?;
                self.check_node(ratee)
            }
            ServiceOp::Ingest(crate::ServiceEvent::Disclosure { node, .. }) => {
                self.check_node(node)
            }
            ServiceOp::QueryTrust { node, .. } | ServiceOp::QueryExposure { node, .. } => {
                self.check_node(node)
            }
        }
    }

    /// Applies one operation at its own timestamp, running any due
    /// state transitions first. Journals the operation once the service
    /// acknowledged it.
    ///
    /// # Errors
    ///
    /// [`HostError::Unavailable`] while down (all ops) or recovering
    /// (ingests only — queries answer degraded); [`HostError::Rejected`]
    /// for hard service errors. Fatal recovery failures also surface as
    /// `Rejected`.
    pub fn apply(&mut self, op: &ServiceOp) -> Result<ApplyOutcome, HostError> {
        let at = op.at();
        self.tick(at).map_err(HostError::Rejected)?;
        match self.state {
            HostState::Down => {
                self.stats.unavailable_rejections += 1;
                Err(HostError::Unavailable {
                    retry_at: self.down_until,
                    reason: "down",
                })
            }
            HostState::Recovering => match *op {
                ServiceOp::QueryTrust { node, .. } => {
                    // tsn-lint: allow(no-unwrap, "state-machine invariant: Recovering carries the service the recovery path just restored")
                    let service = self.service.as_ref().expect("recovering has a service");
                    let answer = service
                        .degraded_trust(node, at)
                        .map_err(HostError::Rejected)?;
                    self.stats.degraded_queries += 1;
                    Ok(ApplyOutcome::Trust(answer))
                }
                ServiceOp::QueryExposure { node, .. } => {
                    // tsn-lint: allow(no-unwrap, "state-machine invariant: Recovering carries the service the recovery path just restored")
                    let service = self.service.as_ref().expect("recovering has a service");
                    let answer = service
                        .degraded_exposure(node, at)
                        .map_err(HostError::Rejected)?;
                    self.stats.degraded_queries += 1;
                    Ok(ApplyOutcome::Exposure(answer))
                }
                ServiceOp::Ingest(_) => {
                    self.stats.unavailable_rejections += 1;
                    Err(HostError::Unavailable {
                        retry_at: self.grace_until,
                        reason: "recovering",
                    })
                }
            },
            HostState::Up => {
                self.validate_op(op)?;
                // tsn-lint: allow(no-unwrap, "state-machine invariant: Up is only entered with a resident service (boot/recover set both)")
                let service = self.service.as_mut().expect("up implies a service");
                let outcome = match *op {
                    ServiceOp::Ingest(event) => {
                        ApplyOutcome::Ingested(service.ingest(event).map_err(HostError::Rejected)?)
                    }
                    ServiceOp::QueryTrust { node, at } => ApplyOutcome::Trust(
                        service.query_trust(node, at).map_err(HostError::Rejected)?,
                    ),
                    ServiceOp::QueryExposure { node, at } => ApplyOutcome::Exposure(
                        service
                            .query_exposure(node, at)
                            .map_err(HostError::Rejected)?,
                    ),
                };
                if self.config.journal {
                    self.journal.append(&JournalRecord::Op(*op));
                }
                self.maybe_auto_checkpoint(at)
                    .map_err(HostError::Rejected)?;
                Ok(outcome)
            }
        }
    }

    /// Advances the service clock (committing crossed epochs) when the
    /// service is up; while down or recovering, only the host's own
    /// transitions run — the service catches up with the next applied
    /// operation.
    ///
    /// # Errors
    ///
    /// Propagates fatal recovery/service errors.
    pub fn advance_to(&mut self, at: SimTime) -> Result<(), String> {
        self.tick(at)?;
        if self.state != HostState::Up {
            return Ok(());
        }
        // tsn-lint: allow(no-unwrap, "state-machine invariant: Up is only entered with a resident service (boot/recover set both)")
        let service = self.service.as_mut().expect("up implies a service");
        if at <= service.now() {
            return Ok(());
        }
        service.advance_to(at)?;
        if self.config.journal {
            self.journal.append(&JournalRecord::Advance { at });
        }
        self.maybe_auto_checkpoint(at)
    }

    /// Closes the service's open epoch (when up): advance to its
    /// boundary, committing it.
    ///
    /// # Errors
    ///
    /// Propagates fatal recovery/service errors.
    pub fn finish_epoch(&mut self) -> Result<(), String> {
        let Some(service) = self.service.as_ref() else {
            return Ok(());
        };
        let end = service.epoch_end(service.epoch_index());
        if end == SimTime::MAX {
            return Ok(());
        }
        self.advance_to(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServiceEvent;
    use tsn_reputation::InteractionOutcome;
    use tsn_simnet::FaultPlan;

    fn host() -> ServiceHost {
        ServiceHost::new(HostConfig {
            service: ServiceConfig {
                nodes: 4,
                epoch: SimDuration::from_secs(10),
                ..ServiceConfig::default()
            },
            ..HostConfig::default()
        })
        .unwrap()
    }

    fn ingest(rater: u32, ratee: u32, at_secs: u64) -> ServiceOp {
        ServiceOp::Ingest(ServiceEvent::Interaction {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: InteractionOutcome::Success { quality: 1.0 },
            at: SimTime::from_secs(at_secs),
        })
    }

    fn query(node: u32, at_secs: u64) -> ServiceOp {
        ServiceOp::QueryTrust {
            node: NodeId(node),
            at: SimTime::from_secs(at_secs),
        }
    }

    #[test]
    fn crash_then_restart_recovers_acknowledged_state_exactly() {
        let mut reference = host();
        let mut crashing = host();
        let ops = [
            ingest(0, 1, 1),
            ingest(1, 2, 3),
            query(1, 5),
            ingest(2, 3, 12), // crosses the first epoch boundary
            query(2, 14),
        ];
        for op in &ops {
            reference.apply(op).unwrap();
            crashing.apply(op).unwrap();
        }
        crashing.crash(SimTime::from_secs(15));
        assert_eq!(crashing.state(), HostState::Down);
        assert!(crashing.service().is_none());
        let err = crashing.apply(&query(1, 16)).unwrap_err();
        assert!(matches!(err, HostError::Unavailable { reason: "down", .. }));
        let report = crashing.restart(SimTime::from_secs(17)).unwrap();
        assert!(!report.from_scratch, "an auto-checkpoint existed");
        assert_eq!(report.fallbacks, 0);
        assert!(
            report.replayed > 0,
            "post-checkpoint ops came from the journal"
        );
        // Bit-identical recovered state.
        let a = reference.service().unwrap();
        let b = crashing.service().unwrap();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.samples(), b.samples());
        assert_eq!(
            a.scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            b.scores().iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        // Both continue identically.
        reference.apply(&ingest(0, 2, 21)).unwrap();
        crashing.apply(&ingest(0, 2, 21)).unwrap();
        reference.finish_epoch().unwrap();
        crashing.finish_epoch().unwrap();
        assert_eq!(
            reference.service().unwrap().samples(),
            crashing.service().unwrap().samples()
        );
    }

    #[test]
    fn recovery_without_any_checkpoint_replays_the_whole_journal() {
        let mut h = ServiceHost::new(HostConfig {
            service: ServiceConfig {
                nodes: 4,
                epoch: SimDuration::from_secs(10),
                ..ServiceConfig::default()
            },
            checkpoint_every_epochs: 0, // never checkpoint
            ..HostConfig::default()
        })
        .unwrap();
        h.apply(&ingest(0, 1, 1)).unwrap();
        h.apply(&query(1, 12)).unwrap();
        h.crash(SimTime::from_secs(13));
        let report = h.restart(SimTime::from_secs(14)).unwrap().clone();
        assert!(report.from_scratch);
        assert_eq!(report.replayed, 2);
        let service = h.service().unwrap();
        assert_eq!(service.stats().ingested, 1);
        assert_eq!(service.stats().queries, 1);
        assert_eq!(service.samples().len(), 1);
    }

    #[test]
    fn torn_journal_tail_loses_only_the_unacknowledged_op() {
        let mut h = host();
        h.apply(&ingest(0, 1, 1)).unwrap();
        h.apply(&ingest(1, 2, 2)).unwrap();
        // Crash mid-append of the second ingest's record.
        h.crash_torn(SimTime::from_secs(3));
        let report = h.restart(SimTime::from_secs(4)).unwrap().clone();
        assert!(report.torn_tail);
        assert_eq!(h.service().unwrap().stats().ingested, 1);
        // The client retries the lost op; the service ends up whole.
        h.apply(&ingest(1, 2, 5)).unwrap();
        assert_eq!(h.service().unwrap().stats().ingested, 2);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_the_previous_one() {
        let mut h = host();
        h.apply(&ingest(0, 1, 1)).unwrap();
        h.apply(&ingest(1, 2, 12)).unwrap(); // auto-checkpoint at epoch 1
        h.apply(&ingest(2, 3, 22)).unwrap(); // auto-checkpoint at epoch 2
        assert_eq!(h.stored_checkpoints().len(), 2);
        // Flip one byte inside the newest checkpoint's body.
        let newest = &mut h.checkpoints.last_mut().unwrap().bytes;
        let mid = newest.len() / 2;
        newest[mid] ^= 0x01;
        h.crash(SimTime::from_secs(23));
        let report = h.restart(SimTime::from_secs(24)).unwrap().clone();
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.corrupt.len(), 1);
        assert!(
            report.corrupt[0].contains("section '"),
            "the report must name the corrupt section: {}",
            report.corrupt[0]
        );
        assert!(!report.from_scratch);
        assert_eq!(h.stats().checkpoint_fallbacks, 1);
        // The older checkpoint carries an older cursor, so more of the
        // journal replays — state still ends up complete.
        assert_eq!(h.service().unwrap().stats().ingested, 3);
    }

    #[test]
    fn fault_plan_crashes_and_restarts_on_schedule() {
        let mut h = ServiceHost::new(HostConfig {
            service: ServiceConfig {
                nodes: 4,
                epoch: SimDuration::from_secs(10),
                ..ServiceConfig::default()
            },
            recovery_grace: SimDuration::from_secs(2),
            ..HostConfig::default()
        })
        .unwrap();
        h.attach_faults(
            FaultInjector::new(
                FaultPlan::service_crash(SimTime::from_secs(5), SimDuration::from_secs(3)),
                7,
            )
            .unwrap(),
        );
        h.apply(&ingest(0, 1, 1)).unwrap();
        // An op at t=6 lands mid-downtime (crash at 5, restart at 8).
        let err = h.apply(&query(1, 6)).unwrap_err();
        assert!(
            matches!(err, HostError::Unavailable { retry_at, .. } if retry_at == SimTime::from_secs(8))
        );
        assert_eq!(h.stats().crashes, 1);
        // At t=9 the restart has fired but the grace window (8..10) is
        // open: queries answer degraded, ingests wait.
        let outcome = h.apply(&query(1, 9)).unwrap();
        let ApplyOutcome::Trust(answer) = outcome else {
            panic!("query answers with a trust result");
        };
        assert_eq!(answer.mode, crate::Staleness::Degraded);
        assert_eq!(h.state(), HostState::Recovering);
        let err = h.apply(&ingest(1, 2, 9)).unwrap_err();
        assert!(matches!(
            err,
            HostError::Unavailable {
                reason: "recovering",
                ..
            }
        ));
        // Past the grace window: normal service again.
        h.apply(&ingest(1, 2, 11)).unwrap();
        assert_eq!(h.state(), HostState::Up);
        assert_eq!(h.stats().recoveries, 1);
        assert_eq!(h.stats().degraded_queries, 1);
        assert_eq!(h.stats().unavailable_rejections, 2);
    }

    #[test]
    fn storage_faults_hit_checkpoint_writes_and_are_counted() {
        let mut h = host();
        h.attach_faults(
            FaultInjector::new(FaultPlan::bit_rot(SimTime::ZERO, SimTime::MAX), 3).unwrap(),
        );
        h.apply(&ingest(0, 1, 1)).unwrap();
        h.apply(&ingest(1, 2, 12)).unwrap(); // auto-checkpoint (bit-rotted)
        assert_eq!(h.stats().storage_faults, 1);
        h.crash(SimTime::from_secs(13));
        let report = h.restart(SimTime::from_secs(14)).unwrap().clone();
        // The single checkpoint was corrupt; recovery fell through to
        // scratch + full journal replay and still got everything back.
        assert_eq!(report.fallbacks, 1);
        assert!(report.from_scratch);
        assert_eq!(h.service().unwrap().stats().ingested, 2);
    }

    #[test]
    fn journal_gc_keeps_disk_bounded_and_recovery_opens_only_the_suffix() {
        let mut h = ServiceHost::new(HostConfig {
            service: ServiceConfig {
                nodes: 4,
                epoch: SimDuration::from_secs(10),
                ..ServiceConfig::default()
            },
            journal_segment_bytes: 256, // tiny: force frequent seals
            ..HostConfig::default()
        })
        .unwrap();
        for e in 0..30u64 {
            for i in 0..6u64 {
                h.apply(&ingest((i % 4) as u32, ((i + 1) % 4) as u32, e * 10 + i))
                    .unwrap();
            }
            h.finish_epoch().unwrap();
        }
        assert!(h.stats().journal_segments_gced > 0, "GC must have fired");
        assert_eq!(h.journal().gc_segments(), h.stats().journal_segments_gced);
        // The live footprint stays far below what was ever written.
        assert!(
            h.journal().byte_len() < h.journal().bytes_written() as usize / 2,
            "live {} vs written {}",
            h.journal().byte_len(),
            h.journal().bytes_written()
        );
        h.crash(SimTime::from_secs(301));
        let report = h.restart(SimTime::from_secs(302)).unwrap().clone();
        assert!(!report.from_scratch);
        // Bounded recovery: the replay opened only the couple of
        // segments past the newest checkpoint's cursor, not the
        // 30-epoch history.
        assert!(
            (report.segments_opened as u64) < h.journal().segments_created() / 2,
            "opened {} of {} segments ever created",
            report.segments_opened,
            h.journal().segments_created()
        );
        assert_eq!(h.service().unwrap().stats().ingested, 180);
    }

    #[test]
    fn out_of_range_ops_never_touch_the_clock() {
        let mut h = host();
        h.apply(&ingest(0, 1, 5)).unwrap();
        let err = h.apply(&ingest(0, 99, 7)).unwrap_err();
        assert!(matches!(err, HostError::Rejected(ref e) if e.contains("out of range")));
        // The bad op advanced nothing: the service clock still sits at
        // the last good op, so replay stays exact.
        assert_eq!(h.service().unwrap().now(), SimTime::from_secs(5));
    }
}
