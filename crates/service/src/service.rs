//! The long-lived [`TrustService`]: epoch-committed streaming trust.
//!
//! # Delta path
//!
//! The batch scenario engine rebuilds nothing per round *within* a run,
//! but every run starts from scratch. The service goes one step
//! further: it is the run. Events stream in, are staged inside the
//! open epoch, and at each epoch boundary the whole batch is applied as
//! **deltas** to the resident mechanism — `record_batch` updates the
//! CSR `LocalMatrix` rows in place through the run-locality upsert
//! memo, and one `refresh` re-iterates the walk from the previous
//! stationary solution's matrix. Nothing is rebuilt from the event
//! history; cost per epoch is proportional to *new* events, not to the
//! service's age.
//!
//! # Staleness contract
//!
//! Queries are answered from the last committed epoch: a query at sim
//! time `t` sees every event with `at < as_of` where `as_of` is the
//! latest epoch boundary at or before `t`, so staleness is bounded by
//! one epoch length. The trade is deliberate — commit-batched updates
//! are what keep the ingest path allocation-free and the stream
//! bit-identical to a batch run (the per-epoch `record_batch` order is
//! the arrival order, exactly the fixed merge order an equivalent
//! batch run uses).
//!
//! # Checkpoint format
//!
//! [`TrustService::checkpoint`] serializes the complete service state —
//! configuration, clock, staged (uncommitted) events, exposure
//! counters, per-epoch samples, counters, and the mechanism's own
//! snapshot — as length-prefixed binary (magic `TSNSVCKP`, version
//! [`CHECKPOINT_VERSION`]; see `tsn_simnet::codec`). Restore rejects
//! unknown magic/version, truncated input and trailing garbage, and
//! reproduces the service **bit-identically**: continuing a restored
//! service equals never having checkpointed, down to the float bits —
//! including checkpoints taken mid-epoch and mid-partition-window
//! (partition windows are evaluated as a pure function of the clock,
//! so no window state needs to travel).

use crate::event::{ServiceEvent, ServiceOp};
use tsn_reputation::{
    build_mechanism, DisclosurePolicy, FeedbackReport, InteractionOutcome, MechanismKind,
    ReputationMechanism,
};
use tsn_simnet::codec::{ByteReader, ByteWriter};
use tsn_simnet::{GroupMap, NodeId, PartitionWindow, SimDuration, SimTime};

/// Magic bytes opening every checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"TSNSVCKP";

/// Version of the checkpoint layout. Bumped on any layout change;
/// restore refuses other versions rather than guessing.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Configuration of a [`TrustService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Population size (fixed for the service's lifetime).
    pub nodes: usize,
    /// Reputation mechanism answering trust queries.
    pub mechanism: MechanismKind,
    /// Commit cadence: events become query-visible at each epoch
    /// boundary, so this is also the staleness bound.
    pub epoch: SimDuration,
    /// Disclosure ladder rung (0 = anonymous bit only … 4 = full
    /// reports), applied to every interaction before it reaches the
    /// mechanism.
    pub disclosure_level: usize,
    /// Partition windows (sorted, non-overlapping): while a window is
    /// active, interactions between nodes in different contiguous
    /// groups are rejected — the service treats an active window as a
    /// reachability split, regardless of the window's probabilistic
    /// loss fields (those model the message layer, which the abstract
    /// service does not simulate). Evaluated as a pure function of the
    /// event clock, which is what makes mid-window checkpoints exact.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            nodes: 100,
            mechanism: MechanismKind::EigenTrust,
            epoch: SimDuration::from_secs(60),
            disclosure_level: 4,
            partitions: Vec::new(),
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be positive".into());
        }
        if self.epoch == SimDuration::ZERO {
            return Err("epoch must be positive".into());
        }
        if self.disclosure_level > 4 {
            return Err(format!(
                "disclosure_level must be 0..=4, got {}",
                self.disclosure_level
            ));
        }
        let mut last_end = SimTime::ZERO;
        for (i, w) in self.partitions.iter().enumerate() {
            if w.groups == 0 {
                return Err(format!("partition window {i} needs at least one group"));
            }
            if w.end <= w.start {
                return Err(format!("partition window {i} must end after it starts"));
            }
            if w.start < last_end {
                return Err(format!(
                    "partition windows must be sorted and non-overlapping (window {i})"
                ));
            }
            last_end = w.end;
        }
        Ok(())
    }
}

/// Whether an ingested event was accepted into the open epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Staged; becomes query-visible at the next epoch boundary.
    Accepted,
    /// Dropped: the endpoints are on opposite sides of an active
    /// partition window.
    Rejected,
}

/// Per-node exposure counters (committed visibility, like scores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ExposureCell {
    disclosures: u64,
    breaches: u64,
}

/// Answer to a trust query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustQueryResult {
    /// The node's score in `[0, 1]`, as of the last committed epoch.
    pub score: f64,
    /// The commit point the answer reflects (end of the last committed
    /// epoch; [`SimTime::ZERO`] before the first commit).
    pub as_of: SimTime,
    /// How far the answer lags the query clock; bounded by one epoch
    /// once the first epoch has committed.
    pub staleness: SimDuration,
}

/// Answer to an exposure query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureQueryResult {
    /// Committed disclosure events about the node.
    pub disclosures: u64,
    /// Committed disclosures that broke the owner's policy.
    pub breaches: u64,
    /// `1 − breaches / disclosures` (1.0 when nothing was disclosed).
    pub respect_rate: f64,
    /// The commit point the answer reflects.
    pub as_of: SimTime,
    /// How far the answer lags the query clock.
    pub staleness: SimDuration,
}

/// One committed epoch's summary — the service's output series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// The epoch index (epoch `e` covers `[e·epoch, (e+1)·epoch)`).
    pub epoch: u64,
    /// Events committed at this boundary.
    pub committed: u64,
    /// Events rejected during this epoch (partition drops).
    pub rejected: u64,
    /// Mechanism iterations spent by this commit's refresh.
    pub refresh_iterations: u64,
    /// Population mean trust score after the commit.
    pub mean_score: f64,
}

/// Lifetime counters of a service instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Events accepted into an epoch.
    pub ingested: u64,
    /// Events rejected by partition gating.
    pub rejected: u64,
    /// Queries answered (trust + exposure).
    pub queries: u64,
    /// Epoch commits performed.
    pub commits: u64,
    /// Total mechanism iterations across all refreshes.
    pub refresh_iterations: u64,
}

/// A long-lived, incrementally updated trust service.
///
/// ```
/// use tsn_service::{ServiceConfig, ServiceEvent, TrustService};
/// use tsn_reputation::InteractionOutcome;
/// use tsn_simnet::{NodeId, SimDuration, SimTime};
///
/// let mut service = TrustService::new(ServiceConfig {
///     nodes: 3,
///     epoch: SimDuration::from_secs(10),
///     ..ServiceConfig::default()
/// })
/// .unwrap();
/// service
///     .ingest(ServiceEvent::Interaction {
///         rater: NodeId(0),
///         ratee: NodeId(1),
///         outcome: InteractionOutcome::Success { quality: 1.0 },
///         at: SimTime::from_secs(1),
///     })
///     .unwrap();
/// // Crossing the epoch boundary commits the staged event.
/// let q = service.query_trust(NodeId(1), SimTime::from_secs(11)).unwrap();
/// assert_eq!(q.as_of, SimTime::from_secs(10));
/// assert!(q.score > 0.0);
/// ```
#[derive(Debug)]
pub struct TrustService {
    config: ServiceConfig,
    policy: DisclosurePolicy,
    mechanism: Box<dyn ReputationMechanism>,
    /// The service clock: the latest event/query time seen.
    now: SimTime,
    /// End of the last committed epoch; what queries reflect.
    as_of: SimTime,
    /// Index of the open (uncommitted) epoch.
    epoch_index: u64,
    /// Accepted events of the open epoch, in arrival order.
    staged: Vec<ServiceEvent>,
    /// Events rejected inside the open epoch (for the next sample).
    epoch_rejected: u64,
    /// Committed per-node exposure counters.
    exposure: Vec<ExposureCell>,
    /// One sample per committed epoch.
    samples: Vec<EpochSample>,
    stats: ServiceStats,
    /// Commit scratch: report views built per batch, capacity reused.
    views: Vec<tsn_reputation::ReportView>,
    /// Lazily built group map of the partition window under the clock.
    partition_cache: Option<(usize, GroupMap)>,
}

impl TrustService {
    /// Creates a service at sim time zero.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error.
    pub fn new(config: ServiceConfig) -> Result<Self, String> {
        config.validate()?;
        let mechanism = build_mechanism(config.mechanism, config.nodes);
        Ok(TrustService {
            policy: DisclosurePolicy::ladder(config.disclosure_level),
            mechanism,
            now: SimTime::ZERO,
            as_of: SimTime::ZERO,
            epoch_index: 0,
            staged: Vec::new(),
            epoch_rejected: 0,
            exposure: vec![ExposureCell::default(); config.nodes],
            samples: Vec::new(),
            stats: ServiceStats::default(),
            views: Vec::new(),
            partition_cache: None,
            config,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The service clock (latest event/query time seen).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The commit point queries currently reflect.
    pub fn as_of(&self) -> SimTime {
        self.as_of
    }

    /// Index of the open epoch.
    pub fn epoch_index(&self) -> u64 {
        self.epoch_index
    }

    /// Events staged in the open epoch (not yet query-visible).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// One sample per committed epoch, in order.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// All committed scores, indexed by node.
    pub fn scores(&self) -> Vec<f64> {
        self.mechanism.scores()
    }

    /// `node`'s committed score without touching the clock (the
    /// query-mix path is [`TrustService::query_trust`]).
    pub fn score(&self, node: NodeId) -> f64 {
        self.mechanism.score(node)
    }

    /// Start of epoch `e`, saturating at the horizon.
    fn epoch_start(&self, e: u64) -> SimTime {
        match self.config.epoch.as_micros().checked_mul(e) {
            Some(us) => SimTime::from_micros(us),
            None => SimTime::MAX,
        }
    }

    /// End of epoch `e` (start of `e + 1`), saturating at the horizon.
    pub fn epoch_end(&self, e: u64) -> SimTime {
        match e.checked_add(1) {
            Some(next) => self.epoch_start(next),
            None => SimTime::MAX,
        }
    }

    /// Advances the service clock, committing every epoch whose end is
    /// at or before `at`. An epoch whose end saturates to the horizon
    /// ([`SimTime::MAX`]) never closes: the loop stops instead of
    /// spinning, so a service driven to the horizon stays queryable.
    ///
    /// # Errors
    ///
    /// The clock is monotone: rewinding is an error.
    pub fn advance_to(&mut self, at: SimTime) -> Result<(), String> {
        if at < self.now {
            return Err(format!(
                "service clock is monotone: {}us precedes {}us",
                at.as_micros(),
                self.now.as_micros()
            ));
        }
        loop {
            let end = self.epoch_end(self.epoch_index);
            if end == SimTime::MAX || at < end {
                break;
            }
            self.commit_epoch(end);
        }
        self.now = at;
        Ok(())
    }

    /// Commits the open epoch at boundary `end`: applies the staged
    /// batch to the mechanism in arrival order, refreshes, samples.
    fn commit_epoch(&mut self, end: SimTime) {
        let mut views = std::mem::take(&mut self.views);
        views.clear();
        for event in &self.staged {
            match *event {
                ServiceEvent::Interaction {
                    rater,
                    ratee,
                    outcome,
                    at,
                } => {
                    views.push(self.policy.view(&FeedbackReport {
                        rater,
                        ratee,
                        outcome,
                        topic: None,
                        at,
                    }));
                }
                ServiceEvent::Disclosure {
                    node, respected, ..
                } => {
                    let cell = &mut self.exposure[node.index()];
                    cell.disclosures += 1;
                    if !respected {
                        cell.breaches += 1;
                    }
                }
            }
        }
        // One delta application: in-place CSR upserts through the
        // run-locality memo, in arrival order (bit-identical to looped
        // `record` calls by the mechanism contract).
        self.mechanism.record_batch(&views);
        let iterations = self.mechanism.refresh() as u64;
        let mean_score = if self.config.nodes == 0 {
            0.0
        } else {
            let sum: f64 = (0..self.config.nodes)
                .map(|i| self.mechanism.score(NodeId::from_index(i)))
                .sum();
            sum / self.config.nodes as f64
        };
        self.samples.push(EpochSample {
            epoch: self.epoch_index,
            committed: self.staged.len() as u64,
            rejected: self.epoch_rejected,
            refresh_iterations: iterations,
            mean_score,
        });
        self.stats.commits += 1;
        self.stats.refresh_iterations += iterations;
        self.staged.clear();
        self.epoch_rejected = 0;
        self.as_of = end;
        self.epoch_index += 1;
        self.views = views;
    }

    /// Closes the open epoch by advancing the clock to its boundary
    /// (committing it), unless the boundary has saturated to the
    /// horizon — at the horizon this is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates [`TrustService::advance_to`] errors (never occurs for
    /// a forward boundary).
    pub fn finish_epoch(&mut self) -> Result<(), String> {
        let end = self.epoch_end(self.epoch_index);
        if end == SimTime::MAX {
            return Ok(());
        }
        self.advance_to(end)
    }

    /// The partition window active at `at`, if any.
    fn active_window(&self, at: SimTime) -> Option<usize> {
        // Windows are sorted and non-overlapping (validated).
        self.config
            .partitions
            .iter()
            .position(|w| w.start <= at && at < w.end)
    }

    /// Whether `a` and `b` are split by the window active at `at`.
    fn cross_partitioned(&mut self, a: NodeId, b: NodeId, at: SimTime) -> bool {
        let Some(idx) = self.active_window(at) else {
            return false;
        };
        let groups = self.config.partitions[idx].groups;
        if groups <= 1 {
            return false;
        }
        let rebuild = match &self.partition_cache {
            Some((cached, _)) => *cached != idx,
            None => true,
        };
        if rebuild {
            self.partition_cache = Some((idx, GroupMap::contiguous(self.config.nodes, groups)));
        }
        let (_, map) = self.partition_cache.as_ref().expect("cache just built");
        !map.same_group(a, b)
    }

    /// Ingests one event, advancing the clock to the event time first
    /// (committing any epochs it crosses).
    ///
    /// # Errors
    ///
    /// Out-of-order events (before the service clock) and out-of-range
    /// node ids are errors; partition drops are the
    /// [`IngestOutcome::Rejected`] *success* case.
    pub fn ingest(&mut self, event: ServiceEvent) -> Result<IngestOutcome, String> {
        self.advance_to(event.at())?;
        match event {
            ServiceEvent::Interaction {
                rater, ratee, at, ..
            } => {
                self.check_node(rater)?;
                self.check_node(ratee)?;
                if self.cross_partitioned(rater, ratee, at) {
                    self.stats.rejected += 1;
                    self.epoch_rejected += 1;
                    return Ok(IngestOutcome::Rejected);
                }
            }
            ServiceEvent::Disclosure { node, .. } => self.check_node(node)?,
        }
        self.staged.push(event);
        self.stats.ingested += 1;
        Ok(IngestOutcome::Accepted)
    }

    fn check_node(&self, node: NodeId) -> Result<(), String> {
        if node.index() >= self.config.nodes {
            return Err(format!(
                "node {} out of range (service tracks {} nodes)",
                node.0, self.config.nodes
            ));
        }
        Ok(())
    }

    /// Answers a trust query at sim time `at` (advancing the clock).
    ///
    /// # Errors
    ///
    /// Clock rewinds and out-of-range nodes are errors.
    pub fn query_trust(&mut self, node: NodeId, at: SimTime) -> Result<TrustQueryResult, String> {
        self.advance_to(at)?;
        self.check_node(node)?;
        self.stats.queries += 1;
        Ok(TrustQueryResult {
            score: self.mechanism.score(node),
            as_of: self.as_of,
            staleness: at.duration_since(self.as_of),
        })
    }

    /// Answers an exposure query at sim time `at` (advancing the clock).
    ///
    /// # Errors
    ///
    /// Clock rewinds and out-of-range nodes are errors.
    pub fn query_exposure(
        &mut self,
        node: NodeId,
        at: SimTime,
    ) -> Result<ExposureQueryResult, String> {
        self.advance_to(at)?;
        self.check_node(node)?;
        self.stats.queries += 1;
        let cell = self.exposure[node.index()];
        let respect_rate = if cell.disclosures == 0 {
            1.0
        } else {
            1.0 - cell.breaches as f64 / cell.disclosures as f64
        };
        Ok(ExposureQueryResult {
            disclosures: cell.disclosures,
            breaches: cell.breaches,
            respect_rate,
            as_of: self.as_of,
            staleness: at.duration_since(self.as_of),
        })
    }

    /// Applies one workload operation.
    ///
    /// # Errors
    ///
    /// Propagates the underlying ingest/query errors.
    pub fn apply(&mut self, op: &ServiceOp) -> Result<(), String> {
        match *op {
            ServiceOp::Ingest(event) => {
                self.ingest(event)?;
            }
            ServiceOp::QueryTrust { node, at } => {
                self.query_trust(node, at)?;
            }
            ServiceOp::QueryExposure { node, at } => {
                self.query_exposure(node, at)?;
            }
        }
        Ok(())
    }

    /// Applies a timeline of operations in order.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failing operation's error.
    pub fn apply_all(&mut self, ops: &[ServiceOp]) -> Result<(), String> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Serializes the complete service state (see the module docs for
    /// the format). The checkpoint may be taken at any point — mid-epoch
    /// staged events and mid-partition-window positions round-trip
    /// exactly.
    ///
    /// # Errors
    ///
    /// Fails when the configured mechanism does not support state
    /// snapshots (`powertrust` and `trustme` currently do not).
    pub fn checkpoint(&self) -> Result<Vec<u8>, String> {
        let mechanism = self.mechanism.snapshot_state().ok_or_else(|| {
            format!(
                "mechanism '{}' does not support checkpointing",
                self.config.mechanism
            )
        })?;
        let mut w = ByteWriter::new();
        w.put_bytes(CHECKPOINT_MAGIC);
        w.put_u32(CHECKPOINT_VERSION);
        // Configuration (restore rebuilds the service from it).
        w.put_u64(self.config.nodes as u64);
        w.put_u8(kind_tag(self.config.mechanism));
        w.put_u64(self.config.epoch.as_micros());
        w.put_u8(self.config.disclosure_level as u8);
        w.put_u64(self.config.partitions.len() as u64);
        for window in &self.config.partitions {
            w.put_u64(window.start.as_micros());
            w.put_u64(window.end.as_micros());
            w.put_u64(window.groups as u64);
            w.put_f64(window.cross_loss);
            w.put_f64(window.intra_loss);
        }
        // Clock.
        w.put_u64(self.now.as_micros());
        w.put_u64(self.as_of.as_micros());
        w.put_u64(self.epoch_index);
        w.put_u64(self.epoch_rejected);
        // Lifetime counters.
        w.put_u64(self.stats.ingested);
        w.put_u64(self.stats.rejected);
        w.put_u64(self.stats.queries);
        w.put_u64(self.stats.commits);
        w.put_u64(self.stats.refresh_iterations);
        // Staged (uncommitted) events, arrival order.
        w.put_u64(self.staged.len() as u64);
        for event in &self.staged {
            match *event {
                ServiceEvent::Interaction {
                    rater,
                    ratee,
                    outcome,
                    at,
                } => {
                    w.put_u8(0);
                    w.put_u32(rater.0);
                    w.put_u32(ratee.0);
                    w.put_u8(outcome.is_success() as u8);
                    w.put_f64(outcome.value());
                    w.put_u64(at.as_micros());
                }
                ServiceEvent::Disclosure {
                    node,
                    respected,
                    at,
                } => {
                    w.put_u8(1);
                    w.put_u32(node.0);
                    w.put_u8(respected as u8);
                    w.put_u64(at.as_micros());
                }
            }
        }
        // Committed exposure counters.
        for cell in &self.exposure {
            w.put_u64(cell.disclosures);
            w.put_u64(cell.breaches);
        }
        // Epoch series.
        w.put_u64(self.samples.len() as u64);
        for s in &self.samples {
            w.put_u64(s.epoch);
            w.put_u64(s.committed);
            w.put_u64(s.rejected);
            w.put_u64(s.refresh_iterations);
            w.put_f64(s.mean_score);
        }
        // Mechanism payload.
        w.put_bytes(&mechanism);
        Ok(w.finish())
    }

    /// Reconstructs a service from a checkpoint, bit-identically.
    ///
    /// # Errors
    ///
    /// Rejects wrong magic, unknown versions, truncated or corrupt
    /// input, and trailing garbage.
    pub fn restore(bytes: &[u8]) -> Result<TrustService, String> {
        let mut r = ByteReader::new(bytes);
        if r.take_bytes()? != CHECKPOINT_MAGIC {
            return Err("not a TrustService checkpoint (bad magic)".into());
        }
        let version = r.take_u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            ));
        }
        let nodes = r.take_u64()? as usize;
        let mechanism = kind_from_tag(r.take_u8()?)?;
        let epoch = SimDuration::from_micros(r.take_u64()?);
        let disclosure_level = r.take_u8()? as usize;
        let window_count = r.take_seq_len(40)?;
        let mut partitions = Vec::with_capacity(window_count);
        for _ in 0..window_count {
            partitions.push(PartitionWindow {
                start: SimTime::from_micros(r.take_u64()?),
                end: SimTime::from_micros(r.take_u64()?),
                groups: r.take_u64()? as usize,
                cross_loss: r.take_f64()?,
                intra_loss: r.take_f64()?,
            });
        }
        let config = ServiceConfig {
            nodes,
            mechanism,
            epoch,
            disclosure_level,
            partitions,
        };
        let mut service = TrustService::new(config)?;
        service.now = SimTime::from_micros(r.take_u64()?);
        service.as_of = SimTime::from_micros(r.take_u64()?);
        service.epoch_index = r.take_u64()?;
        service.epoch_rejected = r.take_u64()?;
        service.stats = ServiceStats {
            ingested: r.take_u64()?,
            rejected: r.take_u64()?,
            queries: r.take_u64()?,
            commits: r.take_u64()?,
            refresh_iterations: r.take_u64()?,
        };
        let staged_count = r.take_seq_len(13)?;
        for _ in 0..staged_count {
            let event = match r.take_u8()? {
                0 => {
                    let rater = NodeId(r.take_u32()?);
                    let ratee = NodeId(r.take_u32()?);
                    let success = r.take_u8()? != 0;
                    let quality = r.take_f64()?;
                    let at = SimTime::from_micros(r.take_u64()?);
                    let outcome = if success {
                        InteractionOutcome::Success { quality }
                    } else {
                        InteractionOutcome::Failure
                    };
                    ServiceEvent::Interaction {
                        rater,
                        ratee,
                        outcome,
                        at,
                    }
                }
                1 => ServiceEvent::Disclosure {
                    node: NodeId(r.take_u32()?),
                    respected: r.take_u8()? != 0,
                    at: SimTime::from_micros(r.take_u64()?),
                },
                other => return Err(format!("unknown staged event tag {other}")),
            };
            service.staged.push(event);
        }
        for cell in service.exposure.iter_mut() {
            cell.disclosures = r.take_u64()?;
            cell.breaches = r.take_u64()?;
        }
        let sample_count = r.take_seq_len(40)?;
        for _ in 0..sample_count {
            service.samples.push(EpochSample {
                epoch: r.take_u64()?,
                committed: r.take_u64()?,
                rejected: r.take_u64()?,
                refresh_iterations: r.take_u64()?,
                mean_score: r.take_f64()?,
            });
        }
        let payload = r.take_bytes()?;
        service.mechanism.restore_state(payload)?;
        if !r.is_empty() {
            return Err(format!("checkpoint has {} trailing bytes", r.remaining()));
        }
        Ok(service)
    }
}

/// Stable one-byte tag of a mechanism kind (its index in
/// [`MechanismKind::ALL`]).
fn kind_tag(kind: MechanismKind) -> u8 {
    MechanismKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ALL") as u8
}

fn kind_from_tag(tag: u8) -> Result<MechanismKind, String> {
    MechanismKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("unknown mechanism tag {tag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interaction(rater: u32, ratee: u32, good: bool, at_secs: u64) -> ServiceEvent {
        ServiceEvent::Interaction {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: if good {
                InteractionOutcome::Success { quality: 1.0 }
            } else {
                InteractionOutcome::Failure
            },
            at: SimTime::from_secs(at_secs),
        }
    }

    fn small_service() -> TrustService {
        TrustService::new(ServiceConfig {
            nodes: 4,
            epoch: SimDuration::from_secs(10),
            ..ServiceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation_names_the_problem() {
        let bad = ServiceConfig {
            nodes: 0,
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("nodes"));
        let bad = ServiceConfig {
            epoch: SimDuration::ZERO,
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("epoch"));
        let bad = ServiceConfig {
            disclosure_level: 9,
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("disclosure_level"));
        let bad = ServiceConfig {
            partitions: vec![
                PartitionWindow::full_split(SimTime::from_secs(5), SimTime::from_secs(9), 2),
                PartitionWindow::full_split(SimTime::from_secs(8), SimTime::from_secs(12), 2),
            ],
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("non-overlapping"));
    }

    #[test]
    fn events_become_visible_at_the_epoch_boundary() {
        let mut service = small_service();
        service.ingest(interaction(0, 1, true, 1)).unwrap();
        // Still inside epoch 0: not visible, staleness from ZERO.
        let q = service
            .query_trust(NodeId(1), SimTime::from_secs(5))
            .unwrap();
        assert_eq!(q.as_of, SimTime::ZERO);
        let baseline = q.score;
        // Crossing into epoch 1 commits.
        let q = service
            .query_trust(NodeId(1), SimTime::from_secs(12))
            .unwrap();
        assert_eq!(q.as_of, SimTime::from_secs(10));
        assert!(q.score > baseline, "{} !> {baseline}", q.score);
        assert_eq!(q.staleness, SimDuration::from_secs(2));
        assert_eq!(service.samples().len(), 1);
        assert_eq!(service.samples()[0].committed, 1);
    }

    #[test]
    fn clock_is_monotone() {
        let mut service = small_service();
        service.advance_to(SimTime::from_secs(30)).unwrap();
        let err = service.ingest(interaction(0, 1, true, 7)).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        assert_eq!(service.samples().len(), 3, "crossed boundaries committed");
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let mut service = small_service();
        let err = service.ingest(interaction(0, 99, true, 1)).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = service
            .query_trust(NodeId(99), SimTime::from_secs(2))
            .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn partition_window_rejects_cross_group_interactions() {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 4,
            epoch: SimDuration::from_secs(10),
            partitions: vec![PartitionWindow::full_split(
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                2,
            )],
            ..ServiceConfig::default()
        })
        .unwrap();
        // Groups of contiguous(4, 2): {0, 1} and {2, 3}.
        // Before the window: cross-group accepted.
        assert_eq!(
            service.ingest(interaction(0, 3, true, 5)).unwrap(),
            IngestOutcome::Accepted
        );
        // Inside: cross-group rejected, intra-group accepted.
        assert_eq!(
            service.ingest(interaction(0, 3, true, 12)).unwrap(),
            IngestOutcome::Rejected
        );
        assert_eq!(
            service.ingest(interaction(0, 1, true, 13)).unwrap(),
            IngestOutcome::Accepted
        );
        // After the heal: accepted again.
        assert_eq!(
            service.ingest(interaction(0, 3, true, 25)).unwrap(),
            IngestOutcome::Accepted
        );
        assert_eq!(service.stats().rejected, 1);
        // The rejection landed in epoch 1's sample.
        assert_eq!(service.samples()[1].rejected, 1);
    }

    #[test]
    fn exposure_counters_commit_like_scores() {
        let mut service = small_service();
        for (secs, respected) in [(1, true), (2, true), (3, false)] {
            service
                .ingest(ServiceEvent::Disclosure {
                    node: NodeId(2),
                    respected,
                    at: SimTime::from_secs(secs),
                })
                .unwrap();
        }
        let q = service
            .query_exposure(NodeId(2), SimTime::from_secs(5))
            .unwrap();
        assert_eq!((q.disclosures, q.breaches), (0, 0), "not committed yet");
        assert_eq!(q.respect_rate, 1.0);
        let q = service
            .query_exposure(NodeId(2), SimTime::from_secs(11))
            .unwrap();
        assert_eq!((q.disclosures, q.breaches), (3, 1));
        assert!((q.respect_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn horizon_epoch_never_closes_and_never_spins() {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 2,
            epoch: SimDuration::MAX,
            ..ServiceConfig::default()
        })
        .unwrap();
        // Epoch 0 already ends at the saturated horizon: advancing to
        // MAX must terminate without committing anything.
        service.advance_to(SimTime::MAX).unwrap();
        assert_eq!(service.epoch_index(), 0);
        assert_eq!(service.samples().len(), 0);
        assert!(service.finish_epoch().is_ok(), "horizon finish is a no-op");
        let q = service.query_trust(NodeId(0), SimTime::MAX).unwrap();
        assert_eq!(q.as_of, SimTime::ZERO);
    }

    #[test]
    fn checkpoint_round_trip_rejects_corruption() {
        let mut service = small_service();
        service.ingest(interaction(0, 1, true, 1)).unwrap();
        let bytes = service.checkpoint().unwrap();
        assert!(TrustService::restore(&bytes).is_ok());
        assert!(TrustService::restore(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(TrustService::restore(&trailing)
            .unwrap_err()
            .contains("trailing"),);
        let mut wrong_magic = bytes.clone();
        wrong_magic[8] = b'X'; // first magic byte, after the length prefix
        assert!(TrustService::restore(&wrong_magic)
            .unwrap_err()
            .contains("magic"),);
        let mut wrong_version = bytes;
        wrong_version[16] = 99; // version u32, after prefix + magic
        assert!(TrustService::restore(&wrong_version)
            .unwrap_err()
            .contains("version"),);
    }

    #[test]
    fn unsupported_mechanism_checkpoint_is_a_clean_error() {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 4,
            mechanism: MechanismKind::PowerTrust,
            epoch: SimDuration::from_secs(10),
            ..ServiceConfig::default()
        })
        .unwrap();
        service.ingest(interaction(0, 1, true, 1)).unwrap();
        let err = service.checkpoint().unwrap_err();
        assert!(err.contains("powertrust"), "{err}");
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in MechanismKind::ALL {
            assert_eq!(kind_from_tag(kind_tag(kind)).unwrap(), kind);
        }
        assert!(kind_from_tag(250).is_err());
    }
}
