//! The long-lived [`TrustService`]: epoch-committed streaming trust.
//!
//! # Delta path
//!
//! The batch scenario engine rebuilds nothing per round *within* a run,
//! but every run starts from scratch. The service goes one step
//! further: it is the run. Events stream in, are staged inside the
//! open epoch, and at each epoch boundary the whole batch is applied as
//! **deltas** to the resident mechanism — `record_batch` updates the
//! CSR `LocalMatrix` rows in place through the run-locality upsert
//! memo, and one `refresh` re-iterates the walk from the previous
//! stationary solution's matrix. Nothing is rebuilt from the event
//! history; cost per epoch is proportional to *new* events, not to the
//! service's age.
//!
//! # Staleness contract
//!
//! Queries are answered from the last committed epoch: a query at sim
//! time `t` sees every event with `at < as_of` where `as_of` is the
//! latest epoch boundary at or before `t`, so staleness is bounded by
//! one epoch length. The trade is deliberate — commit-batched updates
//! are what keep the ingest path allocation-free and the stream
//! bit-identical to a batch run (the per-epoch `record_batch` order is
//! the arrival order, exactly the fixed merge order an equivalent
//! batch run uses).
//!
//! # Checkpoint format
//!
//! [`TrustService::checkpoint`] serializes the complete service state
//! as length-prefixed binary (magic `TSNSVCKP`, version
//! [`CHECKPOINT_VERSION`]; see `tsn_simnet::codec`). After the header
//! the body is a fixed sequence of **checksummed sections**
//! ([`CHECKPOINT_SECTIONS`]): each section is its CRC-32 followed by
//! its length-prefixed payload, so restore can tell *which* section a
//! corruption hit — a torn write truncates from some section onward, a
//! flipped bit fails exactly one section's CRC — and a recovery layer
//! can fall back to an older checkpoint instead of dying. Restore
//! rejects unknown magic/version, truncation, corruption and trailing
//! garbage (each error naming the section), and reproduces the service
//! **bit-identically**: continuing a restored service equals never
//! having checkpointed, down to the float bits — including checkpoints
//! taken mid-epoch and mid-partition-window (partition windows are
//! evaluated as a pure function of the clock, so no window state needs
//! to travel). The clock section also carries an opaque journal cursor
//! ([`TrustService::checkpoint_with_cursor`]) so a write-ahead journal
//! knows where replay resumes after this checkpoint.

use crate::event::{ServiceEvent, ServiceOp};
use tsn_reputation::{
    build_mechanism, DisclosurePolicy, FeedbackReport, MechanismKind, ReputationMechanism,
};
use tsn_simnet::codec::{crc32, ByteReader, ByteWriter};
use tsn_simnet::{GroupMap, MembershipConfig, NodeId, PartitionWindow, SimDuration, SimTime};

/// Magic bytes opening every checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"TSNSVCKP";

/// Version of the checkpoint layout. Bumped on any layout change;
/// restore refuses other versions rather than guessing. Version 2
/// introduced per-section CRCs and the journal cursor; version 3
/// added the membership-overlay configuration to the config section.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Names of the checkpoint's checksummed sections, in layout order.
pub const CHECKPOINT_SECTIONS: [&str; 7] = [
    "config",
    "clock",
    "stats",
    "staged",
    "exposure",
    "samples",
    "mechanism",
];

/// One parsed (not decoded) checkpoint section — the framing view that
/// [`checkpoint_sections`] returns for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSection {
    /// The section's name (an entry of [`CHECKPOINT_SECTIONS`]).
    pub name: &'static str,
    /// Byte offset of the section's payload within the checkpoint.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Whether the stored CRC matches the payload.
    pub crc_ok: bool,
}

/// Walks a checkpoint's section framing without decoding anything,
/// reporting each section's position and whether its CRC holds — the
/// diagnostic view behind "which section is corrupt?" tooling.
///
/// # Errors
///
/// Rejects bad magic, unsupported versions, framing truncated before
/// the sections complete, and trailing garbage.
pub fn checkpoint_sections(bytes: &[u8]) -> Result<Vec<CheckpointSection>, String> {
    let mut r = ByteReader::new(bytes);
    r.set_context("header");
    if r.take_bytes()? != CHECKPOINT_MAGIC {
        return Err("not a TrustService checkpoint (bad magic)".into());
    }
    let version = r.take_u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(format!(
            "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
        ));
    }
    let mut sections = Vec::with_capacity(CHECKPOINT_SECTIONS.len());
    for name in CHECKPOINT_SECTIONS {
        r.set_context(name);
        let stored = r.take_u32()?;
        let payload = r.take_bytes()?;
        sections.push(CheckpointSection {
            name,
            offset: r.position() - payload.len(),
            len: payload.len(),
            crc_ok: crc32(payload) == stored,
        });
    }
    if !r.is_empty() {
        return Err(format!("checkpoint has {} trailing bytes", r.remaining()));
    }
    Ok(sections)
}

/// Reads the journal cursor embedded in a checkpoint's clock section
/// without restoring the service — what a storage layer uses to decide
/// which journal segments the checkpoint still needs (everything below
/// the smallest retained cursor is garbage).
///
/// # Errors
///
/// Propagates framing errors and rejects a corrupt or malformed clock
/// section; a caller that gets an error must treat the checkpoint's
/// cursor as unknown (i.e. keep the whole journal).
pub fn checkpoint_cursor(bytes: &[u8]) -> Result<u64, String> {
    let sections = checkpoint_sections(bytes)?;
    let clock = sections
        .iter()
        .find(|s| s.name == "clock")
        // tsn-lint: allow(no-unwrap, "checkpoint_sections validated the section table, and the const table always lists the clock")
        .expect("the section table always lists the clock");
    if !clock.crc_ok {
        return Err("checkpoint section 'clock' is corrupt".into());
    }
    let payload = &bytes[clock.offset..clock.offset + clock.len];
    // now, as_of, epoch_index, epoch_rejected, journal_cursor — 5 u64s.
    if payload.len() != 40 {
        return Err(format!(
            "checkpoint clock section is {} bytes, expected 40",
            payload.len()
        ));
    }
    Ok(u64::from_le_bytes(
        // tsn-lint: allow(no-unwrap, "the 40-byte payload length is checked on the lines above; the fixed-offset slice is 8 bytes")
        payload[32..40].try_into().expect("8-byte slice"),
    ))
}

/// Configuration of a [`TrustService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Population size (fixed for the service's lifetime).
    pub nodes: usize,
    /// Reputation mechanism answering trust queries.
    pub mechanism: MechanismKind,
    /// Commit cadence: events become query-visible at each epoch
    /// boundary, so this is also the staleness bound.
    pub epoch: SimDuration,
    /// Disclosure ladder rung (0 = anonymous bit only … 4 = full
    /// reports), applied to every interaction before it reaches the
    /// mechanism.
    pub disclosure_level: usize,
    /// Partition windows (sorted, non-overlapping): while a window is
    /// active, interactions between nodes in different contiguous
    /// groups are rejected — the service treats an active window as a
    /// reachability split, regardless of the window's probabilistic
    /// loss fields (those model the message layer, which the abstract
    /// service does not simulate). Evaluated as a pure function of the
    /// event clock, which is what makes mid-window checkpoints exact.
    pub partitions: Vec<PartitionWindow>,
    /// Worker threads for building each epoch commit's report batch
    /// (per-shard staging + fixed-order merge; the result is
    /// shard-count-invariant down to the bits). `1` commits serially,
    /// `0` uses the machine's available parallelism. This is an
    /// execution knob, not state: checkpoints do not carry it, and a
    /// restored service commits serially until
    /// [`TrustService::set_commit_shards`] is called (the host does
    /// this on recovery).
    pub commit_shards: usize,
    /// Peer-sampling membership overlay of the deployment, if any.
    /// The service core ingests whatever reaches it unchanged — the
    /// overlay constrains *workload generation*: a
    /// [`ServiceDriver`](crate::ServiceDriver) configured from a
    /// service with an overlay samples interaction partners from each
    /// node's bounded partial view instead of the global population.
    /// Carried in checkpoints so a restored deployment keeps its
    /// overlay shape.
    pub membership: Option<MembershipConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            nodes: 100,
            mechanism: MechanismKind::EigenTrust,
            epoch: SimDuration::from_secs(60),
            disclosure_level: 4,
            partitions: Vec::new(),
            commit_shards: 1,
            membership: None,
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be positive".into());
        }
        if self.epoch == SimDuration::ZERO {
            return Err("epoch must be positive".into());
        }
        if self.disclosure_level > 4 {
            return Err(format!(
                "disclosure_level must be 0..=4, got {}",
                self.disclosure_level
            ));
        }
        let mut last_end = SimTime::ZERO;
        for (i, w) in self.partitions.iter().enumerate() {
            if w.groups == 0 {
                return Err(format!("partition window {i} needs at least one group"));
            }
            if w.end <= w.start {
                return Err(format!("partition window {i} must end after it starts"));
            }
            if w.start < last_end {
                return Err(format!(
                    "partition windows must be sorted and non-overlapping (window {i})"
                ));
            }
            last_end = w.end;
        }
        if let Some(m) = &self.membership {
            m.validate()?;
            if m.relays >= self.nodes {
                return Err("membership needs more nodes than relays".into());
            }
        }
        Ok(())
    }
}

/// Whether an ingested event was accepted into the open epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Staged; becomes query-visible at the next epoch boundary.
    Accepted,
    /// Dropped: the endpoints are on opposite sides of an active
    /// partition window.
    Rejected,
}

/// Per-node exposure counters (committed visibility, like scores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ExposureCell {
    disclosures: u64,
    breaches: u64,
}

/// How fresh a query answer is — every answer carries one of these so
/// callers can tell a normal bounded-staleness read from a read served
/// while the service is catching up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staleness {
    /// Normal operation: the answer reflects the last committed epoch
    /// and lags the query clock by less than one epoch.
    Bounded,
    /// Served during recovery or a behind-schedule commit: still the
    /// last *committed* state, but the lag may exceed the epoch bound.
    /// The explicit marker is the contract — degraded reads answer
    /// immediately instead of blocking, and say so.
    Degraded,
}

/// Answer to a trust query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustQueryResult {
    /// The node's score in `[0, 1]`, as of the last committed epoch.
    pub score: f64,
    /// The commit point the answer reflects (end of the last committed
    /// epoch; [`SimTime::ZERO`] before the first commit).
    pub as_of: SimTime,
    /// How far the answer lags the query clock; bounded by one epoch
    /// once the first epoch has committed (unless
    /// [`Staleness::Degraded`]).
    pub staleness: SimDuration,
    /// Whether the staleness bound held for this answer.
    pub mode: Staleness,
}

/// Answer to an exposure query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureQueryResult {
    /// Committed disclosure events about the node.
    pub disclosures: u64,
    /// Committed disclosures that broke the owner's policy.
    pub breaches: u64,
    /// `1 − breaches / disclosures` (1.0 when nothing was disclosed).
    pub respect_rate: f64,
    /// The commit point the answer reflects.
    pub as_of: SimTime,
    /// How far the answer lags the query clock.
    pub staleness: SimDuration,
    /// Whether the staleness bound held for this answer.
    pub mode: Staleness,
}

/// One committed epoch's summary — the service's output series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// The epoch index (epoch `e` covers `[e·epoch, (e+1)·epoch)`).
    pub epoch: u64,
    /// Events committed at this boundary.
    pub committed: u64,
    /// Events rejected during this epoch (partition drops).
    pub rejected: u64,
    /// Mechanism iterations spent by this commit's refresh.
    pub refresh_iterations: u64,
    /// Population mean trust score after the commit.
    pub mean_score: f64,
}

/// Lifetime counters of a service instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Events accepted into an epoch.
    pub ingested: u64,
    /// Events rejected by partition gating.
    pub rejected: u64,
    /// Queries answered (trust + exposure).
    pub queries: u64,
    /// Epoch commits performed.
    pub commits: u64,
    /// Total mechanism iterations across all refreshes.
    pub refresh_iterations: u64,
}

/// A long-lived, incrementally updated trust service.
///
/// ```
/// use tsn_service::{ServiceConfig, ServiceEvent, TrustService};
/// use tsn_reputation::InteractionOutcome;
/// use tsn_simnet::{NodeId, SimDuration, SimTime};
///
/// let mut service = TrustService::new(ServiceConfig {
///     nodes: 3,
///     epoch: SimDuration::from_secs(10),
///     ..ServiceConfig::default()
/// })
/// .unwrap();
/// service
///     .ingest(ServiceEvent::Interaction {
///         rater: NodeId(0),
///         ratee: NodeId(1),
///         outcome: InteractionOutcome::Success { quality: 1.0 },
///         at: SimTime::from_secs(1),
///     })
///     .unwrap();
/// // Crossing the epoch boundary commits the staged event.
/// let q = service.query_trust(NodeId(1), SimTime::from_secs(11)).unwrap();
/// assert_eq!(q.as_of, SimTime::from_secs(10));
/// assert!(q.score > 0.0);
/// ```
#[derive(Debug)]
pub struct TrustService {
    config: ServiceConfig,
    policy: DisclosurePolicy,
    mechanism: Box<dyn ReputationMechanism>,
    /// The service clock: the latest event/query time seen.
    now: SimTime,
    /// End of the last committed epoch; what queries reflect.
    as_of: SimTime,
    /// Index of the open (uncommitted) epoch.
    epoch_index: u64,
    /// Accepted events of the open epoch, in arrival order.
    staged: Vec<ServiceEvent>,
    /// Events rejected inside the open epoch (for the next sample).
    epoch_rejected: u64,
    /// Committed per-node exposure counters.
    exposure: Vec<ExposureCell>,
    /// One sample per committed epoch.
    samples: Vec<EpochSample>,
    stats: ServiceStats,
    /// Commit scratch: report views built per batch, capacity reused.
    views: Vec<tsn_reputation::ReportView>,
    /// Lazily built group map of the partition window under the clock.
    partition_cache: Option<(usize, GroupMap)>,
}

impl TrustService {
    /// Creates a service at sim time zero.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error.
    pub fn new(config: ServiceConfig) -> Result<Self, String> {
        config.validate()?;
        let mechanism = build_mechanism(config.mechanism, config.nodes);
        Ok(TrustService {
            policy: DisclosurePolicy::ladder(config.disclosure_level),
            mechanism,
            now: SimTime::ZERO,
            as_of: SimTime::ZERO,
            epoch_index: 0,
            staged: Vec::new(),
            epoch_rejected: 0,
            exposure: vec![ExposureCell::default(); config.nodes],
            samples: Vec::new(),
            stats: ServiceStats::default(),
            views: Vec::new(),
            partition_cache: None,
            config,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The service clock (latest event/query time seen).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The commit point queries currently reflect.
    pub fn as_of(&self) -> SimTime {
        self.as_of
    }

    /// Index of the open epoch.
    pub fn epoch_index(&self) -> u64 {
        self.epoch_index
    }

    /// Events staged in the open epoch (not yet query-visible).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// One sample per committed epoch, in order.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// All committed scores, indexed by node.
    pub fn scores(&self) -> Vec<f64> {
        self.mechanism.scores()
    }

    /// `node`'s committed score without touching the clock (the
    /// query-mix path is [`TrustService::query_trust`]).
    pub fn score(&self, node: NodeId) -> f64 {
        self.mechanism.score(node)
    }

    /// Start of epoch `e`, saturating at the horizon.
    fn epoch_start(&self, e: u64) -> SimTime {
        match self.config.epoch.as_micros().checked_mul(e) {
            Some(us) => SimTime::from_micros(us),
            None => SimTime::MAX,
        }
    }

    /// End of epoch `e` (start of `e + 1`), saturating at the horizon.
    pub fn epoch_end(&self, e: u64) -> SimTime {
        match e.checked_add(1) {
            Some(next) => self.epoch_start(next),
            None => SimTime::MAX,
        }
    }

    /// Advances the service clock, committing every epoch whose end is
    /// at or before `at`. An epoch whose end saturates to the horizon
    /// ([`SimTime::MAX`]) never closes: the loop stops instead of
    /// spinning, so a service driven to the horizon stays queryable.
    ///
    /// # Errors
    ///
    /// The clock is monotone: rewinding is an error.
    pub fn advance_to(&mut self, at: SimTime) -> Result<(), String> {
        if at < self.now {
            return Err(format!(
                "service clock is monotone: {}us precedes {}us",
                at.as_micros(),
                self.now.as_micros()
            ));
        }
        loop {
            let end = self.epoch_end(self.epoch_index);
            if end == SimTime::MAX || at < end {
                break;
            }
            self.commit_epoch(end);
        }
        self.now = at;
        Ok(())
    }

    /// The configured commit shard count with `0` (auto) resolved.
    fn effective_commit_shards(&self) -> usize {
        match self.config.commit_shards {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Overrides the commit shard count. The knob is execution-only
    /// (never serialized), so a recovery layer calls this after a
    /// restore to bring a recovered service back to its configured
    /// parallelism. Any value is sound: shard count never changes the
    /// committed bits, only how the batch is built.
    pub fn set_commit_shards(&mut self, shards: usize) {
        self.config.commit_shards = shards;
    }

    /// Commits the open epoch at boundary `end`: applies the staged
    /// batch to the mechanism in arrival order, refreshes, samples.
    fn commit_epoch(&mut self, end: SimTime) {
        let mut views = std::mem::take(&mut self.views);
        views.clear();
        let shards = self.effective_commit_shards();
        if shards > 1 && self.staged.len() >= shards * 2 {
            // Per-shard staging: each worker builds the report views and
            // disclosure deltas of one contiguous chunk independently
            // (`DisclosurePolicy::view` is pure). The merge below
            // re-applies them in ascending shard order, so the final
            // view order is exactly the serial arrival order and the
            // commit is shard-count-invariant down to the bits.
            let chunk = self.staged.len().div_ceil(shards);
            let policy = self.policy;
            let staged = &self.staged;
            type ShardPart = (Vec<tsn_reputation::ReportView>, Vec<(usize, bool)>);
            let mut parts: Vec<ShardPart> = Vec::with_capacity(shards);
            std::thread::scope(|scope| {
                let handles: Vec<_> = staged
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            let mut shard_views = Vec::with_capacity(slice.len());
                            let mut disclosures = Vec::new();
                            for event in slice {
                                match *event {
                                    ServiceEvent::Interaction {
                                        rater,
                                        ratee,
                                        outcome,
                                        at,
                                    } => {
                                        shard_views.push(policy.view(&FeedbackReport {
                                            rater,
                                            ratee,
                                            outcome,
                                            topic: None,
                                            at,
                                        }));
                                    }
                                    ServiceEvent::Disclosure {
                                        node, respected, ..
                                    } => disclosures.push((node.index(), respected)),
                                }
                            }
                            (shard_views, disclosures)
                        })
                    })
                    .collect();
                for handle in handles {
                    // tsn-lint: allow(no-unwrap, "join() re-raises a commit-shard worker panic on the coordinating thread; not a new failure mode")
                    parts.push(handle.join().expect("commit shard worker panicked"));
                }
            });
            // Merge barrier, in ascending shard order.
            for (shard_views, disclosures) in parts {
                views.extend(shard_views);
                for (index, respected) in disclosures {
                    let cell = &mut self.exposure[index];
                    cell.disclosures += 1;
                    if !respected {
                        cell.breaches += 1;
                    }
                }
            }
        } else {
            for event in &self.staged {
                match *event {
                    ServiceEvent::Interaction {
                        rater,
                        ratee,
                        outcome,
                        at,
                    } => {
                        views.push(self.policy.view(&FeedbackReport {
                            rater,
                            ratee,
                            outcome,
                            topic: None,
                            at,
                        }));
                    }
                    ServiceEvent::Disclosure {
                        node, respected, ..
                    } => {
                        let cell = &mut self.exposure[node.index()];
                        cell.disclosures += 1;
                        if !respected {
                            cell.breaches += 1;
                        }
                    }
                }
            }
        }
        // One delta application: in-place CSR upserts through the
        // run-locality memo, in arrival order (bit-identical to looped
        // `record` calls by the mechanism contract).
        self.mechanism.record_batch(&views);
        let iterations = self.mechanism.refresh() as u64;
        let mean_score = if self.config.nodes == 0 {
            0.0
        } else {
            let sum: f64 = (0..self.config.nodes)
                .map(|i| self.mechanism.score(NodeId::from_index(i)))
                .sum();
            sum / self.config.nodes as f64
        };
        self.samples.push(EpochSample {
            epoch: self.epoch_index,
            committed: self.staged.len() as u64,
            rejected: self.epoch_rejected,
            refresh_iterations: iterations,
            mean_score,
        });
        self.stats.commits += 1;
        self.stats.refresh_iterations += iterations;
        self.staged.clear();
        self.epoch_rejected = 0;
        self.as_of = end;
        self.epoch_index += 1;
        self.views = views;
    }

    /// Closes the open epoch by advancing the clock to its boundary
    /// (committing it), unless the boundary has saturated to the
    /// horizon — at the horizon this is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates [`TrustService::advance_to`] errors (never occurs for
    /// a forward boundary).
    pub fn finish_epoch(&mut self) -> Result<(), String> {
        let end = self.epoch_end(self.epoch_index);
        if end == SimTime::MAX {
            return Ok(());
        }
        self.advance_to(end)
    }

    /// The partition window active at `at`, if any.
    fn active_window(&self, at: SimTime) -> Option<usize> {
        // Windows are sorted and non-overlapping (validated).
        self.config
            .partitions
            .iter()
            .position(|w| w.start <= at && at < w.end)
    }

    /// Whether `a` and `b` are split by the window active at `at`.
    fn cross_partitioned(&mut self, a: NodeId, b: NodeId, at: SimTime) -> bool {
        let Some(idx) = self.active_window(at) else {
            return false;
        };
        let groups = self.config.partitions[idx].groups;
        if groups <= 1 {
            return false;
        }
        let rebuild = match &self.partition_cache {
            Some((cached, _)) => *cached != idx,
            None => true,
        };
        if rebuild {
            self.partition_cache = Some((idx, GroupMap::contiguous(self.config.nodes, groups)));
        }
        // tsn-lint: allow(no-unwrap, "the cache is rebuilt on the line above whenever it was absent or stale")
        let (_, map) = self.partition_cache.as_ref().expect("cache just built");
        !map.same_group(a, b)
    }

    /// Ingests one event, advancing the clock to the event time first
    /// (committing any epochs it crosses).
    ///
    /// # Errors
    ///
    /// Out-of-order events (before the service clock) and out-of-range
    /// node ids are errors; partition drops are the
    /// [`IngestOutcome::Rejected`] *success* case.
    pub fn ingest(&mut self, event: ServiceEvent) -> Result<IngestOutcome, String> {
        self.advance_to(event.at())?;
        match event {
            ServiceEvent::Interaction {
                rater, ratee, at, ..
            } => {
                self.check_node(rater)?;
                self.check_node(ratee)?;
                if self.cross_partitioned(rater, ratee, at) {
                    self.stats.rejected += 1;
                    self.epoch_rejected += 1;
                    return Ok(IngestOutcome::Rejected);
                }
            }
            ServiceEvent::Disclosure { node, .. } => self.check_node(node)?,
        }
        self.staged.push(event);
        self.stats.ingested += 1;
        Ok(IngestOutcome::Accepted)
    }

    fn check_node(&self, node: NodeId) -> Result<(), String> {
        if node.index() >= self.config.nodes {
            return Err(format!(
                "node {} out of range (service tracks {} nodes)",
                node.0, self.config.nodes
            ));
        }
        Ok(())
    }

    /// Answers a trust query at sim time `at` (advancing the clock).
    ///
    /// # Errors
    ///
    /// Clock rewinds and out-of-range nodes are errors.
    pub fn query_trust(&mut self, node: NodeId, at: SimTime) -> Result<TrustQueryResult, String> {
        self.advance_to(at)?;
        self.check_node(node)?;
        self.stats.queries += 1;
        Ok(TrustQueryResult {
            score: self.mechanism.score(node),
            as_of: self.as_of,
            staleness: at.duration_since(self.as_of),
            mode: Staleness::Bounded,
        })
    }

    /// Answers a trust query from committed state **without touching
    /// the clock or the stats** — the degraded-mode read a recovery
    /// layer serves while the service is catching up. The answer is
    /// marked [`Staleness::Degraded`]: it may lag `at` by more than one
    /// epoch, and `at` may even precede the service clock (queries held
    /// back during an outage).
    ///
    /// # Errors
    ///
    /// Out-of-range nodes are errors.
    pub fn degraded_trust(&self, node: NodeId, at: SimTime) -> Result<TrustQueryResult, String> {
        self.check_node(node)?;
        Ok(TrustQueryResult {
            score: self.mechanism.score(node),
            as_of: self.as_of,
            staleness: at.duration_since(self.as_of),
            mode: Staleness::Degraded,
        })
    }

    /// Answers an exposure query at sim time `at` (advancing the clock).
    ///
    /// # Errors
    ///
    /// Clock rewinds and out-of-range nodes are errors.
    pub fn query_exposure(
        &mut self,
        node: NodeId,
        at: SimTime,
    ) -> Result<ExposureQueryResult, String> {
        self.advance_to(at)?;
        self.check_node(node)?;
        self.stats.queries += 1;
        Ok(self.exposure_answer(node, at, Staleness::Bounded))
    }

    /// Answers an exposure query from committed state without touching
    /// the clock or the stats — the degraded-mode twin of
    /// [`TrustService::degraded_trust`].
    ///
    /// # Errors
    ///
    /// Out-of-range nodes are errors.
    pub fn degraded_exposure(
        &self,
        node: NodeId,
        at: SimTime,
    ) -> Result<ExposureQueryResult, String> {
        self.check_node(node)?;
        Ok(self.exposure_answer(node, at, Staleness::Degraded))
    }

    fn exposure_answer(&self, node: NodeId, at: SimTime, mode: Staleness) -> ExposureQueryResult {
        let cell = self.exposure[node.index()];
        let respect_rate = if cell.disclosures == 0 {
            1.0
        } else {
            1.0 - cell.breaches as f64 / cell.disclosures as f64
        };
        ExposureQueryResult {
            disclosures: cell.disclosures,
            breaches: cell.breaches,
            respect_rate,
            as_of: self.as_of,
            staleness: at.duration_since(self.as_of),
            mode,
        }
    }

    /// Applies one workload operation.
    ///
    /// # Errors
    ///
    /// Propagates the underlying ingest/query errors.
    pub fn apply(&mut self, op: &ServiceOp) -> Result<(), String> {
        match *op {
            ServiceOp::Ingest(event) => {
                self.ingest(event)?;
            }
            ServiceOp::QueryTrust { node, at } => {
                self.query_trust(node, at)?;
            }
            ServiceOp::QueryExposure { node, at } => {
                self.query_exposure(node, at)?;
            }
        }
        Ok(())
    }

    /// Applies a timeline of operations in order.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failing operation's error.
    pub fn apply_all(&mut self, ops: &[ServiceOp]) -> Result<(), String> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Serializes the complete service state (see the module docs for
    /// the format). The checkpoint may be taken at any point — mid-epoch
    /// staged events and mid-partition-window positions round-trip
    /// exactly. Equivalent to
    /// [`TrustService::checkpoint_with_cursor`] with cursor 0.
    ///
    /// # Errors
    ///
    /// Fails when the configured mechanism does not support state
    /// snapshots.
    pub fn checkpoint(&self) -> Result<Vec<u8>, String> {
        self.checkpoint_with_cursor(0)
    }

    /// Serializes the service like [`TrustService::checkpoint`], also
    /// embedding `journal_cursor` — the number of journal records
    /// already reflected in this state — in the (checksummed) clock
    /// section. A recovery layer restores the checkpoint and replays
    /// its journal from that cursor; an older checkpoint simply carries
    /// a smaller cursor and replays more.
    ///
    /// # Errors
    ///
    /// Fails when the configured mechanism does not support state
    /// snapshots; the error names the kinds that do.
    pub fn checkpoint_with_cursor(&self, journal_cursor: u64) -> Result<Vec<u8>, String> {
        let mechanism = self.mechanism.snapshot_state().ok_or_else(|| {
            format!(
                "mechanism '{}' does not support checkpointing \
                 (snapshot-capable mechanisms: {})",
                self.config.mechanism,
                MechanismKind::snapshot_capable_names()
            )
        })?;

        // Section payloads, in CHECKPOINT_SECTIONS order.
        let mut config = ByteWriter::new();
        config.put_u64(self.config.nodes as u64);
        config.put_u8(kind_tag(self.config.mechanism));
        config.put_u64(self.config.epoch.as_micros());
        config.put_u8(self.config.disclosure_level as u8);
        config.put_u64(self.config.partitions.len() as u64);
        for window in &self.config.partitions {
            config.put_u64(window.start.as_micros());
            config.put_u64(window.end.as_micros());
            config.put_u64(window.groups as u64);
            config.put_f64(window.cross_loss);
            config.put_f64(window.intra_loss);
        }
        match &self.config.membership {
            Some(m) => {
                config.put_u8(1);
                config.put_u64(m.view_size as u64);
                config.put_u64(m.shuffle_len as u64);
                config.put_u64(m.healing as u64);
                config.put_u64(m.swap as u64);
                config.put_u64(m.relays as u64);
                config.put_u64(m.relay_fanout as u64);
            }
            None => config.put_u8(0),
        }

        let mut clock = ByteWriter::new();
        clock.put_u64(self.now.as_micros());
        clock.put_u64(self.as_of.as_micros());
        clock.put_u64(self.epoch_index);
        clock.put_u64(self.epoch_rejected);
        clock.put_u64(journal_cursor);

        let mut stats = ByteWriter::new();
        stats.put_u64(self.stats.ingested);
        stats.put_u64(self.stats.rejected);
        stats.put_u64(self.stats.queries);
        stats.put_u64(self.stats.commits);
        stats.put_u64(self.stats.refresh_iterations);

        let mut staged = ByteWriter::new();
        staged.put_u64(self.staged.len() as u64);
        for event in &self.staged {
            crate::journal::encode_event(&mut staged, event);
        }

        let mut exposure = ByteWriter::new();
        for cell in &self.exposure {
            exposure.put_u64(cell.disclosures);
            exposure.put_u64(cell.breaches);
        }

        let mut samples = ByteWriter::new();
        samples.put_u64(self.samples.len() as u64);
        for s in &self.samples {
            samples.put_u64(s.epoch);
            samples.put_u64(s.committed);
            samples.put_u64(s.rejected);
            samples.put_u64(s.refresh_iterations);
            samples.put_f64(s.mean_score);
        }

        let mut w = ByteWriter::new();
        w.put_bytes(CHECKPOINT_MAGIC);
        w.put_u32(CHECKPOINT_VERSION);
        for payload in [
            config.finish(),
            clock.finish(),
            stats.finish(),
            staged.finish(),
            exposure.finish(),
            samples.finish(),
            mechanism,
        ] {
            w.put_u32(crc32(&payload));
            w.put_bytes(&payload);
        }
        Ok(w.finish())
    }

    /// Reconstructs a service from a checkpoint, bit-identically,
    /// discarding the journal cursor (see
    /// [`TrustService::restore_with_cursor`]).
    ///
    /// # Errors
    ///
    /// Rejects wrong magic, unknown versions, truncated or corrupt
    /// input (naming the failing section), and trailing garbage.
    pub fn restore(bytes: &[u8]) -> Result<TrustService, String> {
        Self::restore_with_cursor(bytes).map(|(service, _)| service)
    }

    /// Reconstructs a service from a checkpoint, returning it together
    /// with the embedded journal cursor — the record count a write-ahead
    /// journal replay should resume from.
    ///
    /// # Errors
    ///
    /// Rejects wrong magic, unknown versions, truncation and trailing
    /// garbage; a CRC mismatch or decode failure is reported **naming
    /// the corrupt section**, so a recovery layer can log what was hit
    /// and fall back to an older checkpoint.
    pub fn restore_with_cursor(bytes: &[u8]) -> Result<(TrustService, u64), String> {
        let mut r = ByteReader::new(bytes);
        r.set_context("header");
        if r.take_bytes()? != CHECKPOINT_MAGIC {
            return Err("not a TrustService checkpoint (bad magic)".into());
        }
        let version = r.take_u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            ));
        }
        let section = |r: &mut ByteReader, name: &'static str| -> Result<Vec<u8>, String> {
            r.set_context(name);
            let stored = r.take_u32()?;
            let payload = r.take_bytes()?;
            let computed = crc32(payload);
            if computed != stored {
                return Err(format!(
                    "checkpoint section '{name}' is corrupt \
                     (stored crc {stored:08x}, computed {computed:08x})"
                ));
            }
            Ok(payload.to_vec())
        };

        let config_bytes = section(&mut r, "config")?;
        let mut c = ByteReader::new(&config_bytes);
        c.set_context("config");
        let nodes = c.take_u64()? as usize;
        let mechanism = kind_from_tag(c.take_u8()?)?;
        let epoch = SimDuration::from_micros(c.take_u64()?);
        let disclosure_level = c.take_u8()? as usize;
        let window_count = c.take_seq_len(40)?;
        let mut partitions = Vec::with_capacity(window_count);
        for _ in 0..window_count {
            partitions.push(PartitionWindow {
                start: SimTime::from_micros(c.take_u64()?),
                end: SimTime::from_micros(c.take_u64()?),
                groups: c.take_u64()? as usize,
                cross_loss: c.take_f64()?,
                intra_loss: c.take_f64()?,
            });
        }
        let membership = match c.take_u8()? {
            0 => None,
            1 => Some(MembershipConfig {
                view_size: c.take_u64()? as usize,
                shuffle_len: c.take_u64()? as usize,
                healing: c.take_u64()? as usize,
                swap: c.take_u64()? as usize,
                relays: c.take_u64()? as usize,
                relay_fanout: c.take_u64()? as usize,
            }),
            other => {
                return Err(format!(
                    "checkpoint section 'config' is corrupt \
                     (membership flag must be 0 or 1, got {other})"
                ))
            }
        };
        section_drained(&c, "config")?;
        let config = ServiceConfig {
            nodes,
            mechanism,
            epoch,
            disclosure_level,
            partitions,
            // Execution knob, deliberately not serialized: the restoring
            // host re-applies its own configured value.
            commit_shards: 1,
            membership,
        };
        let mut service = TrustService::new(config)?;

        let clock_bytes = section(&mut r, "clock")?;
        let mut c = ByteReader::new(&clock_bytes);
        c.set_context("clock");
        service.now = SimTime::from_micros(c.take_u64()?);
        service.as_of = SimTime::from_micros(c.take_u64()?);
        service.epoch_index = c.take_u64()?;
        service.epoch_rejected = c.take_u64()?;
        let journal_cursor = c.take_u64()?;
        section_drained(&c, "clock")?;

        let stats_bytes = section(&mut r, "stats")?;
        let mut c = ByteReader::new(&stats_bytes);
        c.set_context("stats");
        service.stats = ServiceStats {
            ingested: c.take_u64()?,
            rejected: c.take_u64()?,
            queries: c.take_u64()?,
            commits: c.take_u64()?,
            refresh_iterations: c.take_u64()?,
        };
        section_drained(&c, "stats")?;

        let staged_bytes = section(&mut r, "staged")?;
        let mut c = ByteReader::new(&staged_bytes);
        c.set_context("staged");
        let staged_count = c.take_seq_len(13)?;
        for _ in 0..staged_count {
            service.staged.push(crate::journal::decode_event(&mut c)?);
        }
        section_drained(&c, "staged")?;

        let exposure_bytes = section(&mut r, "exposure")?;
        let mut c = ByteReader::new(&exposure_bytes);
        c.set_context("exposure");
        for cell in service.exposure.iter_mut() {
            cell.disclosures = c.take_u64()?;
            cell.breaches = c.take_u64()?;
        }
        section_drained(&c, "exposure")?;

        let samples_bytes = section(&mut r, "samples")?;
        let mut c = ByteReader::new(&samples_bytes);
        c.set_context("samples");
        let sample_count = c.take_seq_len(40)?;
        for _ in 0..sample_count {
            service.samples.push(EpochSample {
                epoch: c.take_u64()?,
                committed: c.take_u64()?,
                rejected: c.take_u64()?,
                refresh_iterations: c.take_u64()?,
                mean_score: c.take_f64()?,
            });
        }
        section_drained(&c, "samples")?;

        let mechanism_bytes = section(&mut r, "mechanism")?;
        service
            .mechanism
            .restore_state(&mechanism_bytes)
            .map_err(|e| format!("checkpoint section 'mechanism' is corrupt: {e}"))?;

        if !r.is_empty() {
            return Err(format!("checkpoint has {} trailing bytes", r.remaining()));
        }
        Ok((service, journal_cursor))
    }
}

/// Rejects intra-section trailing garbage, naming the section.
fn section_drained(r: &ByteReader, name: &'static str) -> Result<(), String> {
    if !r.is_empty() {
        return Err(format!(
            "checkpoint section '{name}' has {} trailing bytes",
            r.remaining()
        ));
    }
    Ok(())
}

/// Stable one-byte tag of a mechanism kind (its index in
/// [`MechanismKind::ALL`]).
fn kind_tag(kind: MechanismKind) -> u8 {
    MechanismKind::ALL
        .iter()
        .position(|&k| k == kind)
        // tsn-lint: allow(no-unwrap, "kind is drawn from MechanismKind::ALL, the slice being searched")
        .expect("every kind is in ALL") as u8
}

fn kind_from_tag(tag: u8) -> Result<MechanismKind, String> {
    MechanismKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("unknown mechanism tag {tag}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_reputation::InteractionOutcome;

    fn interaction(rater: u32, ratee: u32, good: bool, at_secs: u64) -> ServiceEvent {
        ServiceEvent::Interaction {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: if good {
                InteractionOutcome::Success { quality: 1.0 }
            } else {
                InteractionOutcome::Failure
            },
            at: SimTime::from_secs(at_secs),
        }
    }

    fn small_service() -> TrustService {
        TrustService::new(ServiceConfig {
            nodes: 4,
            epoch: SimDuration::from_secs(10),
            ..ServiceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation_names_the_problem() {
        let bad = ServiceConfig {
            nodes: 0,
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("nodes"));
        let bad = ServiceConfig {
            epoch: SimDuration::ZERO,
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("epoch"));
        let bad = ServiceConfig {
            disclosure_level: 9,
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("disclosure_level"));
        let bad = ServiceConfig {
            partitions: vec![
                PartitionWindow::full_split(SimTime::from_secs(5), SimTime::from_secs(9), 2),
                PartitionWindow::full_split(SimTime::from_secs(8), SimTime::from_secs(12), 2),
            ],
            ..ServiceConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("non-overlapping"));
    }

    #[test]
    fn events_become_visible_at_the_epoch_boundary() {
        let mut service = small_service();
        service.ingest(interaction(0, 1, true, 1)).unwrap();
        // Still inside epoch 0: not visible, staleness from ZERO.
        let q = service
            .query_trust(NodeId(1), SimTime::from_secs(5))
            .unwrap();
        assert_eq!(q.as_of, SimTime::ZERO);
        let baseline = q.score;
        // Crossing into epoch 1 commits.
        let q = service
            .query_trust(NodeId(1), SimTime::from_secs(12))
            .unwrap();
        assert_eq!(q.as_of, SimTime::from_secs(10));
        assert!(q.score > baseline, "{} !> {baseline}", q.score);
        assert_eq!(q.staleness, SimDuration::from_secs(2));
        assert_eq!(service.samples().len(), 1);
        assert_eq!(service.samples()[0].committed, 1);
    }

    #[test]
    fn clock_is_monotone() {
        let mut service = small_service();
        service.advance_to(SimTime::from_secs(30)).unwrap();
        let err = service.ingest(interaction(0, 1, true, 7)).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        assert_eq!(service.samples().len(), 3, "crossed boundaries committed");
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let mut service = small_service();
        let err = service.ingest(interaction(0, 99, true, 1)).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = service
            .query_trust(NodeId(99), SimTime::from_secs(2))
            .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn partition_window_rejects_cross_group_interactions() {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 4,
            epoch: SimDuration::from_secs(10),
            partitions: vec![PartitionWindow::full_split(
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                2,
            )],
            ..ServiceConfig::default()
        })
        .unwrap();
        // Groups of contiguous(4, 2): {0, 1} and {2, 3}.
        // Before the window: cross-group accepted.
        assert_eq!(
            service.ingest(interaction(0, 3, true, 5)).unwrap(),
            IngestOutcome::Accepted
        );
        // Inside: cross-group rejected, intra-group accepted.
        assert_eq!(
            service.ingest(interaction(0, 3, true, 12)).unwrap(),
            IngestOutcome::Rejected
        );
        assert_eq!(
            service.ingest(interaction(0, 1, true, 13)).unwrap(),
            IngestOutcome::Accepted
        );
        // After the heal: accepted again.
        assert_eq!(
            service.ingest(interaction(0, 3, true, 25)).unwrap(),
            IngestOutcome::Accepted
        );
        assert_eq!(service.stats().rejected, 1);
        // The rejection landed in epoch 1's sample.
        assert_eq!(service.samples()[1].rejected, 1);
    }

    #[test]
    fn exposure_counters_commit_like_scores() {
        let mut service = small_service();
        for (secs, respected) in [(1, true), (2, true), (3, false)] {
            service
                .ingest(ServiceEvent::Disclosure {
                    node: NodeId(2),
                    respected,
                    at: SimTime::from_secs(secs),
                })
                .unwrap();
        }
        let q = service
            .query_exposure(NodeId(2), SimTime::from_secs(5))
            .unwrap();
        assert_eq!((q.disclosures, q.breaches), (0, 0), "not committed yet");
        assert_eq!(q.respect_rate, 1.0);
        let q = service
            .query_exposure(NodeId(2), SimTime::from_secs(11))
            .unwrap();
        assert_eq!((q.disclosures, q.breaches), (3, 1));
        assert!((q.respect_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn horizon_epoch_never_closes_and_never_spins() {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 2,
            epoch: SimDuration::MAX,
            ..ServiceConfig::default()
        })
        .unwrap();
        // Epoch 0 already ends at the saturated horizon: advancing to
        // MAX must terminate without committing anything.
        service.advance_to(SimTime::MAX).unwrap();
        assert_eq!(service.epoch_index(), 0);
        assert_eq!(service.samples().len(), 0);
        assert!(service.finish_epoch().is_ok(), "horizon finish is a no-op");
        let q = service.query_trust(NodeId(0), SimTime::MAX).unwrap();
        assert_eq!(q.as_of, SimTime::ZERO);
    }

    #[test]
    fn checkpoint_round_trip_rejects_corruption() {
        let mut service = small_service();
        service.ingest(interaction(0, 1, true, 1)).unwrap();
        let bytes = service.checkpoint().unwrap();
        assert!(TrustService::restore(&bytes).is_ok());
        assert!(TrustService::restore(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(TrustService::restore(&trailing)
            .unwrap_err()
            .contains("trailing"),);
        let mut wrong_magic = bytes.clone();
        wrong_magic[8] = b'X'; // first magic byte, after the length prefix
        assert!(TrustService::restore(&wrong_magic)
            .unwrap_err()
            .contains("magic"),);
        let mut wrong_version = bytes;
        wrong_version[16] = 99; // version u32, after prefix + magic
        assert!(TrustService::restore(&wrong_version)
            .unwrap_err()
            .contains("version"),);
    }

    #[test]
    fn checkpoint_carries_the_membership_overlay() {
        let overlay = MembershipConfig {
            view_size: 12,
            shuffle_len: 6,
            healing: 2,
            swap: 4,
            relays: 2,
            relay_fanout: 5,
        };
        let mut service = TrustService::new(ServiceConfig {
            nodes: 8,
            epoch: SimDuration::from_secs(10),
            membership: Some(overlay),
            ..ServiceConfig::default()
        })
        .unwrap();
        service.ingest(interaction(0, 1, true, 1)).unwrap();
        let restored = TrustService::restore(&service.checkpoint().unwrap()).unwrap();
        assert_eq!(restored.config().membership, Some(overlay));
        // And a membership-free service restores membership-free.
        let plain = small_service();
        let restored = TrustService::restore(&plain.checkpoint().unwrap()).unwrap();
        assert_eq!(restored.config().membership, None);
    }

    #[test]
    fn unsupported_mechanism_checkpoint_is_a_clean_error() {
        let mut service = TrustService::new(ServiceConfig {
            nodes: 4,
            mechanism: MechanismKind::PowerTrust,
            epoch: SimDuration::from_secs(10),
            ..ServiceConfig::default()
        })
        .unwrap();
        service.ingest(interaction(0, 1, true, 1)).unwrap();
        let err = service.checkpoint().unwrap_err();
        assert!(err.contains("powertrust"), "{err}");
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in MechanismKind::ALL {
            assert_eq!(kind_from_tag(kind_tag(kind)).unwrap(), kind);
        }
        assert!(kind_from_tag(250).is_err());
    }
}
