//! The service's streaming vocabulary: events and operations.
//!
//! A [`ServiceEvent`] is a timestamped fact the service ingests — an
//! interaction outcome or a disclosure decision. A [`ServiceOp`] is one
//! step of a workload timeline: either an ingest or a query, so
//! arrivals and reads interleave on the same sim clock exactly as they
//! would against a deployed service.

use tsn_reputation::InteractionOutcome;
use tsn_simnet::{NodeId, SimTime};

/// One timestamped fact entering the service.
///
/// Events are plain `Copy` data: they are staged verbatim inside the
/// open epoch (and inside checkpoints), so carrying borrowed or boxed
/// payloads would complicate the bit-identical snapshot contract for
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceEvent {
    /// A consumer (`rater`) experienced an interaction with a provider
    /// (`ratee`) that ended at `at` with the given outcome.
    Interaction {
        /// Who experienced the interaction.
        rater: NodeId,
        /// Who provided the service.
        ratee: NodeId,
        /// What happened.
        outcome: InteractionOutcome,
        /// When the interaction ended.
        at: SimTime,
    },
    /// `node` made (or broke) a privacy commitment at `at`: a disclosure
    /// that was respected, or one that leaked (a breach). Feeds the
    /// per-node exposure counters behind
    /// [`TrustService::query_exposure`](crate::TrustService::query_exposure).
    Disclosure {
        /// Whose data was disclosed.
        node: NodeId,
        /// Whether the disclosure respected the owner's policy.
        respected: bool,
        /// When it happened.
        at: SimTime,
    },
}

impl ServiceEvent {
    /// The event's position on the sim clock.
    pub fn at(&self) -> SimTime {
        match *self {
            ServiceEvent::Interaction { at, .. } => at,
            ServiceEvent::Disclosure { at, .. } => at,
        }
    }
}

/// One step of a service workload: an arrival or a query, in timeline
/// order. Produced by the [`ServiceDriver`](crate::ServiceDriver),
/// consumed by [`TrustService::apply`](crate::TrustService::apply).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceOp {
    /// Ingest an event.
    Ingest(ServiceEvent),
    /// Read `node`'s trust score at sim time `at`.
    QueryTrust {
        /// The queried node.
        node: NodeId,
        /// When the query is issued.
        at: SimTime,
    },
    /// Read `node`'s exposure counters at sim time `at`.
    QueryExposure {
        /// The queried node.
        node: NodeId,
        /// When the query is issued.
        at: SimTime,
    },
}

impl ServiceOp {
    /// The operation's position on the sim clock.
    pub fn at(&self) -> SimTime {
        match *self {
            ServiceOp::Ingest(event) => event.at(),
            ServiceOp::QueryTrust { at, .. } => at,
            ServiceOp::QueryExposure { at, .. } => at,
        }
    }

    /// Whether this op ingests (vs reads).
    pub fn is_ingest(&self) -> bool {
        matches!(self, ServiceOp::Ingest(_))
    }

    /// The same operation re-stamped to `at` — what a client does when
    /// it reissues an op after a retry backoff.
    pub fn with_time(self, at: SimTime) -> ServiceOp {
        match self {
            ServiceOp::Ingest(ServiceEvent::Interaction {
                rater,
                ratee,
                outcome,
                ..
            }) => ServiceOp::Ingest(ServiceEvent::Interaction {
                rater,
                ratee,
                outcome,
                at,
            }),
            ServiceOp::Ingest(ServiceEvent::Disclosure {
                node, respected, ..
            }) => ServiceOp::Ingest(ServiceEvent::Disclosure {
                node,
                respected,
                at,
            }),
            ServiceOp::QueryTrust { node, .. } => ServiceOp::QueryTrust { node, at },
            ServiceOp::QueryExposure { node, .. } => ServiceOp::QueryExposure { node, at },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_report_their_clock_position() {
        let at = SimTime::from_secs(7);
        let event = ServiceEvent::Disclosure {
            node: NodeId(1),
            respected: true,
            at,
        };
        assert_eq!(event.at(), at);
        assert_eq!(ServiceOp::Ingest(event).at(), at);
        assert!(ServiceOp::Ingest(event).is_ingest());
        let q = ServiceOp::QueryTrust {
            node: NodeId(0),
            at,
        };
        assert_eq!(q.at(), at);
        assert!(!q.is_ingest());
    }

    #[test]
    fn with_time_restamps_every_variant() {
        let later = SimTime::from_secs(9);
        let interaction = ServiceOp::Ingest(ServiceEvent::Interaction {
            rater: NodeId(0),
            ratee: NodeId(1),
            outcome: InteractionOutcome::Failure,
            at: SimTime::from_secs(1),
        });
        assert_eq!(interaction.with_time(later).at(), later);
        let disclosure = ServiceOp::Ingest(ServiceEvent::Disclosure {
            node: NodeId(2),
            respected: false,
            at: SimTime::from_secs(1),
        });
        assert_eq!(disclosure.with_time(later).at(), later);
        let q = ServiceOp::QueryExposure {
            node: NodeId(3),
            at: SimTime::from_secs(1),
        };
        let ServiceOp::QueryExposure { node, at } = q.with_time(later) else {
            panic!("with_time must preserve the variant");
        };
        assert_eq!((node, at), (NodeId(3), later));
    }
}
