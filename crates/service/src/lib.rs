//! Online TrustService: streaming ingest, incremental trust updates,
//! bounded-staleness queries, and checkpoint/restore.
//!
//! The batch layers of this workspace answer "what happens over N
//! rounds"; this crate answers "what does a *deployed* trust service
//! look like". A [`TrustService`] is long-lived: interaction and
//! disclosure events stream in, interleaved with trust and exposure
//! queries on the same simulated clock. Updates are applied as deltas
//! at epoch boundaries (cost proportional to new events, not service
//! age), queries are answered with staleness bounded by one epoch, and
//! the whole service — mid-epoch, mid-partition-window, wherever —
//! snapshots to a versioned binary checkpoint that restores
//! bit-identically.
//!
//! [`ServiceDriver`] generates deterministic open-loop workloads
//! against the service, using the same per-`(epoch, node)` RNG-stream
//! discipline as the sharded scenario engine, so a streamed run is
//! bit-identical to the equivalent batch computation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod event;
pub mod service;

pub use driver::{DriverConfig, ServiceDriver};
pub use event::{ServiceEvent, ServiceOp};
pub use service::{
    EpochSample, ExposureQueryResult, IngestOutcome, ServiceConfig, ServiceStats, TrustQueryResult,
    TrustService, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
