//! Online TrustService: streaming ingest, incremental trust updates,
//! bounded-staleness queries, and crash-tolerant checkpoint/restore.
//!
//! The batch layers of this workspace answer "what happens over N
//! rounds"; this crate answers "what does a *deployed* trust service
//! look like". A [`TrustService`] is long-lived: interaction and
//! disclosure events stream in, interleaved with trust and exposure
//! queries on the same simulated clock. Updates are applied as deltas
//! at epoch boundaries (cost proportional to new events, not service
//! age), queries are answered with staleness bounded by one epoch, and
//! the whole service — mid-epoch, mid-partition-window, wherever —
//! snapshots to a versioned binary checkpoint that restores
//! bit-identically.
//!
//! Around the pure service state sit the crash-tolerance layers:
//!
//! - [`EventJournal`] — a segmented, checksummed write-ahead log of
//!   every acknowledged operation: fixed-size sealed segments with
//!   header CRCs and a manifest; a torn or corrupt tail is detected
//!   per segment and only the unacknowledged suffix is lost.
//! - Checkpoints carry a per-section CRC (format v2): a corrupt restore
//!   reports *which* section failed, so recovery can fall back to the
//!   previous checkpoint and replay a longer journal suffix instead of
//!   dying. Each checkpoint embeds its journal cursor, so recovery
//!   opens only post-checkpoint segments and GC keeps disk bounded.
//! - [`ServiceHost`] — the process model: crash (explicit or scheduled
//!   by a [`FaultPlan`](tsn_simnet::FaultPlan)), recover from newest
//!   valid checkpoint + segment-suffix replay, and serve degraded
//!   reads (marked [`Staleness::Degraded`]) during the recovery grace
//!   window.
//! - [`ReplicaSet`] — deterministic state-machine replication: N hosts
//!   fed the same acknowledged op stream through one sequencer, with
//!   per-epoch bit-identical convergence checks and failover that
//!   promotes the healthiest member when the primary dies.
//!
//! [`ServiceDriver`] generates deterministic open-loop workloads
//! against the service, using the same per-`(epoch, node)` RNG-stream
//! discipline as the sharded scenario engine, so a streamed run is
//! bit-identical to the equivalent batch computation. Against a
//! [`ServiceHost`] it adds the client half of fault tolerance: bounded,
//! deterministically jittered retries for operations bounced during an
//! outage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod event;
pub mod host;
pub mod journal;
pub mod replica;
pub mod service;

pub use driver::{DriverConfig, HostDriveReport, RetryPolicy, ServiceDriver};
pub use event::{ServiceEvent, ServiceOp};
pub use host::{
    ApplyOutcome, HostConfig, HostError, HostState, HostStats, RecoveryReport, ServiceHost,
    StoredCheckpoint,
};
pub use journal::{
    EventJournal, JournalRecord, JournalReplay, JournalScan, JournalSegment, DEFAULT_SEGMENT_BYTES,
};
pub use replica::{FailoverReport, ReplicaConfig, ReplicaSet};
pub use service::{
    checkpoint_cursor, checkpoint_sections, CheckpointSection, EpochSample, ExposureQueryResult,
    IngestOutcome, ServiceConfig, ServiceStats, Staleness, TrustQueryResult, TrustService,
    CHECKPOINT_MAGIC, CHECKPOINT_SECTIONS, CHECKPOINT_VERSION,
};
