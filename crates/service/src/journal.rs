//! Segmented write-ahead event journal.
//!
//! Checkpoints capture *committed* progress plus staged events, but a
//! checkpoint only exists where one was written. The journal closes the
//! gap: every acknowledged operation (ingest, query, clock advance) is
//! appended as one length-prefixed, checksummed record, so recovery is
//!
//! > newest *valid* checkpoint + replay of the journal suffix
//!
//! and loses nothing that was acknowledged.
//!
//! # Segments
//!
//! The journal is not one flat buffer: records append into the **open
//! segment**, and once the open segment's record bytes reach
//! [`EventJournal::segment_bytes`] it is **sealed** and a fresh segment
//! opens. Each segment carries its own checksummed header
//! (`[magic "TSNJSEG1"][u64 index][u64 base_record][u32 crc]`), where
//! `base_record` is the global record count before the segment's first
//! record. Two properties follow:
//!
//! * **Bounded recovery.** A checkpoint embeds its replay cursor (a
//!   global record count); [`EventJournal::replay_from`] opens only the
//!   segments holding records at or after the cursor and reports how
//!   many it opened, so replay cost is proportional to data written
//!   since the checkpoint — never to the service's age.
//! * **Garbage collection.** Sealed segments wholly below the oldest
//!   retained checkpoint's cursor can never be replayed again;
//!   [`EventJournal::gc_before`] drops them, which is what keeps the
//!   on-disk footprint bounded on a long-lived host.
//!
//! # Record framing
//!
//! ```text
//! record := [u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! [`EventJournal::scan`] walks a segment body left to right and stops
//! at the first invalid record — a length that runs past the buffer (a
//! torn write), a CRC mismatch (corruption), or an undecodable payload.
//! The valid prefix is exactly the set of acknowledged operations: an
//! operation whose record was torn mid-write was never acknowledged, so
//! its client retries it, which is what keeps recovery lossless. The
//! same semantics carry over per segment: replay stops at the first
//! damaged segment (bad header or torn body) and everything after it
//! counts as unacknowledged.
//!
//! Queries and clock advances are journaled alongside ingests on
//! purpose: replaying the journal through the normal apply path then
//! reproduces the service's stats and clock — not just its scores —
//! bit-for-bit.

use crate::event::{ServiceEvent, ServiceOp};
use tsn_reputation::InteractionOutcome;
use tsn_simnet::codec::{crc32, ByteReader, ByteWriter};
use tsn_simnet::{NodeId, SimTime};

/// Magic bytes opening every segment.
pub const SEGMENT_MAGIC: &[u8; 8] = b"TSNJSEG1";

/// Fixed size of a segment header: magic + index + base record + CRC.
pub const SEGMENT_HEADER_LEN: usize = 8 + 8 + 8 + 4;

/// Default seal threshold for the open segment's record bytes.
pub const DEFAULT_SEGMENT_BYTES: usize = 64 * 1024;

/// Magic bytes opening a journal manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"TSNJMAN1";

/// One journaled operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalRecord {
    /// An applied workload operation (ingest or query).
    Op(ServiceOp),
    /// An explicit clock advance (e.g. an epoch close) that is not
    /// attached to any operation.
    Advance {
        /// The time the clock advanced to.
        at: SimTime,
    },
}

impl JournalRecord {
    /// The record's position on the sim clock.
    pub fn at(&self) -> SimTime {
        match *self {
            JournalRecord::Op(op) => op.at(),
            JournalRecord::Advance { at } => at,
        }
    }
}

/// Encodes a [`ServiceEvent`] (shared with the checkpoint's staged
/// section, so the two formats cannot drift).
pub(crate) fn encode_event(w: &mut ByteWriter, event: &ServiceEvent) {
    match *event {
        ServiceEvent::Interaction {
            rater,
            ratee,
            outcome,
            at,
        } => {
            w.put_u8(0);
            w.put_u32(rater.0);
            w.put_u32(ratee.0);
            w.put_u8(outcome.is_success() as u8);
            w.put_f64(outcome.value());
            w.put_u64(at.as_micros());
        }
        ServiceEvent::Disclosure {
            node,
            respected,
            at,
        } => {
            w.put_u8(1);
            w.put_u32(node.0);
            w.put_u8(respected as u8);
            w.put_u64(at.as_micros());
        }
    }
}

/// Decodes a [`ServiceEvent`] written by [`encode_event`].
pub(crate) fn decode_event(r: &mut ByteReader) -> Result<ServiceEvent, String> {
    match r.take_u8()? {
        0 => {
            let rater = NodeId(r.take_u32()?);
            let ratee = NodeId(r.take_u32()?);
            let success = r.take_u8()? != 0;
            let quality = r.take_f64()?;
            let at = SimTime::from_micros(r.take_u64()?);
            let outcome = if success {
                InteractionOutcome::Success { quality }
            } else {
                InteractionOutcome::Failure
            };
            Ok(ServiceEvent::Interaction {
                rater,
                ratee,
                outcome,
                at,
            })
        }
        1 => Ok(ServiceEvent::Disclosure {
            node: NodeId(r.take_u32()?),
            respected: r.take_u8()? != 0,
            at: SimTime::from_micros(r.take_u64()?),
        }),
        other => Err(format!("unknown event tag {other}")),
    }
}

/// Encodes one record payload (without the framing).
fn encode_record(w: &mut ByteWriter, record: &JournalRecord) {
    match *record {
        JournalRecord::Op(ServiceOp::Ingest(event)) => {
            w.put_u8(0);
            encode_event(w, &event);
        }
        JournalRecord::Op(ServiceOp::QueryTrust { node, at }) => {
            w.put_u8(1);
            w.put_u32(node.0);
            w.put_u64(at.as_micros());
        }
        JournalRecord::Op(ServiceOp::QueryExposure { node, at }) => {
            w.put_u8(2);
            w.put_u32(node.0);
            w.put_u64(at.as_micros());
        }
        JournalRecord::Advance { at } => {
            w.put_u8(3);
            w.put_u64(at.as_micros());
        }
    }
}

/// Decodes one record payload (without the framing).
fn decode_record(r: &mut ByteReader) -> Result<JournalRecord, String> {
    let record = match r.take_u8()? {
        0 => JournalRecord::Op(ServiceOp::Ingest(decode_event(r)?)),
        1 => JournalRecord::Op(ServiceOp::QueryTrust {
            node: NodeId(r.take_u32()?),
            at: SimTime::from_micros(r.take_u64()?),
        }),
        2 => JournalRecord::Op(ServiceOp::QueryExposure {
            node: NodeId(r.take_u32()?),
            at: SimTime::from_micros(r.take_u64()?),
        }),
        3 => JournalRecord::Advance {
            at: SimTime::from_micros(r.take_u64()?),
        },
        other => return Err(format!("unknown journal record tag {other}")),
    };
    if !r.is_empty() {
        return Err(format!(
            "journal record has {} trailing bytes",
            r.remaining()
        ));
    }
    Ok(record)
}

/// Result of scanning one segment body (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan {
    /// The decoded valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Whether the scan stopped before the end of the buffer — a torn
    /// tail or a corrupt record. Everything after `torn_at` was never
    /// acknowledged.
    pub torn: bool,
    /// Byte offset where scanning stopped (`bytes.len()` when clean).
    pub torn_at: usize,
    /// Byte offset where the last valid record starts (0 when the
    /// valid prefix is empty) — what keeps torn-write simulation
    /// working on a reloaded segment.
    pub last_start: usize,
}

/// One journal segment: a checksummed header followed by framed,
/// checksummed records. The last segment of a journal is **open**
/// (still appending); every earlier one is **sealed** and immutable.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSegment {
    index: u64,
    base_record: u64,
    /// Header + record frames — what sits on (simulated) disk.
    bytes: Vec<u8>,
    records: u64,
    sealed: bool,
    /// Byte offset of the most recent record (torn-write simulation).
    last_start: usize,
}

impl JournalSegment {
    /// Opens a fresh segment, writing its header.
    fn open(index: u64, base_record: u64) -> Self {
        let mut bytes = Vec::with_capacity(SEGMENT_HEADER_LEN);
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&index.to_le_bytes());
        bytes.extend_from_slice(&base_record.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        JournalSegment {
            index,
            base_record,
            bytes,
            records: 0,
            sealed: false,
            last_start: SEGMENT_HEADER_LEN,
        }
    }

    /// The segment's position in the journal.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Global record count before this segment's first record.
    pub fn base_record(&self) -> u64 {
        self.base_record
    }

    /// Records held by this segment.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether the segment is sealed (immutable).
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// The segment's size on (simulated) disk, header included.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw segment bytes (header + frames) — what survives a crash
    /// and what journal persistence writes to a file.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The record frames after the header — the slice
    /// [`EventJournal::scan`] walks.
    pub fn body(&self) -> &[u8] {
        &self.bytes[SEGMENT_HEADER_LEN.min(self.bytes.len())..]
    }

    /// Parses and verifies a segment header, returning
    /// `(index, base_record)`.
    ///
    /// # Errors
    ///
    /// Rejects short buffers, bad magic, and a header CRC mismatch.
    pub fn parse_header(bytes: &[u8]) -> Result<(u64, u64), String> {
        if bytes.len() < SEGMENT_HEADER_LEN {
            return Err(format!(
                "segment header truncated: {} bytes, need {SEGMENT_HEADER_LEN}",
                bytes.len()
            ));
        }
        if &bytes[..8] != SEGMENT_MAGIC {
            return Err("not a journal segment (bad magic)".into());
        }
        // tsn-lint: allow(no-unwrap, "the header slice length is checked at function entry; fixed offsets cannot misconvert")
        let index = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        // tsn-lint: allow(no-unwrap, "the header slice length is checked at function entry; fixed offsets cannot misconvert")
        let base = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
        // tsn-lint: allow(no-unwrap, "the header slice length is checked at function entry; fixed offsets cannot misconvert")
        let stored = u32::from_le_bytes(bytes[24..28].try_into().expect("4-byte slice"));
        let computed = crc32(&bytes[..24]);
        if stored != computed {
            return Err(format!(
                "segment {index} header is corrupt \
                 (stored crc {stored:08x}, computed {computed:08x})"
            ));
        }
        Ok((index, base))
    }

    /// Rebuilds a segment from surviving bytes, keeping only the valid
    /// record prefix (a torn tail is discarded — those operations were
    /// never acknowledged). Returns the segment and its body scan.
    ///
    /// # Errors
    ///
    /// Propagates header parse/CRC failures.
    pub fn from_bytes(bytes: &[u8]) -> Result<(JournalSegment, JournalScan), String> {
        let (index, base_record) = JournalSegment::parse_header(bytes)?;
        let scan = EventJournal::scan(&bytes[SEGMENT_HEADER_LEN..]);
        let keep = SEGMENT_HEADER_LEN + scan.torn_at;
        Ok((
            JournalSegment {
                index,
                base_record,
                bytes: bytes[..keep].to_vec(),
                records: scan.records.len() as u64,
                sealed: false,
                last_start: SEGMENT_HEADER_LEN + scan.last_start,
            },
            scan,
        ))
    }
}

/// What [`EventJournal::replay_from`] produced: the suffix of records
/// to re-apply, plus the segment-open accounting that pins "replay cost
/// is proportional to data since the checkpoint".
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReplay {
    /// Records at or after the cursor, in append order.
    pub records: Vec<JournalRecord>,
    /// Live segments actually opened (header verified + body scanned).
    pub segments_opened: usize,
    /// Live segments wholly before the cursor, skipped without opening.
    pub segments_skipped: usize,
    /// Whether the scan hit a torn tail or corrupt record; everything
    /// from there on was never acknowledged.
    pub torn: bool,
}

/// The write-ahead journal: an append-only sequence of checksummed
/// segments (see the module docs for format and semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct EventJournal {
    /// Seal threshold for the open segment's record bytes.
    segment_bytes: usize,
    /// Live segments, ascending index; the last one is open.
    segments: Vec<JournalSegment>,
    /// Sealed segments dropped by GC.
    gc_segments: u64,
    /// Records those segments held.
    gc_records: u64,
    /// Bytes those segments held.
    gc_bytes: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }
}

impl EventJournal {
    /// An empty journal with the default segment size.
    pub fn new() -> Self {
        EventJournal::default()
    }

    /// An empty journal sealing segments once their record bytes reach
    /// `segment_bytes` (clamped to at least one frame header's worth).
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        EventJournal {
            segment_bytes: segment_bytes.max(16),
            segments: vec![JournalSegment::open(0, 0)],
            gc_segments: 0,
            gc_records: 0,
            gc_bytes: 0,
        }
    }

    /// The seal threshold in use.
    pub fn segment_bytes(&self) -> usize {
        self.segment_bytes
    }

    fn open_segment(&self) -> &JournalSegment {
        self.segments
            .last()
            // tsn-lint: allow(no-unwrap, "segments is never empty: new() seeds an open segment and sealing immediately opens the next")
            .expect("a journal always has an open segment")
    }

    fn open_segment_mut(&mut self) -> &mut JournalSegment {
        self.segments
            .last_mut()
            // tsn-lint: allow(no-unwrap, "segments is never empty: new() seeds an open segment and sealing immediately opens the next")
            .expect("a journal always has an open segment")
    }

    /// Appends one record; returns the record count after the append
    /// (the cursor a checkpoint taken *now* would embed). Seals the open
    /// segment first when it is full.
    pub fn append(&mut self, record: &JournalRecord) -> u64 {
        if self.open_segment().body().len() >= self.segment_bytes && self.open_segment().records > 0
        {
            let (index, base) = {
                let open = self.open_segment_mut();
                open.sealed = true;
                (open.index + 1, open.base_record + open.records)
            };
            self.segments.push(JournalSegment::open(index, base));
        }
        let mut w = ByteWriter::new();
        encode_record(&mut w, record);
        let payload = w.finish();
        let mut frame = ByteWriter::new();
        frame.put_u32(payload.len() as u32);
        frame.put_u32(crc32(&payload));
        let header = frame.finish();
        let open = self.open_segment_mut();
        open.last_start = open.bytes.len();
        open.bytes.extend_from_slice(&header);
        open.bytes.extend_from_slice(&payload);
        open.records += 1;
        self.records()
    }

    /// Records appended over the journal's lifetime (GC'd segments
    /// included — this is the global cursor space checkpoints pin).
    pub fn records(&self) -> u64 {
        let open = self.open_segment();
        open.base_record + open.records
    }

    /// Whether nothing has ever been journaled.
    pub fn is_empty(&self) -> bool {
        self.records() == 0
    }

    /// Live size on (simulated) disk: every retained segment's bytes,
    /// headers included. This is what GC keeps bounded.
    pub fn byte_len(&self) -> usize {
        self.segments.iter().map(|s| s.byte_len()).sum()
    }

    /// Bytes ever written, GC'd segments included.
    pub fn bytes_written(&self) -> u64 {
        self.byte_len() as u64 + self.gc_bytes
    }

    /// The live segments, ascending; the last is the open one.
    pub fn segments(&self) -> &[JournalSegment] {
        &self.segments
    }

    /// Segments created over the journal's lifetime (live + GC'd).
    pub fn segments_created(&self) -> u64 {
        self.gc_segments + self.segments.len() as u64
    }

    /// Sealed segments dropped by [`EventJournal::gc_before`] so far.
    pub fn gc_segments(&self) -> u64 {
        self.gc_segments
    }

    /// Records dropped by GC so far — the floor below which
    /// [`EventJournal::replay_from`] cannot reach.
    pub fn gc_records(&self) -> u64 {
        self.gc_records
    }

    /// The live record frames of every segment, concatenated in order —
    /// a flat view for whole-journal scans in tests and benches.
    pub fn flattened_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        for segment in &self.segments {
            out.extend_from_slice(segment.body());
        }
        out
    }

    /// Simulates a crash mid-append: truncates the open segment inside
    /// its most recent record, leaving a torn tail. Returns `false`
    /// (and does nothing) when the open segment holds no record. The
    /// torn record's operation counts as unacknowledged from here on.
    pub fn tear_last_record(&mut self) -> bool {
        let open = self.open_segment_mut();
        if open.records == 0 {
            return false;
        }
        // Keep the frame header and half the payload: enough bytes that
        // a naive reader would try to parse them, which is the case the
        // CRC exists for.
        let tail = open.bytes.len() - open.last_start;
        open.bytes.truncate(open.last_start + 8 + (tail - 8) / 2);
        open.records -= 1;
        true
    }

    /// Drops any torn tail left in the open segment (after a
    /// [`EventJournal::tear_last_record`] crash was recovered): the
    /// surviving bytes are truncated back to the valid record prefix.
    /// Returns whether anything was dropped.
    pub fn discard_torn_tail(&mut self) -> bool {
        let open = self.open_segment_mut();
        let scan = EventJournal::scan(open.body());
        let keep = SEGMENT_HEADER_LEN + scan.torn_at;
        if keep == open.bytes.len() {
            return false;
        }
        open.bytes.truncate(keep);
        open.records = scan.records.len() as u64;
        open.last_start = SEGMENT_HEADER_LEN + scan.last_start;
        true
    }

    /// Replays the journal suffix from a global record `cursor`: opens
    /// only the segments holding records at or after the cursor (the
    /// bounded-recovery contract) and returns them decoded, with the
    /// open accounting. Replay stops at the first damaged segment —
    /// torn body, corrupt record or bad header — reporting `torn`;
    /// everything from there on was never acknowledged.
    ///
    /// # Errors
    ///
    /// A cursor below the GC floor is unrecoverable: the records it
    /// needs were already collected.
    pub fn replay_from(&self, cursor: u64) -> Result<JournalReplay, String> {
        let floor = self
            .segments
            .first()
            .map_or(self.gc_records, |s| s.base_record.min(self.gc_records));
        if cursor < floor {
            return Err(format!(
                "journal replay cursor {cursor} precedes the GC floor {floor}: \
                 the segments it needs were garbage-collected"
            ));
        }
        let mut replay = JournalReplay {
            records: Vec::new(),
            segments_opened: 0,
            segments_skipped: 0,
            torn: false,
        };
        for segment in &self.segments {
            if segment.base_record + segment.records <= cursor && segment.sealed {
                replay.segments_skipped += 1;
                continue;
            }
            replay.segments_opened += 1;
            if JournalSegment::parse_header(&segment.bytes).is_err() {
                replay.torn = true;
                break;
            }
            let scan = EventJournal::scan(segment.body());
            let skip = cursor.saturating_sub(segment.base_record) as usize;
            replay.records.extend(scan.records.into_iter().skip(skip));
            if scan.torn {
                replay.torn = true;
                break;
            }
        }
        Ok(replay)
    }

    /// Garbage-collects sealed segments whose records all sit strictly
    /// below `cursor` — they can never be replayed once every retained
    /// checkpoint's cursor is at or past it. Returns segments dropped.
    pub fn gc_before(&mut self, cursor: u64) -> usize {
        let mut dropped = 0;
        while let Some(first) = self.segments.first() {
            if !first.sealed || first.base_record + first.records > cursor {
                break;
            }
            let dead = self.segments.remove(0);
            self.gc_segments += 1;
            self.gc_records += dead.records;
            self.gc_bytes += dead.byte_len() as u64;
            dropped += 1;
        }
        dropped
    }

    /// Serializes the journal's manifest: segment size, GC counters and
    /// one entry per live segment (index, base record, records, sealed
    /// flag, CRC of the segment bytes). Persistence writes this next to
    /// the per-segment files; [`EventJournal::from_storage`] reads it
    /// back.
    pub fn manifest_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MANIFEST_MAGIC);
        w.put_u64(self.segment_bytes as u64);
        w.put_u64(self.gc_segments);
        w.put_u64(self.gc_records);
        w.put_u64(self.gc_bytes);
        w.put_u64(self.segments.len() as u64);
        for segment in &self.segments {
            w.put_u64(segment.index);
            w.put_u64(segment.base_record);
            w.put_u64(segment.records);
            w.put_u8(segment.sealed as u8);
            w.put_u32(crc32(&segment.bytes));
        }
        w.finish()
    }

    /// Rebuilds a journal from a manifest plus a segment loader (e.g.
    /// one reading `seg-<index>` files). Sealed segments must verify
    /// exactly (header, manifest CRC, clean body); the open segment may
    /// carry a torn tail, which is truncated away. A damaged sealed
    /// segment drops it *and everything after it* — the journal keeps
    /// its valid prefix, mirroring the in-segment scan semantics.
    ///
    /// # Errors
    ///
    /// Rejects a malformed manifest; segment damage degrades instead.
    pub fn from_storage(
        manifest: &[u8],
        mut load_segment: impl FnMut(u64) -> Result<Vec<u8>, String>,
    ) -> Result<EventJournal, String> {
        let mut r = ByteReader::new(manifest);
        r.set_context("journal manifest");
        if r.take_bytes()? != MANIFEST_MAGIC {
            return Err("not a journal manifest (bad magic)".into());
        }
        let segment_bytes = r.take_u64()? as usize;
        let gc_segments = r.take_u64()?;
        let gc_records = r.take_u64()?;
        let gc_bytes = r.take_u64()?;
        let count = r.take_u64()? as usize;
        let mut journal = EventJournal {
            segment_bytes: segment_bytes.max(16),
            segments: Vec::with_capacity(count),
            gc_segments,
            gc_records,
            gc_bytes,
        };
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let index = r.take_u64()?;
            let base_record = r.take_u64()?;
            let records = r.take_u64()?;
            let sealed = r.take_u8()? != 0;
            let stored_crc = r.take_u32()?;
            entries.push((index, base_record, records, sealed, stored_crc));
        }
        if !r.is_empty() {
            return Err(format!(
                "journal manifest has {} trailing bytes",
                r.remaining()
            ));
        }
        for (i, (index, base_record, records, sealed, stored_crc)) in
            entries.into_iter().enumerate()
        {
            let last = i + 1 == count;
            let Ok(bytes) = load_segment(index) else {
                journal.truncate_after_damage();
                break;
            };
            let crc_ok = crc32(&bytes) == stored_crc;
            let Ok((mut segment, scan)) = JournalSegment::from_bytes(&bytes) else {
                journal.truncate_after_damage();
                break;
            };
            let intact = crc_ok
                && !scan.torn
                && segment.index == index
                && segment.base_record == base_record;
            if sealed && (!intact || segment.records != records) {
                // A sealed segment must be byte-exact; damage here means
                // everything from this point on is gone.
                journal.truncate_after_damage();
                break;
            }
            segment.sealed = sealed && !last;
            journal.segments.push(segment);
        }
        if journal.segments.is_empty() {
            journal
                .segments
                .push(JournalSegment::open(gc_segments, gc_records));
        } else {
            journal.open_segment_mut().sealed = false;
        }
        Ok(journal)
    }

    /// After a damaged segment during [`EventJournal::from_storage`]:
    /// nothing after the damage survives; reopen a fresh tail so the
    /// journal stays appendable.
    fn truncate_after_damage(&mut self) {
        let (index, base) = self
            .segments
            .last()
            .map(|s| (s.index + 1, s.base_record + s.records))
            .unwrap_or((self.gc_segments, self.gc_records));
        self.segments.push(JournalSegment::open(index, base));
    }

    /// Scans one segment body (a stream of record frames) into its
    /// valid record prefix.
    pub fn scan(bytes: &[u8]) -> JournalScan {
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut last_start = 0usize;
        let torn = loop {
            if pos == bytes.len() {
                break false;
            }
            if pos + 8 > bytes.len() {
                break true;
            }
            let len =
                // tsn-lint: allow(no-unwrap, "frame bounds were checked against the buffer length before slicing")
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
            let stored =
                // tsn-lint: allow(no-unwrap, "frame bounds were checked against the buffer length before slicing")
                u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4-byte slice"));
            let Some(end) = (pos + 8).checked_add(len) else {
                break true;
            };
            if end > bytes.len() {
                break true;
            }
            let payload = &bytes[pos + 8..end];
            if crc32(payload) != stored {
                break true;
            }
            let mut r = ByteReader::new(payload);
            r.set_context("journal record");
            match decode_record(&mut r) {
                Ok(record) => records.push(record),
                Err(_) => break true,
            }
            last_start = pos;
            pos = end;
        };
        JournalScan {
            records,
            torn,
            torn_at: pos,
            last_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Op(ServiceOp::Ingest(ServiceEvent::Interaction {
                rater: NodeId(0),
                ratee: NodeId(1),
                outcome: InteractionOutcome::Success { quality: 0.75 },
                at: SimTime::from_secs(1),
            })),
            JournalRecord::Op(ServiceOp::Ingest(ServiceEvent::Disclosure {
                node: NodeId(2),
                respected: false,
                at: SimTime::from_secs(2),
            })),
            JournalRecord::Op(ServiceOp::QueryTrust {
                node: NodeId(1),
                at: SimTime::from_secs(3),
            }),
            JournalRecord::Op(ServiceOp::QueryExposure {
                node: NodeId(2),
                at: SimTime::from_secs(4),
            }),
            JournalRecord::Advance {
                at: SimTime::from_secs(10),
            },
        ]
    }

    /// A journal of `n` interaction records with a tiny seal threshold,
    /// so tests exercise multiple segments.
    fn segmented_journal(n: usize, segment_bytes: usize) -> (EventJournal, Vec<JournalRecord>) {
        let mut journal = EventJournal::with_segment_bytes(segment_bytes);
        let mut records = Vec::new();
        for i in 0..n {
            let record = JournalRecord::Op(ServiceOp::QueryTrust {
                node: NodeId(i as u32),
                at: SimTime::from_secs(i as u64),
            });
            journal.append(&record);
            records.push(record);
        }
        (journal, records)
    }

    #[test]
    fn round_trips_every_record_kind() {
        let mut journal = EventJournal::new();
        for (i, record) in sample_records().iter().enumerate() {
            assert_eq!(journal.append(record), i as u64 + 1);
        }
        assert_eq!(journal.segments().len(), 1, "default size never seals here");
        let scan = EventJournal::scan(journal.segments()[0].body());
        assert!(!scan.torn);
        assert_eq!(scan.records, sample_records());
        let replay = journal.replay_from(0).unwrap();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.segments_opened, 1);
        assert!(!replay.torn);
    }

    #[test]
    fn appends_seal_segments_and_replay_opens_only_the_suffix() {
        let (journal, records) = segmented_journal(64, 128);
        assert!(
            journal.segments().len() > 4,
            "128-byte segments must seal often, got {}",
            journal.segments().len()
        );
        assert_eq!(journal.records(), 64);
        // Every segment header verifies and the bases chain.
        let mut expected_base = 0;
        for (i, segment) in journal.segments().iter().enumerate() {
            let (index, base) = JournalSegment::parse_header(segment.bytes()).unwrap();
            assert_eq!(index, i as u64);
            assert_eq!(base, expected_base);
            expected_base += segment.records();
            assert_eq!(segment.sealed(), i + 1 < journal.segments().len());
        }
        // Full replay reproduces everything.
        let full = journal.replay_from(0).unwrap();
        assert_eq!(full.records, records);
        assert_eq!(full.segments_opened, journal.segments().len());
        // A mid-stream cursor opens only the segments it needs.
        let cursor = 40u64;
        let replay = journal.replay_from(cursor).unwrap();
        assert_eq!(replay.records, records[cursor as usize..]);
        assert!(replay.segments_opened < journal.segments().len());
        assert_eq!(
            replay.segments_opened + replay.segments_skipped,
            journal.segments().len()
        );
        // The skipped segments are exactly those wholly below the cursor.
        let wholly_below = journal
            .segments()
            .iter()
            .filter(|s| s.sealed() && s.base_record() + s.records() <= cursor)
            .count();
        assert_eq!(replay.segments_skipped, wholly_below);
    }

    #[test]
    fn gc_drops_only_sealed_segments_below_the_cursor() {
        let (mut journal, records) = segmented_journal(64, 128);
        let before_bytes = journal.byte_len();
        let segments_before = journal.segments().len();
        let cursor = 40u64;
        let dropped = journal.gc_before(cursor);
        assert!(dropped > 0, "old sealed segments must go");
        assert_eq!(journal.gc_segments(), dropped as u64);
        assert!(journal.byte_len() < before_bytes);
        assert_eq!(journal.segments().len(), segments_before - dropped);
        assert_eq!(journal.bytes_written(), before_bytes as u64);
        // The global record space is unchanged; the suffix still replays.
        assert_eq!(journal.records(), 64);
        let replay = journal.replay_from(cursor).unwrap();
        assert_eq!(replay.records, records[cursor as usize..]);
        // But a cursor below the floor is now unrecoverable.
        let err = journal.replay_from(0).unwrap_err();
        assert!(err.contains("GC floor"), "{err}");
        // GC never touches the open segment, even with a huge cursor.
        journal.gc_before(u64::MAX);
        assert_eq!(journal.segments().len(), 1);
        assert!(!journal.segments()[0].sealed());
    }

    #[test]
    fn torn_tail_drops_only_the_unacknowledged_record() {
        let mut journal = EventJournal::new();
        for record in sample_records() {
            journal.append(&record);
        }
        let full_len = journal.byte_len();
        assert!(journal.tear_last_record());
        assert!(journal.byte_len() < full_len);
        let replay = journal.replay_from(0).unwrap();
        assert!(replay.torn, "a half-written record must be detected");
        assert_eq!(replay.records, sample_records()[..4]);
        assert_eq!(journal.records(), 4);
        // Discarding the tail leaves a clean journal.
        assert!(journal.discard_torn_tail());
        assert!(!journal.replay_from(0).unwrap().torn);
        assert!(!journal.discard_torn_tail(), "already clean");
        assert!(!journal.is_empty());
        assert!(!EventJournal::new().tear_last_record());
    }

    #[test]
    fn any_corrupt_byte_stops_the_scan_at_that_record() {
        let mut journal = EventJournal::new();
        for record in sample_records() {
            journal.append(&record);
        }
        let clean = journal.segments()[0].body().to_vec();
        for i in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x40;
            let scan = EventJournal::scan(&corrupt);
            assert!(
                scan.records.len() < sample_records().len() || scan.torn,
                "flipping byte {i} must invalidate at least the record it hit"
            );
            // The prefix before the corruption still decodes.
            assert_eq!(
                scan.records[..],
                sample_records()[..scan.records.len()],
                "byte {i}: surviving prefix must be exact"
            );
        }
        // An empty stream is a clean, empty scan.
        let scan = EventJournal::scan(&[]);
        assert!(!scan.torn && scan.records.is_empty());
    }

    #[test]
    fn corrupt_segment_headers_stop_replay_there() {
        let (mut journal, records) = segmented_journal(32, 128);
        assert!(journal.segments().len() >= 3);
        // Flip a bit inside the second segment's header.
        let victim = 1;
        let survivors = journal.segments()[0].records() as usize;
        journal.segments[victim].bytes[9] ^= 0x01;
        let replay = journal.replay_from(0).unwrap();
        assert!(replay.torn, "a bad header must be detected");
        assert_eq!(replay.records, records[..survivors]);
        assert!(JournalSegment::parse_header(journal.segments()[victim].bytes()).is_err());
    }

    #[test]
    fn manifest_and_segments_round_trip_through_storage() {
        let (mut journal, records) = segmented_journal(48, 128);
        journal.gc_before(10); // a GC'd prefix must survive the round trip
        let manifest = journal.manifest_bytes();
        let stored: Vec<(u64, Vec<u8>)> = journal
            .segments()
            .iter()
            .map(|s| (s.index(), s.bytes().to_vec()))
            .collect();
        let load = |index: u64| -> Result<Vec<u8>, String> {
            stored
                .iter()
                .find(|(i, _)| *i == index)
                .map(|(_, b)| b.clone())
                .ok_or_else(|| format!("segment {index} missing"))
        };
        let rebuilt = EventJournal::from_storage(&manifest, load).unwrap();
        assert_eq!(rebuilt, journal);
        let floor = journal.gc_records();
        assert_eq!(
            rebuilt.replay_from(floor).unwrap().records,
            records[floor as usize..]
        );
        // A torn tail in the stored open segment is truncated on load.
        journal.tear_last_record();
        let manifest = journal.manifest_bytes();
        let stored: Vec<(u64, Vec<u8>)> = journal
            .segments()
            .iter()
            .map(|s| (s.index(), s.bytes().to_vec()))
            .collect();
        let load = |index: u64| -> Result<Vec<u8>, String> {
            stored
                .iter()
                .find(|(i, _)| *i == index)
                .map(|(_, b)| b.clone())
                .ok_or_else(|| format!("segment {index} missing"))
        };
        let rebuilt = EventJournal::from_storage(&manifest, load).unwrap();
        assert_eq!(rebuilt.records(), journal.records());
        assert!(!rebuilt.replay_from(floor).unwrap().torn);
        // A missing sealed segment drops it and everything after.
        let manifest = journal.manifest_bytes();
        let first = journal.segments()[0].clone();
        let partial = EventJournal::from_storage(&manifest, |index| {
            if index == first.index() {
                Ok(first.bytes().to_vec())
            } else {
                Err("gone".into())
            }
        })
        .unwrap();
        assert_eq!(
            partial.records(),
            first.base_record() + first.records(),
            "only the surviving prefix remains"
        );
        assert!(EventJournal::from_storage(b"junk", |_| Err("no".into())).is_err());
    }
}
