//! Write-ahead event journal for the open epoch.
//!
//! Checkpoints capture *committed* progress plus staged events, but a
//! checkpoint only exists where one was written. The journal closes the
//! gap: every acknowledged operation (ingest, query, clock advance) is
//! appended as one length-prefixed, checksummed record, so recovery is
//!
//! > newest *valid* checkpoint + replay of the journal suffix
//!
//! and loses nothing that was acknowledged. The journal is never
//! truncated at checkpoint time — each checkpoint embeds its replay
//! cursor ([`TrustService::checkpoint_with_cursor`]) — so falling back
//! to an *older* checkpoint (when the newest is corrupt) just replays
//! a longer suffix of the same journal.
//!
//! # Record framing
//!
//! ```text
//! record := [u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! [`EventJournal::scan`] walks records left to right and stops at the
//! first invalid one — a length that runs past the buffer (torn write),
//! a CRC mismatch (corruption), or an undecodable payload. The valid
//! prefix is exactly the set of acknowledged operations: an operation
//! whose record was torn mid-write was never acknowledged, so its
//! client retries it, which is what keeps recovery lossless.
//!
//! Queries and clock advances are journaled alongside ingests on
//! purpose: replaying the journal through the normal apply path then
//! reproduces the service's stats and clock — not just its scores —
//! bit-for-bit.
//!
//! [`TrustService::checkpoint_with_cursor`]: crate::TrustService::checkpoint_with_cursor

use crate::event::{ServiceEvent, ServiceOp};
use tsn_reputation::InteractionOutcome;
use tsn_simnet::codec::{crc32, ByteReader, ByteWriter};
use tsn_simnet::{NodeId, SimTime};

/// One journaled operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalRecord {
    /// An applied workload operation (ingest or query).
    Op(ServiceOp),
    /// An explicit clock advance (e.g. an epoch close) that is not
    /// attached to any operation.
    Advance {
        /// The time the clock advanced to.
        at: SimTime,
    },
}

impl JournalRecord {
    /// The record's position on the sim clock.
    pub fn at(&self) -> SimTime {
        match *self {
            JournalRecord::Op(op) => op.at(),
            JournalRecord::Advance { at } => at,
        }
    }
}

/// Encodes a [`ServiceEvent`] (shared with the checkpoint's staged
/// section, so the two formats cannot drift).
pub(crate) fn encode_event(w: &mut ByteWriter, event: &ServiceEvent) {
    match *event {
        ServiceEvent::Interaction {
            rater,
            ratee,
            outcome,
            at,
        } => {
            w.put_u8(0);
            w.put_u32(rater.0);
            w.put_u32(ratee.0);
            w.put_u8(outcome.is_success() as u8);
            w.put_f64(outcome.value());
            w.put_u64(at.as_micros());
        }
        ServiceEvent::Disclosure {
            node,
            respected,
            at,
        } => {
            w.put_u8(1);
            w.put_u32(node.0);
            w.put_u8(respected as u8);
            w.put_u64(at.as_micros());
        }
    }
}

/// Decodes a [`ServiceEvent`] written by [`encode_event`].
pub(crate) fn decode_event(r: &mut ByteReader) -> Result<ServiceEvent, String> {
    match r.take_u8()? {
        0 => {
            let rater = NodeId(r.take_u32()?);
            let ratee = NodeId(r.take_u32()?);
            let success = r.take_u8()? != 0;
            let quality = r.take_f64()?;
            let at = SimTime::from_micros(r.take_u64()?);
            let outcome = if success {
                InteractionOutcome::Success { quality }
            } else {
                InteractionOutcome::Failure
            };
            Ok(ServiceEvent::Interaction {
                rater,
                ratee,
                outcome,
                at,
            })
        }
        1 => Ok(ServiceEvent::Disclosure {
            node: NodeId(r.take_u32()?),
            respected: r.take_u8()? != 0,
            at: SimTime::from_micros(r.take_u64()?),
        }),
        other => Err(format!("unknown event tag {other}")),
    }
}

/// Encodes one record payload (without the framing).
fn encode_record(w: &mut ByteWriter, record: &JournalRecord) {
    match *record {
        JournalRecord::Op(ServiceOp::Ingest(event)) => {
            w.put_u8(0);
            encode_event(w, &event);
        }
        JournalRecord::Op(ServiceOp::QueryTrust { node, at }) => {
            w.put_u8(1);
            w.put_u32(node.0);
            w.put_u64(at.as_micros());
        }
        JournalRecord::Op(ServiceOp::QueryExposure { node, at }) => {
            w.put_u8(2);
            w.put_u32(node.0);
            w.put_u64(at.as_micros());
        }
        JournalRecord::Advance { at } => {
            w.put_u8(3);
            w.put_u64(at.as_micros());
        }
    }
}

/// Decodes one record payload (without the framing).
fn decode_record(r: &mut ByteReader) -> Result<JournalRecord, String> {
    let record = match r.take_u8()? {
        0 => JournalRecord::Op(ServiceOp::Ingest(decode_event(r)?)),
        1 => JournalRecord::Op(ServiceOp::QueryTrust {
            node: NodeId(r.take_u32()?),
            at: SimTime::from_micros(r.take_u64()?),
        }),
        2 => JournalRecord::Op(ServiceOp::QueryExposure {
            node: NodeId(r.take_u32()?),
            at: SimTime::from_micros(r.take_u64()?),
        }),
        3 => JournalRecord::Advance {
            at: SimTime::from_micros(r.take_u64()?),
        },
        other => return Err(format!("unknown journal record tag {other}")),
    };
    if !r.is_empty() {
        return Err(format!(
            "journal record has {} trailing bytes",
            r.remaining()
        ));
    }
    Ok(record)
}

/// Result of scanning a journal byte stream (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan {
    /// The decoded valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Whether the scan stopped before the end of the buffer — a torn
    /// tail or a corrupt record. Everything after `torn_at` was never
    /// acknowledged.
    pub torn: bool,
    /// Byte offset where scanning stopped (`bytes.len()` when clean).
    pub torn_at: usize,
}

/// The write-ahead journal: an append-only byte stream of framed,
/// checksummed records (see the module docs for format and semantics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventJournal {
    bytes: Vec<u8>,
    records: u64,
    /// Byte offset of the most recent record (for torn-write simulation).
    last_start: usize,
}

impl EventJournal {
    /// An empty journal.
    pub fn new() -> Self {
        EventJournal::default()
    }

    /// Appends one record; returns the record count after the append
    /// (the cursor a checkpoint taken *now* would embed).
    pub fn append(&mut self, record: &JournalRecord) -> u64 {
        let mut w = ByteWriter::new();
        encode_record(&mut w, record);
        let payload = w.finish();
        let mut frame = ByteWriter::new();
        frame.put_u32(payload.len() as u32);
        frame.put_u32(crc32(&payload));
        let header = frame.finish();
        self.last_start = self.bytes.len();
        self.bytes.extend_from_slice(&header);
        self.bytes.extend_from_slice(&payload);
        self.records += 1;
        self.records
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The journal's size on (simulated) disk.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw byte stream — what survives a crash.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a journal from surviving bytes, keeping only the valid
    /// prefix (a torn tail is discarded — those operations were never
    /// acknowledged).
    pub fn from_bytes(bytes: &[u8]) -> (EventJournal, JournalScan) {
        let scan = EventJournal::scan(bytes);
        let journal = EventJournal {
            bytes: bytes[..scan.torn_at].to_vec(),
            records: scan.records.len() as u64,
            last_start: 0,
        };
        (journal, scan)
    }

    /// Simulates a crash mid-append: truncates the journal inside its
    /// most recent record, leaving a torn tail. Returns `false` (and
    /// does nothing) on an empty journal. The torn record's operation
    /// counts as unacknowledged from here on.
    pub fn tear_last_record(&mut self) -> bool {
        if self.records == 0 {
            return false;
        }
        // Keep the frame header and half the payload: enough bytes that
        // a naive reader would try to parse them, which is the case the
        // CRC exists for.
        let tail = self.bytes.len() - self.last_start;
        self.bytes.truncate(self.last_start + 8 + (tail - 8) / 2);
        self.records -= 1;
        true
    }

    /// Scans a journal byte stream into its valid record prefix.
    pub fn scan(bytes: &[u8]) -> JournalScan {
        let mut records = Vec::new();
        let mut pos = 0usize;
        let torn = loop {
            if pos == bytes.len() {
                break false;
            }
            if pos + 8 > bytes.len() {
                break true;
            }
            let len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
            let stored =
                u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4-byte slice"));
            let Some(end) = (pos + 8).checked_add(len) else {
                break true;
            };
            if end > bytes.len() {
                break true;
            }
            let payload = &bytes[pos + 8..end];
            if crc32(payload) != stored {
                break true;
            }
            let mut r = ByteReader::new(payload);
            r.set_context("journal record");
            match decode_record(&mut r) {
                Ok(record) => records.push(record),
                Err(_) => break true,
            }
            pos = end;
        };
        JournalScan {
            records,
            torn,
            torn_at: pos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Op(ServiceOp::Ingest(ServiceEvent::Interaction {
                rater: NodeId(0),
                ratee: NodeId(1),
                outcome: InteractionOutcome::Success { quality: 0.75 },
                at: SimTime::from_secs(1),
            })),
            JournalRecord::Op(ServiceOp::Ingest(ServiceEvent::Disclosure {
                node: NodeId(2),
                respected: false,
                at: SimTime::from_secs(2),
            })),
            JournalRecord::Op(ServiceOp::QueryTrust {
                node: NodeId(1),
                at: SimTime::from_secs(3),
            }),
            JournalRecord::Op(ServiceOp::QueryExposure {
                node: NodeId(2),
                at: SimTime::from_secs(4),
            }),
            JournalRecord::Advance {
                at: SimTime::from_secs(10),
            },
        ]
    }

    #[test]
    fn round_trips_every_record_kind() {
        let mut journal = EventJournal::new();
        for (i, record) in sample_records().iter().enumerate() {
            assert_eq!(journal.append(record), i as u64 + 1);
        }
        let scan = EventJournal::scan(journal.as_bytes());
        assert!(!scan.torn);
        assert_eq!(scan.records, sample_records());
        assert_eq!(scan.torn_at, journal.byte_len());
        let (rebuilt, _) = EventJournal::from_bytes(journal.as_bytes());
        assert_eq!(rebuilt.records(), 5);
        assert_eq!(rebuilt.as_bytes(), journal.as_bytes());
    }

    #[test]
    fn torn_tail_drops_only_the_unacknowledged_record() {
        let mut journal = EventJournal::new();
        for record in sample_records() {
            journal.append(&record);
        }
        let full_len = journal.byte_len();
        assert!(journal.tear_last_record());
        assert!(journal.byte_len() < full_len);
        let scan = EventJournal::scan(journal.as_bytes());
        assert!(scan.torn, "a half-written record must be detected");
        assert_eq!(scan.records, sample_records()[..4]);
        // Rebuilding discards the torn bytes entirely.
        let (rebuilt, scan) = EventJournal::from_bytes(journal.as_bytes());
        assert_eq!(rebuilt.records(), 4);
        assert_eq!(rebuilt.byte_len(), scan.torn_at);
        assert!(!journal.is_empty());
        assert!(!EventJournal::new().tear_last_record());
    }

    #[test]
    fn any_corrupt_byte_stops_the_scan_at_that_record() {
        let mut journal = EventJournal::new();
        for record in sample_records() {
            journal.append(&record);
        }
        let clean = journal.as_bytes().to_vec();
        for i in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x40;
            let scan = EventJournal::scan(&corrupt);
            assert!(
                scan.records.len() < sample_records().len() || scan.torn,
                "flipping byte {i} must invalidate at least the record it hit"
            );
            // The prefix before the corruption still decodes.
            assert_eq!(
                scan.records[..],
                sample_records()[..scan.records.len()],
                "byte {i}: surviving prefix must be exact"
            );
        }
        // An empty stream is a clean, empty scan.
        let scan = EventJournal::scan(&[]);
        assert!(!scan.torn && scan.records.is_empty());
    }
}
