//! Replicated [`ServiceHost`]s behind one deterministic sequencer.
//!
//! Because the [`TrustService`] is a deterministic state machine over
//! an ordered operation stream, replication needs no consensus protocol
//! here: the [`ReplicaSet`] sequences every acknowledged operation into
//! a replication log and feeds the same stream, in the same order, to
//! every member. Each member is a full [`ServiceHost`] — its own
//! journal, its own checkpoint ring, its own crash schedule — so a
//! replica that restarts recovers its acknowledged prefix from its own
//! storage and catches up on the rest from the set's log.
//!
//! # Ordering rules
//!
//! - The primary applies first. Only operations the primary
//!   acknowledged enter the log; a bounced operation is the client's
//!   to retry, exactly as with a single host.
//! - Followers receive log entries strictly in log order: a lagging
//!   follower is caught up (from its own applied count) before it sees
//!   anything newer. Entries never reorder, so every replica walks the
//!   same state trajectory.
//! - Propagation is synchronous: after an acknowledged operation, every
//!   member that is up holds it. The final primary state is therefore
//!   bit-identical to an uninterrupted single host fed the same stream.
//!
//! # Failover
//!
//! When the primary is down at the next operation, the set promotes the
//! healthiest member: the candidate with the **newest committed epoch**
//! wins, ties broken by most operations applied, then by lowest replica
//! index — a deterministic rule, so a re-run fails over identically.
//! The promoted member is caught up from the log before it serves. With
//! no member up, the set answers [`HostError::Unavailable`] with the
//! earliest scheduled restart, and the driver's [`RetryPolicy`] does
//! what it does for a single host: re-route and re-send.
//!
//! # Divergence diagnostics
//!
//! After every committed epoch (with all members up and in sync) the
//! set compares each follower to the primary bit-for-bit: score bits,
//! epoch samples, service stats, and — for snapshot-capable mechanisms
//! — whole checkpoint bytes. A mismatch is a named, diagnosable error:
//! it identifies the replica, the epoch, and the first divergent
//! checkpoint section, and it surfaces as a hard
//! [`HostError::Rejected`] because retrying cannot help a state split.
//!
//! [`RetryPolicy`]: crate::RetryPolicy

use crate::event::ServiceOp;
use crate::host::{ApplyOutcome, HostConfig, HostError, HostState, ServiceHost};
use crate::journal::JournalRecord;
use crate::service::{checkpoint_sections, TrustService};
use tsn_simnet::{FaultInjector, FaultTarget, SimDuration, SimTime};

/// Configuration of a [`ReplicaSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaConfig {
    /// The per-member host configuration (every member is identical).
    pub host: HostConfig,
    /// Number of replicas (at least 1; 1 degenerates to a lone host
    /// behind the sequencer).
    pub replicas: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            host: HostConfig::default(),
            replicas: 3,
        }
    }
}

impl ReplicaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the host configuration's validation error, or a
    /// description of an invalid replication field.
    pub fn validate(&self) -> Result<(), String> {
        self.host.validate()?;
        if self.replicas == 0 {
            return Err("a replica set needs at least 1 replica".into());
        }
        if !self.host.journal {
            return Err(
                "replication requires the journal: a restarted member recovers its \
                 acknowledged prefix from its own journal before the log catches it up"
                    .into(),
            );
        }
        if self.host.recovery_grace != SimDuration::ZERO {
            return Err(
                "replication requires recovery_grace = 0: a restarted member must accept \
                 catch-up entries immediately, not bounce them through a degraded window"
                    .into(),
            );
        }
        Ok(())
    }
}

/// One completed promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// The replica that was primary before the promotion.
    pub from: usize,
    /// The promoted replica.
    pub to: usize,
    /// When the promotion happened (the operation that triggered it).
    pub at: SimTime,
    /// The promoted replica's committed epoch at promotion time.
    pub epoch: u64,
    /// Log entries replayed to catch the promoted replica up before it
    /// started serving.
    pub caught_up: u64,
}

/// A follower-to-primary state comparison (see the module docs).
#[derive(PartialEq)]
struct Fingerprint {
    scores: Vec<u64>,
    samples: Vec<crate::EpochSample>,
    stats: crate::ServiceStats,
    /// `None` when the mechanism cannot snapshot — the other three
    /// fields still pin the comparison bit-for-bit.
    checkpoint: Option<Vec<u8>>,
}

/// N replicated [`ServiceHost`]s behind one deterministic sequencer
/// (see the module docs).
#[derive(Debug)]
pub struct ReplicaSet {
    config: ReplicaConfig,
    hosts: Vec<ServiceHost>,
    primary: usize,
    /// Per-replica count of log entries applied (a global index: entry
    /// `k` of the whole run, not an offset into the compacted `log`).
    applied: Vec<u64>,
    /// The replication log suffix still needed by some member;
    /// `log[0]` is global entry `log_offset`.
    log: Vec<JournalRecord>,
    log_offset: u64,
    failovers: Vec<FailoverReport>,
    /// Newest epoch whose convergence check passed.
    converged_epoch: u64,
}

impl ReplicaSet {
    /// Creates a set of `config.replicas` fresh members; replica 0
    /// starts as primary.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error.
    pub fn new(config: ReplicaConfig) -> Result<Self, String> {
        config.validate()?;
        let hosts = (0..config.replicas)
            .map(|_| ServiceHost::new(config.host.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let applied = vec![0; config.replicas];
        Ok(ReplicaSet {
            hosts,
            primary: 0,
            applied,
            log: Vec::new(),
            log_offset: 0,
            failovers: Vec::new(),
            converged_epoch: 0,
            config,
        })
    }

    /// Attaches one shared fault plan: member `i` answers to
    /// [`FaultTarget::Replica`]`(i)`, so a single plan scripts the whole
    /// set (e.g. [`FaultPlan::replica_crash`] to kill the primary).
    ///
    /// [`FaultPlan::replica_crash`]: tsn_simnet::FaultPlan::replica_crash
    pub fn attach_faults(&mut self, injector: FaultInjector) {
        for (i, host) in self.hosts.iter_mut().enumerate() {
            host.attach_faults_for(injector.clone(), FaultTarget::Replica(i as u32));
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReplicaConfig {
        &self.config
    }

    /// The members, by replica index.
    pub fn hosts(&self) -> &[ServiceHost] {
        &self.hosts
    }

    /// The current primary's replica index.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// The current primary's running service, when it is up.
    pub fn primary_service(&self) -> Option<&TrustService> {
        self.hosts[self.primary].service()
    }

    /// Every promotion so far, in order.
    pub fn failovers(&self) -> &[FailoverReport] {
        &self.failovers
    }

    /// Per-replica applied log-entry counts (global indices).
    pub fn applied(&self) -> &[u64] {
        &self.applied
    }

    /// Total log entries ever sequenced.
    pub fn sequenced(&self) -> u64 {
        self.log_offset + self.log.len() as u64
    }

    /// Log entries currently retained for catch-up (the suffix some
    /// member still needs; the rest is compacted away).
    pub fn retained_log_len(&self) -> usize {
        self.log.len()
    }

    /// Test support: crashes the current primary **mid-journal-append**
    /// — its copy of the most recently sequenced entry is left torn on
    /// its own storage. The entry itself was acknowledged and
    /// replicated, so when the member restarts, its own recovery drops
    /// the torn record and the log re-delivers it. Call directly after
    /// an acknowledged operation.
    pub fn crash_primary_torn(&mut self, at: SimTime) {
        let p = self.primary;
        self.hosts[p].crash_torn(at);
        // Its recovered state will be one entry short of its journal's
        // acknowledged prefix; re-deliver that entry from the log.
        self.applied[p] = self.applied[p].saturating_sub(1);
    }

    /// Replica `i`'s committed epoch (0 while crashed).
    fn epoch_of(&self, i: usize) -> u64 {
        self.hosts[i].service().map_or(0, |s| s.epoch_index())
    }

    /// Runs every member's scheduled state transitions at `at` —
    /// fault-plan crashes and restarts. A member that restarts here
    /// recovers from its own storage; the sequencer catches it up from
    /// the log on the next propagation.
    fn tick_all(&mut self, at: SimTime) -> Result<(), String> {
        for host in &mut self.hosts {
            host.tick(at)?;
        }
        Ok(())
    }

    /// Ensures a serving primary, promoting if the current one is down:
    /// newest committed epoch wins, ties broken by most entries
    /// applied, then lowest index.
    ///
    /// # Errors
    ///
    /// [`HostError::Unavailable`] when no member is up, carrying the
    /// earliest scheduled restart.
    fn ensure_primary(&mut self, at: SimTime) -> Result<(), HostError> {
        if self.hosts[self.primary].state() == HostState::Up {
            return Ok(());
        }
        let mut best: Option<usize> = None;
        for i in 0..self.hosts.len() {
            if self.hosts[i].state() != HostState::Up {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    (self.epoch_of(i), self.applied[i]) > (self.epoch_of(b), self.applied[b])
                }
            };
            if better {
                best = Some(i);
            }
        }
        let Some(next) = best else {
            let retry_at = self
                .hosts
                .iter()
                .filter_map(|h| h.down_until())
                .min()
                .unwrap_or(SimTime::MAX);
            return Err(HostError::Unavailable {
                retry_at,
                reason: "no replica up",
            });
        };
        // The promoted member serves only once it holds every
        // acknowledged entry.
        let caught_up = self.sync_replica(next).map_err(HostError::Rejected)?;
        self.failovers.push(FailoverReport {
            from: self.primary,
            to: next,
            at,
            epoch: self.epoch_of(next),
            caught_up,
        });
        self.primary = next;
        Ok(())
    }

    /// Replays the log suffix replica `i` is missing, in order, while
    /// it stays up. Returns how many entries were delivered.
    ///
    /// # Errors
    ///
    /// A hard rejection of a logged entry — the primary acknowledged
    /// it, so a member refusing it is a state split, not a retry case.
    fn sync_replica(&mut self, i: usize) -> Result<u64, String> {
        let mut delivered = 0;
        while self.applied[i] < self.sequenced() {
            if self.hosts[i].state() != HostState::Up {
                break; // crashed mid-catch-up: stays lagging
            }
            let idx = (self.applied[i] - self.log_offset) as usize;
            let record = self.log[idx];
            match Self::deliver(&mut self.hosts[i], &record) {
                Ok(()) => {
                    self.applied[i] += 1;
                    delivered += 1;
                }
                Err(HostError::Unavailable { .. }) => break, // went down: stays lagging
                Err(HostError::Rejected(e)) => {
                    return Err(format!(
                        "replica {i} rejected acknowledged log entry {}: {e}",
                        self.applied[i]
                    ));
                }
            }
        }
        Ok(delivered)
    }

    /// Applies one log entry to one member.
    fn deliver(host: &mut ServiceHost, record: &JournalRecord) -> Result<(), HostError> {
        match record {
            JournalRecord::Op(op) => host.apply(op).map(|_| ()),
            JournalRecord::Advance { at } => host.advance_to(*at).map_err(HostError::Rejected),
        }
    }

    /// Sequences an acknowledged entry: appends it to the log, marks
    /// the primary (which already applied it) current, propagates to
    /// every other member, compacts, and runs the per-epoch convergence
    /// check.
    fn sequence(&mut self, record: JournalRecord) -> Result<(), String> {
        self.log.push(record);
        self.applied[self.primary] = self.sequenced();
        for i in 0..self.hosts.len() {
            if i != self.primary {
                self.sync_replica(i)?;
            }
        }
        // Entries every member holds can never be re-delivered — except
        // the newest, kept so a torn primary write ([`crash_primary_torn`])
        // can re-deliver it. (A long-dead member pins the log suffix it
        // is missing — the price of catch-up without state transfer.)
        //
        // [`crash_primary_torn`]: ReplicaSet::crash_primary_torn
        let floor = self.applied.iter().copied().min().unwrap_or(0);
        let floor = floor.min(self.sequenced().saturating_sub(1));
        let drop = floor.saturating_sub(self.log_offset) as usize;
        if drop > 0 {
            self.log.drain(..drop);
            self.log_offset = floor;
        }
        self.check_convergence()
    }

    /// Applies one operation through the sequencer (see the module
    /// docs for the ordering rules).
    ///
    /// # Errors
    ///
    /// [`HostError::Unavailable`] when no member can serve (retry);
    /// [`HostError::Rejected`] for hard rejections and for divergence.
    pub fn apply(&mut self, op: &ServiceOp) -> Result<ApplyOutcome, HostError> {
        let at = op.at();
        self.tick_all(at).map_err(HostError::Rejected)?;
        // The promotion loop is bounded: every Unavailable bounce means
        // the serving member just went down, and a down member is never
        // re-picked at the same instant.
        for _ in 0..=self.hosts.len() {
            self.ensure_primary(at)?;
            match self.hosts[self.primary].apply(op) {
                Ok(outcome) => {
                    self.sequence(JournalRecord::Op(*op))
                        .map_err(HostError::Rejected)?;
                    return Ok(outcome);
                }
                Err(HostError::Unavailable { .. }) => continue,
                Err(e @ HostError::Rejected(_)) => return Err(e),
            }
        }
        Err(HostError::Unavailable {
            retry_at: at.saturating_add(SimDuration::from_micros(1)),
            reason: "no replica up",
        })
    }

    /// Advances the set's clock (committing crossed epochs) through the
    /// sequencer, so every member commits the same epochs at the same
    /// boundaries.
    ///
    /// # Errors
    ///
    /// Propagates fatal recovery/service errors and divergence. A fully
    /// down set is not an error here — members catch up on restart.
    pub fn advance_to(&mut self, at: SimTime) -> Result<(), String> {
        self.tick_all(at)?;
        match self.ensure_primary(at) {
            Ok(()) => {}
            Err(HostError::Unavailable { .. }) => return Ok(()),
            Err(HostError::Rejected(e)) => return Err(e),
        }
        let before = self.hosts[self.primary]
            .service()
            .map_or(SimTime::ZERO, |s| s.now());
        if at <= before {
            return Ok(());
        }
        self.hosts[self.primary].advance_to(at)?;
        self.sequence(JournalRecord::Advance { at })
    }

    /// Compares every member to the primary once a newly committed
    /// epoch has every member up and in sync; records the epoch so each
    /// boundary is checked once.
    ///
    /// # Errors
    ///
    /// The divergence diagnosis (replica, epoch, first divergent
    /// checkpoint section).
    fn check_convergence(&mut self) -> Result<(), String> {
        let epoch = self.epoch_of(self.primary);
        if epoch <= self.converged_epoch {
            return Ok(());
        }
        let total = self.sequenced();
        let in_sync = (0..self.hosts.len())
            .all(|i| self.hosts[i].state() == HostState::Up && self.applied[i] == total);
        if !in_sync {
            return Ok(()); // checked again once everyone caught up
        }
        let reference = self.fingerprint(self.primary);
        for i in 0..self.hosts.len() {
            if i != self.primary && self.fingerprint(i) != reference {
                return Err(self.diagnose(i, epoch));
            }
        }
        self.converged_epoch = epoch;
        Ok(())
    }

    /// Replica `i`'s bit-exact state fingerprint (`i` must be up).
    fn fingerprint(&self, i: usize) -> Fingerprint {
        // tsn-lint: allow(no-unwrap, "the sequencer only marks a member in-sync after it served an all-up epoch, which requires Up")
        let service = self.hosts[i].service().expect("in-sync member is up");
        Fingerprint {
            scores: service.scores().iter().map(|s| s.to_bits()).collect(),
            samples: service.samples().to_vec(),
            stats: service.stats(),
            checkpoint: service.checkpoint().ok(),
        }
    }

    /// Names what diverged between replica `i` and the primary.
    fn diagnose(&self, i: usize, epoch: u64) -> String {
        let p = self.primary;
        let head = format!("replica {i} diverged from primary {p} at epoch {epoch}");
        let (a, b) = (self.fingerprint(p), self.fingerprint(i));
        if let (Some(pc), Some(fc)) = (&a.checkpoint, &b.checkpoint) {
            if let (Ok(ps), Ok(fs)) = (checkpoint_sections(pc), checkpoint_sections(fc)) {
                for (s, t) in ps.iter().zip(&fs) {
                    if pc[s.offset..s.offset + s.len] != fc[t.offset..t.offset + t.len] {
                        return format!("{head}: first divergent section '{}'", s.name);
                    }
                }
            }
        }
        // No snapshot to walk: name the first divergent field instead.
        let field = if a.scores != b.scores {
            "scores"
        } else if a.samples != b.samples {
            "samples"
        } else {
            "stats"
        };
        format!("{head}: first divergent field '{field}'")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServiceEvent;
    use crate::service::ServiceConfig;
    use tsn_reputation::InteractionOutcome;
    use tsn_simnet::{FaultPlan, NodeId};

    fn set(replicas: usize) -> ReplicaSet {
        ReplicaSet::new(ReplicaConfig {
            host: HostConfig {
                service: ServiceConfig {
                    nodes: 4,
                    epoch: SimDuration::from_secs(10),
                    ..ServiceConfig::default()
                },
                ..HostConfig::default()
            },
            replicas,
        })
        .unwrap()
    }

    fn ingest(rater: u32, ratee: u32, at_secs: u64) -> ServiceOp {
        ServiceOp::Ingest(ServiceEvent::Interaction {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: InteractionOutcome::Success { quality: 1.0 },
            at: SimTime::from_secs(at_secs),
        })
    }

    #[test]
    fn validation_names_the_broken_invariant() {
        let bad = ReplicaConfig {
            replicas: 0,
            ..ReplicaConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("at least 1"));
        let bad = ReplicaConfig {
            host: HostConfig {
                journal: false,
                ..HostConfig::default()
            },
            ..ReplicaConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("journal"));
        let bad = ReplicaConfig {
            host: HostConfig {
                recovery_grace: SimDuration::from_secs(1),
                ..HostConfig::default()
            },
            ..ReplicaConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("recovery_grace"));
    }

    #[test]
    fn every_member_tracks_the_primary_bit_for_bit() {
        let mut set = set(3);
        for e in 0..3u64 {
            for i in 0..5u64 {
                set.apply(&ingest((i % 4) as u32, ((i + 1) % 4) as u32, e * 10 + i))
                    .unwrap();
            }
            set.advance_to(SimTime::from_secs((e + 1) * 10)).unwrap();
        }
        assert_eq!(set.applied(), &[set.sequenced(); 3]);
        let p = set.primary_service().unwrap();
        for host in set.hosts() {
            let s = host.service().unwrap();
            assert_eq!(s.stats(), p.stats());
            assert_eq!(s.samples(), p.samples());
            assert_eq!(s.checkpoint().unwrap(), p.checkpoint().unwrap());
        }
        // The log compacts behind a fully in-sync set.
        assert!(set.retained_log_len() <= 1);
        assert!(set.failovers().is_empty());
    }

    #[test]
    fn killed_primary_promotes_the_healthiest_follower() {
        let mut set = set(3);
        set.attach_faults(
            FaultInjector::new(
                FaultPlan::replica_crash(0, SimTime::from_secs(15), SimDuration::from_secs(20)),
                5,
            )
            .unwrap(),
        );
        set.apply(&ingest(0, 1, 1)).unwrap();
        set.advance_to(SimTime::from_secs(10)).unwrap();
        // The crash at t=15 hits before this op; replica 1 takes over.
        set.apply(&ingest(1, 2, 16)).unwrap();
        assert_eq!(set.primary(), 1);
        assert_eq!(set.failovers().len(), 1);
        let f = set.failovers()[0];
        assert_eq!((f.from, f.to), (0, 1));
        assert_eq!(f.at, SimTime::from_secs(16));
        // Replica 0 restarts at t=35 and catches back up on the next
        // propagation.
        set.apply(&ingest(2, 3, 36)).unwrap();
        set.advance_to(SimTime::from_secs(40)).unwrap();
        assert_eq!(set.applied(), &[set.sequenced(); 3]);
        let p = set.primary_service().unwrap();
        assert_eq!(set.hosts()[0].service().unwrap().stats(), p.stats());
    }

    #[test]
    fn an_entirely_down_set_reports_the_earliest_restart() {
        let mut set = set(2);
        set.apply(&ingest(0, 1, 1)).unwrap();
        set.hosts[0].crash(SimTime::from_secs(2));
        set.hosts[1].crash(SimTime::from_secs(2));
        let err = set.apply(&ingest(1, 2, 3)).unwrap_err();
        assert!(matches!(
            err,
            HostError::Unavailable {
                reason: "no replica up",
                retry_at: SimTime::MAX,
            }
        ));
    }

    #[test]
    fn divergence_is_a_named_diagnosable_error() {
        let mut set = set(2);
        set.apply(&ingest(0, 1, 1)).unwrap();
        // Corrupt follower 1 behind the sequencer's back: an extra op
        // the primary never saw.
        set.hosts[1].apply(&ingest(2, 3, 2)).unwrap();
        let err = set.advance_to(SimTime::from_secs(10)).unwrap_err();
        assert!(err.contains("replica 1 diverged from primary 0"), "{err}");
        assert!(err.contains("at epoch 1"), "{err}");
        assert!(err.contains("first divergent section '"), "{err}");
    }

    #[test]
    fn torn_primary_write_is_redelivered_from_the_log() {
        let mut set = set(2);
        set.apply(&ingest(0, 1, 1)).unwrap();
        set.apply(&ingest(1, 2, 2)).unwrap();
        // The primary dies mid-append of the op it just acknowledged.
        set.crash_primary_torn(SimTime::from_secs(3));
        // Replica 1 serves; replica 0 needs an explicit restart.
        set.apply(&ingest(2, 3, 4)).unwrap();
        assert_eq!(set.primary(), 1);
        set.hosts[0].restart(SimTime::from_secs(5)).unwrap();
        assert!(set.hosts[0].last_recovery().unwrap().torn_tail);
        // The next sequenced entry also re-delivers the torn one.
        set.advance_to(SimTime::from_secs(10)).unwrap();
        assert_eq!(set.applied(), &[set.sequenced(); 2]);
        let p = set.primary_service().unwrap();
        let s = set.hosts()[0].service().unwrap();
        assert_eq!(s.stats(), p.stats());
        assert_eq!(s.checkpoint().unwrap(), p.checkpoint().unwrap());
    }
}
