//! Random-graph generators for synthetic social networks.
//!
//! Each generator documents the structural property it provides and is
//! verified by the structural tests in [`crate::metrics`].

use crate::graph::Graph;
use std::fmt;
use tsn_simnet::{NodeId, SimRng};

/// Invalid generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorError(String);

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid generator parameters: {}", self.0)
    }
}

impl std::error::Error for GeneratorError {}

fn err(msg: impl Into<String>) -> GeneratorError {
    GeneratorError(msg.into())
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// # Errors
///
/// Returns an error if `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut SimRng) -> Result<Graph, GeneratorError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(err(format!("edge probability {p} not in [0,1]")));
    }
    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
            }
        }
    }
    Ok(g)
}

/// Watts–Strogatz small-world graph: a ring lattice where each node links
/// to its `k` nearest neighbours (`k` even), each edge rewired with
/// probability `beta`.
///
/// # Errors
///
/// Returns an error if `k` is odd, `k >= n`, `n < 3`, or `beta` is not in
/// `[0, 1]`.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut SimRng,
) -> Result<Graph, GeneratorError> {
    if n < 3 {
        return Err(err("watts_strogatz requires n >= 3"));
    }
    if !k.is_multiple_of(2) || k == 0 {
        return Err(err(format!("k = {k} must be even and positive")));
    }
    if k >= n {
        return Err(err(format!("k = {k} must be < n = {n}")));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(err(format!("beta {beta} not in [0,1]")));
    }
    let mut g = Graph::with_nodes(n);
    // Ring lattice.
    for i in 0..n {
        for j in 1..=(k / 2) {
            let a = NodeId::from_index(i);
            let b = NodeId::from_index((i + j) % n);
            g.add_edge(a, b);
        }
    }
    // Rewire each lattice edge (i, i+j) with probability beta.
    for i in 0..n {
        for j in 1..=(k / 2) {
            if !rng.gen_bool(beta) {
                continue;
            }
            let a = NodeId::from_index(i);
            let old = NodeId::from_index((i + j) % n);
            // Choose a new endpoint avoiding self-loops and duplicates.
            // Skip if the node is already connected to everyone.
            if g.degree(a) >= n - 1 {
                continue;
            }
            let new = loop {
                let cand = NodeId::from_index(rng.gen_range(0..n));
                if cand != a && !g.has_edge(a, cand) {
                    break cand;
                }
            };
            if g.remove_edge(a, old) {
                g.add_edge(a, new);
            }
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m` existing nodes with probability
/// proportional to their degree. Produces a power-law degree distribution
/// (the "hub" structure of real social graphs).
///
/// # Errors
///
/// Returns an error if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut SimRng) -> Result<Graph, GeneratorError> {
    if m == 0 {
        return Err(err("m must be positive"));
    }
    if n <= m {
        return Err(err(format!("n = {n} must exceed m = {m}")));
    }
    let mut g = Graph::with_nodes(n);
    // Seed: clique over the first m+1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
        }
    }
    // Repeated-nodes list: each node appears once per incident edge, so
    // uniform sampling from it is degree-proportional sampling.
    let mut targets: Vec<usize> = Vec::with_capacity(4 * n * m);
    for (a, b) in g.edges().collect::<Vec<_>>() {
        targets.push(a.index());
        targets.push(b.index());
    }
    for v in (m + 1)..n {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            g.add_edge(NodeId::from_index(v), NodeId::from_index(t));
            targets.push(v);
            targets.push(t);
        }
    }
    Ok(g)
}

/// Planted-partition graph: `communities` equal-sized groups; edges inside
/// a group with probability `p_in`, across groups with probability `p_out`.
///
/// # Errors
///
/// Returns an error if `communities == 0`, `n` is not divisible by
/// `communities`, or probabilities are out of `[0, 1]`.
pub fn planted_communities(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut SimRng,
) -> Result<(Graph, Vec<u32>), GeneratorError> {
    if communities == 0 {
        return Err(err("communities must be positive"));
    }
    if !n.is_multiple_of(communities) {
        return Err(err(format!(
            "n = {n} not divisible by {communities} communities"
        )));
    }
    for p in [p_in, p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(err(format!("probability {p} not in [0,1]")));
        }
    }
    let size = n / communities;
    let membership: Vec<u32> = (0..n).map(|i| (i / size) as u32).collect();
    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let p = if membership[a] == membership[b] {
                p_in
            } else {
                p_out
            };
            if rng.gen_bool(p) {
                g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
            }
        }
    }
    Ok((g, membership))
}

/// Complete graph `K_n` (every pair connected). Useful as a degenerate
/// baseline where reputation gossip has full visibility.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
        }
    }
    g
}

/// Ring graph `C_n`: node `i` connected to `i±1 (mod n)`.
///
/// # Errors
///
/// Returns an error if `n < 3`.
pub fn ring(n: usize) -> Result<Graph, GeneratorError> {
    if n < 3 {
        return Err(err("ring requires n >= 3"));
    }
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_edge_density_matches_p() {
        let mut rng = SimRng::seed_from_u64(0);
        let n = 200;
        let g = erdos_renyi(n, 0.1, &mut rng).unwrap();
        let possible = n * (n - 1) / 2;
        let density = g.edge_count() as f64 / possible as f64;
        assert!((density - 0.1).abs() < 0.01, "density {density}");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).unwrap().edge_count(), 45);
        assert!(erdos_renyi(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let mut rng = SimRng::seed_from_u64(2);
        let g = watts_strogatz(100, 6, 0.2, &mut rng).unwrap();
        // Rewiring moves edges but never changes the count.
        assert_eq!(g.edge_count(), 100 * 6 / 2);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let mut rng = SimRng::seed_from_u64(3);
        let g = watts_strogatz(10, 4, 0.0, &mut rng).unwrap();
        for i in 0..10usize {
            assert_eq!(g.degree(NodeId::from_index(i)), 4);
            assert!(g.has_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % 10)));
            assert!(g.has_edge(NodeId::from_index(i), NodeId::from_index((i + 2) % 10)));
        }
    }

    #[test]
    fn watts_strogatz_validates() {
        let mut rng = SimRng::seed_from_u64(4);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err(), "odd k");
        assert!(watts_strogatz(10, 10, 0.1, &mut rng).is_err(), "k >= n");
        assert!(watts_strogatz(2, 2, 0.1, &mut rng).is_err(), "tiny n");
        assert!(watts_strogatz(10, 4, -0.1, &mut rng).is_err(), "beta");
    }

    #[test]
    fn barabasi_albert_edge_count_and_connectivity() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 300;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng).unwrap();
        // clique(m+1) + m per additional node
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
        assert!(g.is_connected());
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let mut rng = SimRng::seed_from_u64(6);
        let g = barabasi_albert(500, 2, &mut rng).unwrap();
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let mean_deg = 2.0 * g.edge_count() as f64 / 500.0;
        assert!(
            max_deg as f64 > 4.0 * mean_deg,
            "scale-free graphs have hubs: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn barabasi_albert_validates() {
        let mut rng = SimRng::seed_from_u64(7);
        assert!(barabasi_albert(5, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn planted_communities_are_denser_inside() {
        let mut rng = SimRng::seed_from_u64(8);
        let (g, membership) = planted_communities(120, 4, 0.3, 0.01, &mut rng).unwrap();
        let (mut inside, mut across) = (0usize, 0usize);
        for (a, b) in g.edges() {
            if membership[a.index()] == membership[b.index()] {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > 5 * across, "inside {inside} across {across}");
        assert_eq!(membership.iter().filter(|&&m| m == 0).count(), 30);
    }

    #[test]
    fn planted_communities_validates() {
        let mut rng = SimRng::seed_from_u64(9);
        assert!(
            planted_communities(10, 3, 0.5, 0.1, &mut rng).is_err(),
            "not divisible"
        );
        assert!(planted_communities(10, 0, 0.5, 0.1, &mut rng).is_err());
        assert!(planted_communities(10, 2, 1.5, 0.1, &mut rng).is_err());
    }

    #[test]
    fn complete_and_ring_shapes() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        let r = ring(6).unwrap();
        assert_eq!(r.edge_count(), 6);
        assert!(r.nodes().all(|v| r.degree(v) == 2));
        assert!(ring(2).is_err());
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = barabasi_albert(100, 2, &mut SimRng::seed_from_u64(42)).unwrap();
        let g2 = barabasi_albert(100, 2, &mut SimRng::seed_from_u64(42)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = erdos_renyi(5, 2.0, &mut SimRng::seed_from_u64(0)).unwrap_err();
        assert!(e.to_string().contains("invalid generator parameters"));
    }
}
