//! Compact undirected graph keyed by [`NodeId`].

use tsn_simnet::NodeId;

/// An undirected simple graph (no self-loops, no parallel edges) over a
/// dense node range `0..n`.
///
/// Adjacency lists are kept sorted, which makes `has_edge` a binary search
/// and iteration deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId::from_index(self.adj.len() - 1)
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Returns `true` if the edge was new. Self-loops are rejected with a
    /// panic because every generator in this crate is specified on simple
    /// graphs.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(a.index() < self.adj.len(), "node {a} out of range");
        assert!(b.index() < self.adj.len(), "node {b} out of range");
        match self.adj[a.index()].binary_search(&b) {
            Ok(_) => false,
            Err(pos_a) => {
                self.adj[a.index()].insert(pos_a, b);
                let pos_b = self.adj[b.index()]
                    .binary_search(&a)
                    .expect_err("edge must be symmetric-absent");
                self.adj[b.index()].insert(pos_b, a);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Removes the undirected edge `{a, b}`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a.index() >= self.adj.len() || b.index() >= self.adj.len() {
            return false;
        }
        match self.adj[a.index()].binary_search(&b) {
            Ok(pos_a) => {
                self.adj[a.index()].remove(pos_a);
                let pos_b = self.adj[b.index()]
                    .binary_search(&a)
                    // tsn-lint: allow(no-unwrap, "adjacency is symmetric by construction: add_edge/remove_edge maintain both directions together")
                    .expect("edge must be symmetric-present");
                self.adj[b.index()].remove(pos_b);
                self.edge_count -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a.index() < self.adj.len() && self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Sorted neighbours of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// Iterator over all edges, each reported once with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |a| {
            self.adj[a.index()]
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Breadth-first distances from `source`; `None` for unreachable nodes.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = Some(0);
        queue.push_back((source, 0u32));
        while let Some((u, du)) = queue.pop_front() {
            for &v in &self.adj[u.index()] {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back((v, du + 1));
                }
            }
        }
        dist
    }

    /// Connected components as a label per node (labels are the smallest
    /// node index in each component).
    pub fn components(&self) -> Vec<u32> {
        let mut label = vec![u32::MAX; self.adj.len()];
        for s in 0..self.adj.len() {
            if label[s] != u32::MAX {
                continue;
            }
            let mut stack = vec![s];
            label[s] = s as u32;
            while let Some(u) = stack.pop() {
                for &v in &self.adj[u] {
                    if label[v.index()] == u32::MAX {
                        label[v.index()] = s as u32;
                        stack.push(v.index());
                    }
                }
            }
        }
        label
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let labels = self.components();
        let mut uniq: Vec<u32> = labels;
        uniq.sort_unstable();
        uniq.dedup();
        uniq.len()
    }

    /// Whether the graph is connected (vacuously true when empty).
    pub fn is_connected(&self) -> bool {
        self.node_count() == 0 || self.component_count() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
        }
        g
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::with_nodes(3);
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(!g.add_edge(NodeId(1), NodeId(0)), "parallel edge rejected");
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn edges_reported_once() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        assert_eq!(g.component_count(), 3); // {0,1}, {2,3}, {4}
        assert!(!g.is_connected());
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4));
        assert!(g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::with_nodes(0).is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = Graph::with_nodes(1);
        let n = g.add_node();
        assert_eq!(n, NodeId(1));
        assert_eq!(g.node_count(), 2);
        g.add_edge(NodeId(0), n);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }
}
