//! User interest profiles.
//!
//! The satisfaction model (ref \[17\] of the paper) needs each participant to
//! have *intentions*: which content, services or partners they prefer.
//! Interest profiles give those preferences a concrete, measurable form: a
//! point on the simplex over `k` topics. Content items carry a topic
//! vector too, so "the user got what she wanted" becomes a cosine
//! similarity.

use tsn_simnet::SimRng;

/// The topic space shared by all profiles in one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterestSpace {
    /// Number of topics.
    pub topics: usize,
}

impl InterestSpace {
    /// Creates a space with `topics` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `topics == 0`.
    pub fn new(topics: usize) -> Self {
        assert!(topics > 0, "interest space needs at least one topic");
        InterestSpace { topics }
    }

    /// Samples a random profile: Dirichlet-like via normalized exponential
    /// draws, optionally concentrated on a "home" topic (social users have
    /// a dominant interest).
    pub fn sample_profile(&self, concentration: f64, rng: &mut SimRng) -> InterestProfile {
        assert!(concentration >= 0.0, "concentration must be non-negative");
        let mut w: Vec<f64> = (0..self.topics).map(|_| rng.gen_exp(1.0)).collect();
        if concentration > 0.0 {
            let home = rng.gen_range(0..self.topics);
            w[home] += concentration * w.iter().sum::<f64>();
        }
        InterestProfile::new(w)
    }
}

/// A normalized interest vector (sums to 1).
#[derive(Debug, Clone, PartialEq)]
pub struct InterestProfile {
    weights: Vec<f64>,
}

impl InterestProfile {
    /// Builds a profile from non-negative weights, normalizing to sum 1.
    ///
    /// # Panics
    ///
    /// Panics if the vector is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "profile must have at least one topic");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        InterestProfile {
            weights: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// A profile entirely focused on one topic.
    ///
    /// # Panics
    ///
    /// Panics if `topic >= topics`.
    pub fn single_topic(topics: usize, topic: usize) -> Self {
        assert!(topic < topics, "topic out of range");
        let mut w = vec![0.0; topics];
        w[topic] = 1.0;
        InterestProfile { weights: w }
    }

    /// The uniform profile.
    pub fn uniform(topics: usize) -> Self {
        assert!(topics > 0);
        InterestProfile {
            weights: vec![1.0 / topics as f64; topics],
        }
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of topics.
    pub fn topics(&self) -> usize {
        self.weights.len()
    }

    /// Cosine similarity with another profile in the same space, in
    /// `\[0, 1\]` because weights are non-negative.
    ///
    /// # Panics
    ///
    /// Panics if the spaces differ.
    pub fn similarity(&self, other: &InterestProfile) -> f64 {
        assert_eq!(
            self.topics(),
            other.topics(),
            "profiles live in different spaces"
        );
        let dot: f64 = self
            .weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| a * b)
            .sum();
        let na: f64 = self.weights.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nb: f64 = other.weights.iter().map(|b| b * b).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }

    /// The dominant topic (lowest index wins ties).
    pub fn dominant_topic(&self) -> usize {
        let mut best = 0;
        for (i, &w) in self.weights.iter().enumerate() {
            if w > self.weights[best] {
                best = i;
            }
        }
        best
    }

    /// Shannon entropy in nats; 0 for a single-topic profile, `ln(k)` for
    /// the uniform profile. Used as a "breadth of interest" measure.
    pub fn entropy(&self) -> f64 {
        self.weights
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| -w * w.ln())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_normalize() {
        let p = InterestProfile::new(vec![2.0, 2.0, 4.0]);
        assert_eq!(p.weights(), &[0.25, 0.25, 0.5]);
        assert_eq!(p.topics(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn all_zero_profile_panics() {
        let _ = InterestProfile::new(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = InterestProfile::new(vec![1.0, -0.5]);
    }

    #[test]
    fn similarity_extremes() {
        let a = InterestProfile::single_topic(3, 0);
        let b = InterestProfile::single_topic(3, 1);
        assert_eq!(a.similarity(&b), 0.0);
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = InterestProfile::new(vec![1.0, 2.0, 3.0]);
        let b = InterestProfile::new(vec![3.0, 1.0, 1.0]);
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn dominant_topic_and_entropy() {
        let p = InterestProfile::new(vec![0.1, 0.7, 0.2]);
        assert_eq!(p.dominant_topic(), 1);
        assert_eq!(InterestProfile::single_topic(4, 2).entropy(), 0.0);
        let u = InterestProfile::uniform(4);
        assert!((u.entropy() - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn sampled_profiles_are_valid_and_deterministic() {
        let space = InterestSpace::new(8);
        let mut r1 = SimRng::seed_from_u64(5);
        let mut r2 = SimRng::seed_from_u64(5);
        let p1 = space.sample_profile(2.0, &mut r1);
        let p2 = space.sample_profile(2.0, &mut r2);
        assert_eq!(p1, p2);
        let sum: f64 = p1.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concentration_sharpens_profiles() {
        let space = InterestSpace::new(10);
        let mut rng = SimRng::seed_from_u64(6);
        let n = 200;
        let avg_entropy = |c: f64, rng: &mut SimRng| {
            (0..n)
                .map(|_| space.sample_profile(c, rng).entropy())
                .sum::<f64>()
                / n as f64
        };
        let diffuse = avg_entropy(0.0, &mut rng);
        let sharp = avg_entropy(5.0, &mut rng);
        assert!(
            sharp < diffuse,
            "higher concentration → lower entropy ({sharp} vs {diffuse})"
        );
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn cross_space_similarity_panics() {
        let a = InterestProfile::uniform(3);
        let b = InterestProfile::uniform(4);
        let _ = a.similarity(&b);
    }
}
