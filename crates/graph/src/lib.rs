//! # tsn-graph — social-graph substrate
//!
//! Synthetic social networks for the `tsn` reproduction. The paper reasons
//! about "large-scale social networks" (Facebook, MySpace, …); since no
//! real trace ships with a position paper, experiments run on generated
//! graphs whose structural properties (degree skew, clustering, short
//! paths) match what the cited reputation literature assumes:
//!
//! * [`generators::erdos_renyi`] — baseline random graph;
//! * [`generators::watts_strogatz`] — small-world (high clustering, short
//!   paths), the classic social-network shape;
//! * [`generators::barabasi_albert`] — scale-free (power-law degrees),
//!   matching the hub structure PowerTrust exploits;
//! * [`generators::planted_communities`] — dense communities with sparse
//!   bridges, for privacy-disclosure locality experiments.
//!
//! [`Graph`] is a compact undirected adjacency structure indexed by
//! [`NodeId`]; [`metrics`] provides the structural measurements used by
//! tests and EXPERIMENTS.md to verify each generator produces the shape it
//! promises.
//!
//! ```
//! use tsn_graph::{generators, metrics};
//! use tsn_simnet::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let g = generators::watts_strogatz(100, 6, 0.1, &mut rng).unwrap();
//! assert_eq!(g.node_count(), 100);
//! let cc = metrics::average_clustering(&g);
//! assert!(cc > 0.2, "small-world graphs are clustered, got {cc}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod interest;
pub mod metrics;

pub use generators::GeneratorError;
pub use graph::Graph;
pub use interest::{InterestProfile, InterestSpace};
pub use tsn_simnet::NodeId;
