//! Structural measurements on social graphs.

use crate::graph::Graph;
use tsn_simnet::{NodeId, SimRng};

/// Degree of every node, indexed by node.
pub fn degree_sequence(g: &Graph) -> Vec<usize> {
    g.nodes().map(|v| g.degree(v)).collect()
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let degrees = degree_sequence(g);
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degrees {
        hist[d] += 1;
    }
    hist
}

/// Mean degree (0 for the empty graph).
pub fn mean_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    }
}

/// Local clustering coefficient of one node: fraction of neighbour pairs
/// that are themselves connected. Zero for degree < 2.
pub fn local_clustering(g: &Graph, node: NodeId) -> f64 {
    let neigh = g.neighbors(node);
    let k = neigh.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(neigh[i], neigh[j]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// Average of local clustering coefficients (Watts–Strogatz definition).
pub fn average_clustering(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    g.nodes().map(|v| local_clustering(g, v)).sum::<f64>() / g.node_count() as f64
}

/// Average shortest-path length over reachable pairs, estimated by BFS
/// from `samples` random sources (exact when `samples >= n`).
///
/// Returns `None` when the graph has no reachable pair.
pub fn average_path_length(g: &Graph, samples: usize, rng: &mut SimRng) -> Option<f64> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let sources: Vec<NodeId> = if samples >= n {
        g.nodes().collect()
    } else {
        let mut all: Vec<NodeId> = g.nodes().collect();
        rng.shuffle(&mut all);
        all.truncate(samples.max(1));
        all
    };
    let mut total = 0u64;
    let mut pairs = 0u64;
    for s in sources {
        for (i, d) in g.bfs_distances(s).into_iter().enumerate() {
            if let Some(d) = d {
                if i != s.index() {
                    total += u64::from(d);
                    pairs += 1;
                }
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

/// Graph diameter (longest shortest path) over the sampled sources; exact
/// when `samples >= n`. `None` for graphs with no reachable pair.
pub fn diameter(g: &Graph, samples: usize, rng: &mut SimRng) -> Option<u32> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let sources: Vec<NodeId> = if samples >= n {
        g.nodes().collect()
    } else {
        let mut all: Vec<NodeId> = g.nodes().collect();
        rng.shuffle(&mut all);
        all.truncate(samples.max(1));
        all
    };
    let mut best: Option<u32> = None;
    for s in sources {
        for d in g.bfs_distances(s).into_iter().flatten() {
            best = Some(best.map_or(d, |b| b.max(d)));
        }
    }
    best.filter(|&d| d > 0)
}

/// Degree assortativity (Pearson correlation of degrees across edges).
/// `None` when the graph has no edges or degrees are constant.
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    if g.edge_count() == 0 {
        return None;
    }
    let mut xs = Vec::with_capacity(g.edge_count() * 2);
    let mut ys = Vec::with_capacity(g.edge_count() * 2);
    for (a, b) in g.edges() {
        let da = g.degree(a) as f64;
        let db = g.degree(b) as f64;
        // Count each edge in both orientations to symmetrize.
        xs.push(da);
        ys.push(db);
        xs.push(db);
        ys.push(da);
    }
    pearson(&xs, &ys)
}

/// Pearson correlation of two equally long samples; `None` when undefined
/// (length < 2 or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        None
    } else {
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }
}

/// Spearman rank correlation; `None` when undefined. Ties receive average
/// ranks (midrank method).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rx = midranks(xs);
    let ry = midranks(ys);
    pearson(&rx, &ry)
}

fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_metrics_on_star() {
        // Star K_{1,4}: hub degree 4, leaves degree 1.
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId::from_index(i));
        }
        assert_eq!(degree_sequence(&g), vec![4, 1, 1, 1, 1]);
        assert_eq!(degree_histogram(&g), vec![0, 4, 0, 0, 1]);
        assert!((mean_degree(&g) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let g = generators::complete(3);
        assert_eq!(average_clustering(&g), 1.0);
        let mut star = Graph::with_nodes(4);
        for i in 1..4 {
            star.add_edge(NodeId(0), NodeId::from_index(i));
        }
        assert_eq!(average_clustering(&star), 0.0);
    }

    #[test]
    fn path_length_of_ring() {
        let g = generators::ring(6).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        // Ring C6: distances 1,1,2,2,3 from each node → mean 1.8.
        let apl = average_path_length(&g, 100, &mut rng).unwrap();
        assert!((apl - 1.8).abs() < 1e-12);
        assert_eq!(diameter(&g, 100, &mut rng), Some(3));
    }

    #[test]
    fn path_length_none_when_isolated() {
        let g = Graph::with_nodes(3);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(average_path_length(&g, 10, &mut rng), None);
        assert_eq!(diameter(&g, 10, &mut rng), None);
    }

    #[test]
    fn small_world_properties() {
        // The defining claim of Watts–Strogatz: at moderate beta the graph
        // keeps lattice-like clustering but gains random-like path lengths.
        let mut rng = SimRng::seed_from_u64(1);
        let n = 400;
        let lattice = generators::watts_strogatz(n, 8, 0.0, &mut rng).unwrap();
        let sw = generators::watts_strogatz(n, 8, 0.1, &mut rng).unwrap();
        let cc_lattice = average_clustering(&lattice);
        let cc_sw = average_clustering(&sw);
        let apl_lattice = average_path_length(&lattice, 50, &mut rng).unwrap();
        let apl_sw = average_path_length(&sw, 50, &mut rng).unwrap();
        assert!(cc_sw > 0.5 * cc_lattice, "clustering survives rewiring");
        assert!(apl_sw < 0.5 * apl_lattice, "paths shorten dramatically");
    }

    #[test]
    fn pearson_basics() {
        let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None, "zero variance");
        assert_eq!(pearson(&[1.0], &[2.0]), None, "too short");
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None, "length mismatch");
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear relation: Spearman 1, Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId::from_index(i));
        }
        let r = degree_assortativity(&g).unwrap();
        assert!(r < -0.9, "stars are disassortative, got {r}");
        assert_eq!(degree_assortativity(&Graph::with_nodes(3)), None);
    }
}
