//! Experiment-row structures and table rendering shared by the
//! `tsn-bench` binaries, so every figure regeneration prints rows in one
//! consistent, machine-checkable format (and EXPERIMENTS.md quotes them
//! verbatim).

use crate::json::JsonValue;
use std::borrow::Cow;

/// Escapes one CSV field per RFC 4180: a field containing a comma, a
/// double quote, or a line break is wrapped in double quotes with inner
/// quotes doubled; anything else passes through unchanged (borrowed).
///
/// Every string interpolated into a CSV emitter must pass through here —
/// interpolating raw labels corrupts the table the moment a sweep axis
/// name or a string-valued parameter contains `,` or `"`.
pub fn csv_field(field: &str) -> Cow<'_, str> {
    if field.contains(['"', ',', '\n', '\r']) {
        Cow::Owned(format!("\"{}\"", field.replace('"', "\"\"")))
    } else {
        Cow::Borrowed(field)
    }
}

/// One labelled row of numeric cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Row label (e.g. `"eigentrust"`, `"level=3"`).
    pub label: String,
    /// Cells, matching the table's column headers.
    pub values: Vec<f64>,
}

impl ExperimentRow {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        ExperimentRow {
            label: label.into(),
            values,
        }
    }
}

/// A titled table with column headers.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    /// Experiment id (e.g. `"F2R"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (not counting the label column).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<ExperimentRow>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ExperimentTable {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the headers.
    pub fn push(&mut self, row: ExperimentRow) {
        assert_eq!(
            row.values.len(),
            self.columns.len(),
            "row '{}' has {} cells for {} columns",
            row.label,
            row.values.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text (what the bench binaries
    /// print).
    pub fn render(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("config".len()))
            .max()
            .unwrap_or(6)
            .max(6);
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len().max(8))
            .collect::<Vec<_>>();
        let mut out = String::new();
        out.push_str(&format!("## [{}] {}\n", self.id, self.title));
        out.push_str(&format!("{:label_width$}", "config"));
        for (c, w) in self.columns.iter().zip(&col_width) {
            out.push_str(&format!("  {c:>w$}", w = w));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:label_width$}", row.label));
            for (v, w) in row.values.iter().zip(&col_width) {
                out.push_str(&format!("  {v:>w$.4}", w = w));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON line (for machine consumption next to the text).
    pub fn to_json(&self) -> String {
        JsonValue::object([
            ("id", JsonValue::str(&self.id)),
            ("title", JsonValue::str(&self.title)),
            (
                "columns",
                JsonValue::array(self.columns.iter().map(JsonValue::str)),
            ),
            (
                "rows",
                JsonValue::array(self.rows.iter().map(|row| {
                    JsonValue::object([
                        ("label", JsonValue::str(&row.label)),
                        (
                            "values",
                            JsonValue::array(row.values.iter().map(|&v| JsonValue::F64(v))),
                        ),
                    ])
                })),
            ),
        ])
        .to_string()
    }

    /// Column index by header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The values of one column across rows.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    pub fn column(&self, name: &str) -> Vec<f64> {
        let i = self
            .column_index(name)
            // tsn-lint: allow(no-unwrap, "documented panic: column() is a programmer-facing lookup and the message names the missing column")
            .unwrap_or_else(|| panic!("no column {name}"));
        self.rows.iter().map(|r| r.values[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ExperimentTable {
        let mut t = ExperimentTable::new("T1", "demo", ["alpha", "beta"]);
        t.push(ExperimentRow::new("row1", vec![1.0, 2.0]));
        t.push(ExperimentRow::new("row2", vec![3.0, 4.0]));
        t
    }

    #[test]
    fn render_contains_everything() {
        let r = table().render();
        assert!(r.contains("[T1] demo"));
        assert!(r.contains("alpha"));
        assert!(r.contains("row2"));
        assert!(r.contains("3.0000"));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn mismatched_row_panics() {
        let mut t = table();
        t.push(ExperimentRow::new("bad", vec![1.0]));
    }

    #[test]
    fn column_extraction() {
        let t = table();
        assert_eq!(t.column("alpha"), vec![1.0, 3.0]);
        assert_eq!(t.column("beta"), vec![2.0, 4.0]);
        assert_eq!(t.column_index("beta"), Some(1));
        assert_eq!(t.column_index("gamma"), None);
    }

    #[test]
    fn csv_field_quotes_per_rfc4180() {
        assert_eq!(csv_field("plain"), "plain");
        assert!(matches!(csv_field("plain"), Cow::Borrowed(_)));
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("he said \"hi\""), "\"he said \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_field("cr\rhere"), "\"cr\rhere\"");
        assert_eq!(csv_field(""), "");
    }

    #[test]
    fn json_shape_is_stable() {
        let t = table();
        assert_eq!(
            t.to_json(),
            "{\"id\":\"T1\",\"title\":\"demo\",\"columns\":[\"alpha\",\"beta\"],\"rows\":[{\"label\":\"row1\",\"values\":[1.0,2.0]},{\"label\":\"row2\",\"values\":[3.0,4.0]}]}"
        );
    }
}
