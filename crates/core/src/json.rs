//! A minimal JSON document model and writer.
//!
//! The workspace builds without external dependencies, so the handful of
//! machine-readable outputs (experiment tables, sweep reports, the CLI's
//! `--json` mode) share this tiny emitter instead of a serialization
//! framework. Only what the emitters need is implemented: construction
//! and rendering, not parsing.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also the rendering of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number; NaN and infinities render as `null`.
    F64(f64),
    /// An unsigned integer (exact, unlike `F64` beyond 2^53).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object.
    pub fn object(fields: impl IntoIterator<Item = (impl Into<String>, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for an array.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Escapes a string into a JSON string literal (with quotes).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (or `null` when non-finite, which
/// JSON cannot represent).
pub fn format_f64(v: f64) -> String {
    // Normalize -0.0 so emitters never print a signed zero.
    let v = if v == 0.0 { 0.0 } else { v };
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip representation and is
        // always a valid JSON number for finite values.
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::F64(v) => f.write_str(&format_f64(*v)),
            JsonValue::U64(v) => write!(f, "{v}"),
            JsonValue::Str(s) => f.write_str(&escape_str(s)),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{value}", escape_str(key))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(1.5f64).to_string(), "1.5");
        assert_eq!(JsonValue::from(3u64).to_string(), "3");
        assert_eq!(JsonValue::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_render() {
        let v = JsonValue::object([
            ("xs", JsonValue::array([1.0.into(), 2.0.into()])),
            ("name", "demo".into()),
        ]);
        assert_eq!(v.to_string(), "{\"xs\":[1.0,2.0],\"name\":\"demo\"}");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(format_f64(0.1), "0.1");
        assert_eq!(format_f64(1.0), "1.0");
        assert_eq!(format_f64(-0.0), "0.0");
    }
}
