//! Scenario configuration: the settable knobs of the system.
//!
//! The paper's Figure 2 (right) calls privacy guarantees and reputation
//! power "the two main settable aspects"; [`ScenarioConfig`] exposes them
//! (disclosure level, mechanism, anonymization) plus the applicative
//! context (population mix, policy strictness, selection policy).

use crate::runner::ValidationError;
use tsn_reputation::{
    AnonymizationConfig, DisclosurePolicy, MechanismKind, PopulationConfig, SelectionPolicy,
};
use tsn_simnet::{DynamicsPlan, MembershipConfig};

/// How strict the users' privacy policies are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyProfile {
    /// Everyone runs permissive policies.
    Permissive,
    /// Everyone runs strict (friends-only, high-trust) policies.
    Strict,
    /// Users split between the two (privacy preferences are individual —
    /// paper Section 2.3).
    Mixed,
}

impl PolicyProfile {
    /// All profiles, for sweeps.
    pub const ALL: [PolicyProfile; 3] = [
        PolicyProfile::Permissive,
        PolicyProfile::Mixed,
        PolicyProfile::Strict,
    ];

    /// Label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyProfile::Permissive => "permissive",
            PolicyProfile::Strict => "strict",
            PolicyProfile::Mixed => "mixed",
        }
    }

    /// Fraction of users on strict policies.
    pub fn strict_fraction(self) -> f64 {
        match self {
            PolicyProfile::Permissive => 0.0,
            PolicyProfile::Mixed => 0.5,
            PolicyProfile::Strict => 1.0,
        }
    }
}

/// Full configuration of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Population size.
    pub nodes: usize,
    /// Rounds of the interaction loop.
    pub rounds: usize,
    /// Interactions each user initiates per round.
    pub interactions_per_node: usize,
    /// Reputation mechanism.
    pub mechanism: MechanismKind,
    /// Disclosure ladder level `0..=4` (the paper's "quantity of shared
    /// information" knob; see [`DisclosurePolicy::ladder`]).
    pub disclosure_level: usize,
    /// Extra anonymization layer, if any.
    pub anonymization: Option<AnonymizationConfig>,
    /// Partner selection policy.
    pub selection: SelectionPolicy,
    /// Users' privacy-policy strictness profile.
    pub policy_profile: PolicyProfile,
    /// Behaviour mix of the population.
    pub population: PopulationConfig,
    /// Mean privacy concern of users (individual concerns jitter around
    /// it).
    pub privacy_concern_mean: f64,
    /// Whether users adapt their personal disclosure to their current
    /// trust (the Section-3 loop "the less a user trusts … the less she
    /// discloses"). Disable for open-loop sweeps.
    pub adaptive_disclosure: bool,
    /// Rounds between mechanism refreshes.
    pub refresh_every: usize,
    /// Pre-trusted seed peers for EigenTrust.
    pub pretrusted: usize,
    /// Watts–Strogatz mean degree (even).
    pub graph_degree: usize,
    /// Watts–Strogatz rewiring probability.
    pub graph_beta: f64,
    /// Probability a malicious recipient leaks granted data per grant.
    pub leak_probability: f64,
    /// Availability churn: probability each user is offline in a given
    /// round (0 disables churn). Offline users neither consume nor serve.
    ///
    /// This is the legacy i.i.d. coin-flip model; for session-based
    /// churn with durations, whitewashing and partitions use `dynamics`
    /// instead (the two are mutually exclusive).
    pub churn_offline: f64,
    /// Full dynamics plan: session-based churn (exponential session /
    /// downtime durations), whitewash re-joins (fresh identities with
    /// reset reputation), and scheduled partitions that confine partner
    /// selection to a user's own group while active. Regional latency in
    /// the plan is accepted but has no effect here — the abstract
    /// scenario engine has no transport (the protocol crate's round
    /// driver executes it for real). `None` leaves the legacy behaviour
    /// bit-identical.
    pub dynamics: Option<DynamicsPlan>,
    /// Peer-sampling membership overlay (the paper's view-shuffling
    /// model): each node keeps a bounded [`PartialView`] refreshed by
    /// deterministic push-pull shuffles and bootstrapped through relay
    /// nodes, and partner candidates come from the local view instead
    /// of the global graph neighborhood. `None` (the default) keeps
    /// global, graph-based selection bit-identical to the goldens.
    ///
    /// [`PartialView`]: tsn_simnet::PartialView
    pub membership: Option<MembershipConfig>,
    /// Weight of the *consumer-role* satisfaction in a user's overall
    /// satisfaction; the rest is the provider-role satisfaction (ref \[17\]
    /// models participants in both roles). Must be in `[0, 1]`.
    pub consumer_role_weight: f64,
    /// Ballot-stuffing amplification: when the rater identity is *not*
    /// disclosed, nothing ties reports to a rater, so a lying rater can
    /// submit this many copies of each false report (the classic
    /// ballot-stuffing / badmouthing attack that anonymity enables and
    /// identity-based rate limiting prevents). 1 disables the attack.
    pub ballot_stuffing_factor: usize,
    /// Round-engine sharding (see `DESIGN.md` §10):
    ///
    /// * `1` (default) — the serial engine: one thread, one RNG stream,
    ///   intra-round feedback visible immediately. Bit-identical to the
    ///   pinned goldens.
    /// * `0` — auto: the sharded engine once `nodes ≥` the auto
    ///   threshold, serial below it. The engine choice depends only on
    ///   the node count (never on hardware), so auto stays deterministic
    ///   across machines.
    /// * `k ≥ 2` — the sharded engine with `k` contiguous node shards.
    ///
    /// The sharded engine executes the interaction phase shard-parallel
    /// against a round-start snapshot and merges feedback in fixed shard
    /// order; its outcome is *independent of the shard count* (1, 2 or
    /// 8 shards are bit-identical) but differs from the serial engine,
    /// whose consumers see same-round feedback.
    pub shards: usize,
    /// Cap on *raw* disclosure-ledger records kept in memory (oldest
    /// evicted first). Aggregate privacy measurements always cover the
    /// full history; the cap only bounds the memory of the raw audit
    /// trail on long runs. `None` keeps every record.
    pub ledger_raw_record_cap: Option<usize>,
    /// Random seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            nodes: 100,
            rounds: 30,
            interactions_per_node: 2,
            mechanism: MechanismKind::EigenTrust,
            disclosure_level: 4,
            anonymization: None,
            selection: SelectionPolicy::Proportional { sharpness: 2.0 },
            policy_profile: PolicyProfile::Mixed,
            population: PopulationConfig::with_malicious(0.2),
            privacy_concern_mean: 0.5,
            adaptive_disclosure: false,
            refresh_every: 5,
            pretrusted: 3,
            graph_degree: 8,
            graph_beta: 0.1,
            leak_probability: 0.3,
            churn_offline: 0.0,
            dynamics: None,
            membership: None,
            consumer_role_weight: 0.75,
            ballot_stuffing_factor: 4,
            shards: 1,
            ledger_raw_record_cap: None,
            seed: 42,
        }
    }
}

impl ScenarioConfig {
    /// The disclosure policy this configuration induces.
    pub fn disclosure_policy(&self) -> DisclosurePolicy {
        DisclosurePolicy::ladder(self.disclosure_level)
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if self.nodes < 4 {
            return Err(ValidationError::new("nodes", "need at least 4 nodes"));
        }
        if self.rounds == 0 {
            return Err(ValidationError::new("rounds", "must be positive"));
        }
        if self.interactions_per_node == 0 {
            return Err(ValidationError::new(
                "interactions_per_node",
                "must be positive",
            ));
        }
        if self.disclosure_level >= DisclosurePolicy::LADDER_LEVELS {
            return Err(ValidationError::new(
                "disclosure_level",
                format!("must be < {}", DisclosurePolicy::LADDER_LEVELS),
            ));
        }
        if !(0.0..=1.0).contains(&self.privacy_concern_mean) {
            return Err(ValidationError::new(
                "privacy_concern_mean",
                "must be in [0,1]",
            ));
        }
        if !(0.0..=1.0).contains(&self.leak_probability) {
            return Err(ValidationError::new("leak_probability", "must be in [0,1]"));
        }
        if self.refresh_every == 0 {
            return Err(ValidationError::new("refresh_every", "must be positive"));
        }
        if self.ballot_stuffing_factor == 0 {
            return Err(ValidationError::new(
                "ballot_stuffing_factor",
                "must be at least 1",
            ));
        }
        if !(0.0..=1.0).contains(&self.churn_offline) {
            return Err(ValidationError::new("churn_offline", "must be in [0,1]"));
        }
        if let Some(plan) = &self.dynamics {
            plan.validate()
                .map_err(|m| ValidationError::new("dynamics", m))?;
            if self.churn_offline > 0.0 {
                return Err(ValidationError::new(
                    "dynamics",
                    "churn_offline and a dynamics plan are mutually exclusive; \
                     pick one churn model",
                ));
            }
        }
        if let Some(m) = &self.membership {
            m.validate()
                .map_err(|msg| ValidationError::new("membership", msg))?;
            if m.relays >= self.nodes {
                return Err(ValidationError::new(
                    "membership",
                    "need more nodes than relays",
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.consumer_role_weight) {
            return Err(ValidationError::new(
                "consumer_role_weight",
                "must be in [0,1]",
            ));
        }
        if !self.graph_degree.is_multiple_of(2)
            || self.graph_degree == 0
            || self.graph_degree >= self.nodes
        {
            return Err(ValidationError::new(
                "graph_degree",
                "must be even, positive and < nodes",
            ));
        }
        if !(0.0..=1.0).contains(&self.graph_beta) {
            return Err(ValidationError::new("graph_beta", "must be in [0,1]"));
        }
        self.population
            .validate()
            .map_err(|m| ValidationError::new("population", m))?;
        if let Some(a) = &self.anonymization {
            a.validate()
                .map_err(|m| ValidationError::new("anonymization", m))?;
        }
        Ok(())
    }

    /// A small, fast configuration for tests and doc examples.
    pub fn small() -> Self {
        ScenarioConfig {
            nodes: 40,
            rounds: 10,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ScenarioConfig::default().validate().is_ok());
        assert!(ScenarioConfig::small().validate().is_ok());
    }

    #[test]
    fn disclosure_policy_follows_level() {
        let c = ScenarioConfig {
            disclosure_level: 0,
            ..Default::default()
        };
        assert_eq!(c.disclosure_policy(), DisclosurePolicy::minimal());
        let c = ScenarioConfig {
            disclosure_level: 4,
            ..Default::default()
        };
        assert_eq!(c.disclosure_policy(), DisclosurePolicy::full());
    }

    #[test]
    fn validation_catches_each_field() {
        let cases = [
            ScenarioConfig {
                nodes: 3,
                ..Default::default()
            },
            ScenarioConfig {
                disclosure_level: 5,
                ..Default::default()
            },
            ScenarioConfig {
                privacy_concern_mean: 2.0,
                ..Default::default()
            },
            ScenarioConfig {
                leak_probability: -0.5,
                ..Default::default()
            },
            ScenarioConfig {
                graph_degree: 101,
                ..Default::default()
            },
            ScenarioConfig {
                rounds: 0,
                ..Default::default()
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            assert!(c.validate().is_err(), "case {i} must be rejected");
        }
    }

    #[test]
    fn policy_profiles() {
        assert_eq!(PolicyProfile::Permissive.strict_fraction(), 0.0);
        assert_eq!(PolicyProfile::Mixed.strict_fraction(), 0.5);
        assert_eq!(PolicyProfile::Strict.strict_fraction(), 1.0);
        assert_eq!(PolicyProfile::ALL.len(), 3);
        assert_eq!(PolicyProfile::Mixed.label(), "mixed");
    }
}
