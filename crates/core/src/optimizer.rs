//! Searching the settings space — the paper's "main aim".
//!
//! Section 4: "the main aim of our study is to find a method to obtain
//! the right settings in order to maximize the user' trust towards the
//! system", and Figure 2 (left) frames the target as **Area A**, the
//! intersection where all three facets clear their guarantees.
//!
//! [`Optimizer::sweep`] evaluates a grid over the settable dimensions
//! (mechanism × disclosure level × policy profile × selection), then
//! [`Optimizer::area_report`] classifies every evaluated point into the
//! seven Venn regions of Figure 2 (left), and [`Optimizer::best`] returns
//! the trust-maximizing configuration (optionally under facet-threshold
//! constraints).

use crate::config::{PolicyProfile, ScenarioConfig};
use crate::facets::FacetScores;
use crate::runner::{ScenarioBuilder, SweepGrid, SweepRunner, ValidationError};
use crate::scenario::run_scenario;
use crate::trust::TrustMetric;
use tsn_reputation::{MechanismKind, SelectionPolicy};

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct ConfigPoint {
    /// Mechanism used.
    pub mechanism: MechanismKind,
    /// Disclosure ladder level.
    pub disclosure_level: usize,
    /// Policy profile.
    pub policy_profile: PolicyProfile,
    /// Selection policy label.
    pub selection: String,
    /// Measured facets.
    pub facets: FacetScores,
    /// Trust under the sweep's metric.
    pub trust: f64,
}

/// The sweep output.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Every evaluated point.
    pub points: Vec<ConfigPoint>,
}

/// Figure 2 (left): how many points satisfy each facet region and their
/// intersections.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Thresholds defining the regions.
    pub thresholds: FacetScores,
    /// Points meeting the privacy guarantee.
    pub privacy_region: usize,
    /// Points meeting the reputation guarantee.
    pub reputation_region: usize,
    /// Points meeting the satisfaction guarantee.
    pub satisfaction_region: usize,
    /// Points meeting privacy ∧ reputation.
    pub privacy_and_reputation: usize,
    /// Points meeting privacy ∧ satisfaction.
    pub privacy_and_satisfaction: usize,
    /// Points meeting reputation ∧ satisfaction.
    pub reputation_and_satisfaction: usize,
    /// **Area A**: points meeting all three guarantees.
    pub area_a: usize,
    /// Total points evaluated.
    pub total: usize,
}

/// The optimizer: owns a base configuration and a trust metric.
#[derive(Debug, Clone)]
pub struct Optimizer {
    base: ScenarioConfig,
    metric: TrustMetric,
    /// Seeds averaged per point (Monte-Carlo smoothing).
    pub seeds_per_point: u64,
}

/// The optimizer's answer.
#[derive(Debug, Clone)]
pub struct OptimizerResult {
    /// The winning point.
    pub best: ConfigPoint,
    /// Whether the winner also clears the given thresholds (lies in
    /// Area A).
    pub in_area_a: bool,
}

impl Optimizer {
    /// Creates an optimizer sweeping around `base` with `metric`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] when the base configuration is
    /// invalid.
    pub fn new(base: ScenarioConfig, metric: TrustMetric) -> Result<Self, ValidationError> {
        base.validate()?;
        Ok(Optimizer {
            base,
            metric,
            seeds_per_point: 2,
        })
    }

    /// The seeds each grid point is averaged over. A `seeds_per_point`
    /// of 0 is treated as 1 — the field is public and averaging over
    /// zero runs is never meaningful.
    fn point_seeds(&self) -> Vec<u64> {
        (0..self.seeds_per_point.max(1))
            .map(|i| self.base.seed.wrapping_add(i * 7919))
            .collect()
    }

    /// The grid: mechanisms × disclosure levels × policy profiles,
    /// executed in parallel by a [`SweepRunner`]. Selection is fixed to
    /// the base's policy (it is a response-block choice, not a
    /// privacy/reputation dial; the A-ablations sweep it separately).
    pub fn sweep(&self) -> SweepOutcome {
        let seeds = self.point_seeds();
        let grid = SweepGrid::over(ScenarioBuilder::from_config(self.base.clone()))
            .all_mechanisms()
            .all_disclosures()
            .all_profiles()
            .seeds(seeds.iter().copied());
        let report = SweepRunner::parallel()
            .run(&grid)
            // tsn-lint: allow(no-unwrap, "the base config was validated in Optimizer::new; deriving a builder from it cannot fail")
            .expect("base validated in Optimizer::new");
        // Seeds are the innermost grid dimension: consecutive chunks of
        // `seeds.len()` cells are the Monte-Carlo repetitions of one
        // point, in the original (mechanism, disclosure, profile) order.
        let points = report
            .cells
            .chunks(seeds.len())
            .map(|chunk| {
                let k = chunk.len() as f64;
                let facets = FacetScores {
                    privacy: chunk.iter().map(|c| c.facets.privacy).sum::<f64>() / k,
                    reputation: chunk.iter().map(|c| c.facets.reputation).sum::<f64>() / k,
                    satisfaction: chunk.iter().map(|c| c.facets.satisfaction).sum::<f64>() / k,
                };
                let first = &chunk[0].cell;
                ConfigPoint {
                    mechanism: first.mechanism,
                    disclosure_level: first.disclosure.index(),
                    policy_profile: first.profile,
                    selection: self.base.selection.label().to_owned(),
                    facets,
                    trust: self.metric.trust(&facets),
                }
            })
            .collect();
        SweepOutcome { points }
    }

    /// Evaluates one grid point, averaging facets over
    /// [`Optimizer::seeds_per_point`] seeds.
    pub fn evaluate(
        &self,
        mechanism: MechanismKind,
        disclosure_level: usize,
        policy_profile: PolicyProfile,
        selection: SelectionPolicy,
    ) -> ConfigPoint {
        let mut acc = (0.0, 0.0, 0.0);
        let seeds = self.point_seeds();
        for (mut config, seed) in std::iter::repeat_with(|| self.base.clone()).zip(&seeds) {
            config.mechanism = mechanism;
            config.disclosure_level = disclosure_level;
            config.policy_profile = policy_profile;
            config.selection = selection;
            config.seed = *seed;
            // tsn-lint: allow(no-unwrap, "sweep cells derive from the base validated in Optimizer::new; run_scenario cannot reject them")
            let outcome = run_scenario(config).expect("sweep configs derive from a valid base");
            acc.0 += outcome.facets.privacy;
            acc.1 += outcome.facets.reputation;
            acc.2 += outcome.facets.satisfaction;
        }
        let k = seeds.len() as f64;
        let facets = FacetScores {
            privacy: acc.0 / k,
            reputation: acc.1 / k,
            satisfaction: acc.2 / k,
        };
        ConfigPoint {
            mechanism,
            disclosure_level,
            policy_profile,
            selection: selection.label().to_owned(),
            facets,
            trust: self.metric.trust(&facets),
        }
    }

    /// Classifies sweep points into the Figure-2 (left) regions.
    pub fn area_report(&self, sweep: &SweepOutcome, thresholds: FacetScores) -> AreaReport {
        let meets = |f: &FacetScores, p: bool, r: bool, s: bool| {
            (!p || f.privacy >= thresholds.privacy)
                && (!r || f.reputation >= thresholds.reputation)
                && (!s || f.satisfaction >= thresholds.satisfaction)
        };
        let count = |p: bool, r: bool, s: bool| {
            sweep
                .points
                .iter()
                .filter(|pt| meets(&pt.facets, p, r, s))
                .count()
        };
        AreaReport {
            thresholds,
            privacy_region: count(true, false, false),
            reputation_region: count(false, true, false),
            satisfaction_region: count(false, false, true),
            privacy_and_reputation: count(true, true, false),
            privacy_and_satisfaction: count(true, false, true),
            reputation_and_satisfaction: count(false, true, true),
            area_a: count(true, true, true),
            total: sweep.points.len(),
        }
    }

    /// The trust-maximizing point of a sweep; with `thresholds`, only
    /// points clearing them qualify (falling back to the unconstrained
    /// best when Area A is empty, flagged by `in_area_a = false`).
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty.
    pub fn best(&self, sweep: &SweepOutcome, thresholds: Option<FacetScores>) -> OptimizerResult {
        assert!(!sweep.points.is_empty(), "sweep must not be empty");
        let by_trust = |a: &&ConfigPoint, b: &&ConfigPoint| a.trust.total_cmp(&b.trust);
        if let Some(t) = thresholds {
            if let Some(best) = sweep
                .points
                .iter()
                .filter(|p| p.facets.meets(&t))
                .max_by(by_trust)
            {
                return OptimizerResult {
                    best: best.clone(),
                    in_area_a: true,
                };
            }
        }
        // tsn-lint: allow(no-unwrap, "non-emptiness is asserted at function entry (documented panic)")
        let best = sweep.points.iter().max_by(by_trust).expect("non-empty");
        OptimizerResult {
            best: best.clone(),
            in_area_a: false,
        }
    }

    /// Greedy hill-climb from a starting point over the two ordinal dials
    /// (disclosure level, policy profile), keeping mechanism fixed.
    /// Returns the local optimum. Used to refine the sweep winner.
    pub fn hill_climb(&self, start: &ConfigPoint) -> ConfigPoint {
        let profiles = PolicyProfile::ALL;
        let profile_idx = |p: PolicyProfile| {
            profiles
                .iter()
                .position(|&q| q == p)
                // tsn-lint: allow(no-unwrap, "p is drawn from PolicyProfile::ALL, the slice being searched")
                .expect("known profile")
        };
        let mut current = start.clone();
        loop {
            let mut improved = false;
            let mut candidates = Vec::new();
            if current.disclosure_level > 0 {
                candidates.push((current.disclosure_level - 1, current.policy_profile));
            }
            if current.disclosure_level < 4 {
                candidates.push((current.disclosure_level + 1, current.policy_profile));
            }
            let pi = profile_idx(current.policy_profile);
            if pi > 0 {
                candidates.push((current.disclosure_level, profiles[pi - 1]));
            }
            if pi + 1 < profiles.len() {
                candidates.push((current.disclosure_level, profiles[pi + 1]));
            }
            for (level, profile) in candidates {
                let cand = self.evaluate(current.mechanism, level, profile, self.base.selection);
                if cand.trust > current.trust + 1e-9 {
                    current = cand;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> ScenarioConfig {
        ScenarioConfig {
            nodes: 24,
            rounds: 6,
            graph_degree: 4,
            ..ScenarioConfig::default()
        }
    }

    fn optimizer() -> Optimizer {
        let mut o = Optimizer::new(tiny_base(), TrustMetric::default()).unwrap();
        o.seeds_per_point = 1;
        o
    }

    #[test]
    fn evaluate_produces_bounded_point() {
        let o = optimizer();
        let p = o.evaluate(
            MechanismKind::Beta,
            2,
            PolicyProfile::Mixed,
            SelectionPolicy::Best,
        );
        assert!(p.facets.validate().is_ok());
        assert!((0.0..=1.0).contains(&p.trust));
        assert_eq!(p.disclosure_level, 2);
        assert_eq!(p.selection, "best");
    }

    #[test]
    fn sweep_covers_the_grid() {
        let o = optimizer();
        let sweep = o.sweep();
        assert_eq!(sweep.points.len(), 5 * 5 * 3);
    }

    #[test]
    fn area_report_counts_nest() {
        let o = optimizer();
        let sweep = o.sweep();
        let report = o.area_report(&sweep, FacetScores::new(0.4, 0.4, 0.3).unwrap());
        // Intersections can never exceed their constituent regions.
        assert!(report.area_a <= report.privacy_and_reputation);
        assert!(report.area_a <= report.privacy_and_satisfaction);
        assert!(report.area_a <= report.reputation_and_satisfaction);
        assert!(report.privacy_and_reputation <= report.privacy_region);
        assert!(report.privacy_and_reputation <= report.reputation_region);
        assert_eq!(report.total, 75);
    }

    #[test]
    fn best_respects_thresholds_when_satisfiable() {
        let o = optimizer();
        let sweep = o.sweep();
        let loose = FacetScores::new(0.1, 0.1, 0.1).unwrap();
        let result = o.best(&sweep, Some(loose));
        assert!(result.in_area_a);
        assert!(result.best.facets.meets(&loose));
        // Unconstrained best has at least as much trust.
        let unconstrained = o.best(&sweep, None);
        assert!(unconstrained.best.trust >= result.best.trust - 1e-12);
    }

    #[test]
    fn impossible_thresholds_fall_back() {
        let o = optimizer();
        let sweep = o.sweep();
        let impossible = FacetScores::new(1.0, 1.0, 1.0).unwrap();
        let result = o.best(&sweep, Some(impossible));
        assert!(!result.in_area_a);
    }

    #[test]
    fn hill_climb_never_decreases_trust() {
        let o = optimizer();
        let start = o.evaluate(
            MechanismKind::EigenTrust,
            4,
            PolicyProfile::Strict,
            SelectionPolicy::Best,
        );
        let refined = o.hill_climb(&start);
        assert!(refined.trust >= start.trust);
    }

    #[test]
    fn zero_seeds_per_point_is_clamped_not_panicking() {
        let mut o = optimizer();
        o.seeds_per_point = 0;
        let sweep = o.sweep();
        assert_eq!(sweep.points.len(), 5 * 5 * 3);
    }

    #[test]
    fn invalid_base_rejected() {
        let mut bad = tiny_base();
        bad.nodes = 2;
        assert!(Optimizer::new(bad, TrustMetric::default()).is_err());
    }
}
