//! The generic trust metric — the paper's Section-4 objective.
//!
//! "Our main objective is to define a generic metric that takes into
//! account all these dimensions and helps the designer to maximize the
//! users' trust towards the system while respecting the
//! system/application constrains."
//!
//! [`TrustMetric`] is that metric: facet weights plus an [`Aggregator`].
//! The default aggregator is the **weighted geometric mean**, which
//! encodes the paper's core claim that the facets are complementary — a
//! zero on any facet zeroes trust, no matter how strong the others are.
//! Arithmetic, minimum and general power-mean aggregation are provided
//! for the A3 ablation.

use crate::facets::{FacetScores, FacetWeights};

/// How facet scores combine into one trust value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Aggregator {
    /// Weighted arithmetic mean — facets are substitutes.
    Arithmetic,
    /// Weighted geometric mean — facets are complements (default).
    #[default]
    Geometric,
    /// The minimum facet — strictest complementarity (Rawlsian).
    Minimum,
    /// Weighted power mean with exponent `p` (`p → 0` recovers geometric,
    /// `p = 1` arithmetic, `p → −∞` minimum).
    PowerMean(
        /// The exponent; must be non-zero and finite.
        f64,
    ),
}

impl Aggregator {
    /// Label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            Aggregator::Arithmetic => "arithmetic".into(),
            Aggregator::Geometric => "geometric".into(),
            Aggregator::Minimum => "minimum".into(),
            Aggregator::PowerMean(p) => format!("power({p})"),
        }
    }
}

/// The trust metric: weights + aggregator.
///
/// ```
/// use tsn_core::{FacetScores, TrustMetric};
///
/// let metric = TrustMetric::default(); // weighted geometric mean
/// let healthy = FacetScores::new(0.8, 0.8, 0.8)?;
/// let collapsed = FacetScores::new(0.0, 1.0, 1.0)?;
/// assert!(metric.trust(&healthy) > 0.79);
/// assert_eq!(metric.trust(&collapsed), 0.0); // facets are complements
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustMetric {
    /// Facet weights.
    pub weights: FacetWeights,
    /// Aggregation rule.
    pub aggregator: Aggregator,
}

impl Default for TrustMetric {
    fn default() -> Self {
        TrustMetric {
            weights: FacetWeights::default(),
            aggregator: Aggregator::Geometric,
        }
    }
}

impl TrustMetric {
    /// Creates a metric with validation.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid weights or a zero/non-finite power
    /// exponent.
    pub fn new(weights: FacetWeights, aggregator: Aggregator) -> Result<Self, String> {
        weights.validate()?;
        if let Aggregator::PowerMean(p) = aggregator {
            if p == 0.0 || !p.is_finite() {
                return Err("power-mean exponent must be non-zero and finite".into());
            }
        }
        Ok(TrustMetric {
            weights,
            aggregator,
        })
    }

    /// Trust toward the system given facet scores, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `facets` or the metric's weights are invalid (construct
    /// via [`TrustMetric::new`] and [`FacetScores::new`] to avoid this).
    pub fn trust(&self, facets: &FacetScores) -> f64 {
        if let Err(e) = facets.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on facets that validate() rejects; fallible callers validate first")
            panic!("invalid facets: {e}");
        }
        let w = self.weights.normalized();
        let pairs = [
            (w.privacy, facets.privacy),
            (w.reputation, facets.reputation),
            (w.satisfaction, facets.satisfaction),
        ];
        match self.aggregator {
            Aggregator::Arithmetic => pairs.iter().map(|(w, x)| w * x).sum(),
            Aggregator::Geometric => {
                // Π x^w, with 0^0 = 1 so zero-weight facets are ignored.
                pairs
                    .iter()
                    .map(|&(w, x)| if w == 0.0 { 1.0 } else { x.powf(w) })
                    .product()
            }
            Aggregator::Minimum => pairs
                .iter()
                .filter(|&&(w, _)| w > 0.0)
                .map(|&(_, x)| x)
                .fold(1.0, f64::min),
            Aggregator::PowerMean(p) => {
                // (Σ w x^p)^(1/p); zero facets with p<0 force trust to 0.
                if p < 0.0 && pairs.iter().any(|&(w, x)| w > 0.0 && x == 0.0) {
                    return 0.0;
                }
                let s: f64 = pairs
                    .iter()
                    .map(|&(w, x)| if w == 0.0 { 0.0 } else { w * x.powf(p) })
                    .sum();
                s.powf(1.0 / p)
            }
        }
    }
}

/// Per-user and global trust, as produced by a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustReport {
    /// Facets measured globally.
    pub facets: FacetScores,
    /// Global trust toward the system.
    pub global_trust: f64,
    /// Per-user trust (indexed by node), combining each user's own
    /// privacy/satisfaction experience with the shared reputation facet.
    pub per_user_trust: Vec<f64>,
}

impl TrustReport {
    /// Mean of per-user trust (may differ from `global_trust`, which
    /// aggregates global facets — the paper distinguishes each user's
    /// "own perception" from the system being "considered globally as
    /// trusted or not").
    pub fn mean_user_trust(&self) -> f64 {
        if self.per_user_trust.is_empty() {
            return self.global_trust;
        }
        self.per_user_trust.iter().sum::<f64>() / self.per_user_trust.len() as f64
    }

    /// Fraction of users whose trust clears `threshold`.
    pub fn trusting_fraction(&self, threshold: f64) -> f64 {
        if self.per_user_trust.is_empty() {
            return 0.0;
        }
        self.per_user_trust
            .iter()
            .filter(|&&t| t >= threshold)
            .count() as f64
            / self.per_user_trust.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(p: f64, r: f64, s: f64) -> FacetScores {
        FacetScores::new(p, r, s).unwrap()
    }

    #[test]
    fn arithmetic_is_weighted_mean() {
        let m = TrustMetric::new(FacetWeights::default(), Aggregator::Arithmetic).unwrap();
        assert!((m.trust(&f(0.9, 0.6, 0.3)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn geometric_punishes_zero_facets() {
        let m = TrustMetric::default();
        assert_eq!(m.trust(&f(0.0, 1.0, 1.0)), 0.0);
        let arith = TrustMetric::new(FacetWeights::default(), Aggregator::Arithmetic).unwrap();
        assert!(
            arith.trust(&f(0.0, 1.0, 1.0)) > 0.6,
            "arithmetic tolerates a zero"
        );
    }

    #[test]
    fn geometric_mean_of_equal_facets_is_the_facet() {
        let m = TrustMetric::default();
        assert!((m.trust(&f(0.7, 0.7, 0.7)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn minimum_is_the_weakest_facet() {
        let m = TrustMetric::new(FacetWeights::default(), Aggregator::Minimum).unwrap();
        assert_eq!(m.trust(&f(0.9, 0.2, 0.7)), 0.2);
    }

    #[test]
    fn minimum_ignores_zero_weight_facets() {
        let w = FacetWeights {
            privacy: 0.0,
            reputation: 1.0,
            satisfaction: 1.0,
        };
        let m = TrustMetric::new(w, Aggregator::Minimum).unwrap();
        assert_eq!(m.trust(&f(0.0, 0.8, 0.6)), 0.6);
    }

    #[test]
    fn power_mean_interpolates() {
        let facets = f(0.9, 0.5, 0.3);
        let arith = TrustMetric::new(FacetWeights::default(), Aggregator::Arithmetic).unwrap();
        let geo = TrustMetric::default();
        let p_half = TrustMetric::new(FacetWeights::default(), Aggregator::PowerMean(0.5)).unwrap();
        let t_arith = arith.trust(&facets);
        let t_geo = geo.trust(&facets);
        let t_half = p_half.trust(&facets);
        assert!(
            t_geo < t_half && t_half < t_arith,
            "{t_geo} < {t_half} < {t_arith}"
        );
    }

    #[test]
    fn negative_power_mean_handles_zero() {
        let m = TrustMetric::new(FacetWeights::default(), Aggregator::PowerMean(-2.0)).unwrap();
        assert_eq!(m.trust(&f(0.0, 0.9, 0.9)), 0.0);
        assert!(m.trust(&f(0.5, 0.9, 0.9)) > 0.0);
    }

    #[test]
    fn ordering_respected_by_all_aggregators() {
        // Strictly better facets must never yield lower trust.
        let low = f(0.3, 0.4, 0.5);
        let high = f(0.6, 0.7, 0.8);
        for agg in [
            Aggregator::Arithmetic,
            Aggregator::Geometric,
            Aggregator::Minimum,
            Aggregator::PowerMean(2.0),
            Aggregator::PowerMean(-1.0),
        ] {
            let m = TrustMetric::new(FacetWeights::default(), agg).unwrap();
            assert!(m.trust(&high) > m.trust(&low), "{}", agg.label());
        }
    }

    #[test]
    fn weights_shift_the_outcome() {
        let privacy_heavy = TrustMetric::new(
            FacetWeights {
                privacy: 10.0,
                reputation: 1.0,
                satisfaction: 1.0,
            },
            Aggregator::Arithmetic,
        )
        .unwrap();
        let balanced = TrustMetric::new(FacetWeights::default(), Aggregator::Arithmetic).unwrap();
        let facets = f(0.9, 0.2, 0.2);
        assert!(privacy_heavy.trust(&facets) > balanced.trust(&facets));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TrustMetric::new(FacetWeights::default(), Aggregator::PowerMean(0.0)).is_err());
        assert!(TrustMetric::new(
            FacetWeights {
                privacy: -1.0,
                reputation: 1.0,
                satisfaction: 1.0
            },
            Aggregator::Geometric
        )
        .is_err());
    }

    #[test]
    fn trust_report_aggregates() {
        let report = TrustReport {
            facets: f(0.8, 0.8, 0.8),
            global_trust: 0.8,
            per_user_trust: vec![0.9, 0.7, 0.5, 0.1],
        };
        assert!((report.mean_user_trust() - 0.55).abs() < 1e-12);
        assert_eq!(report.trusting_fraction(0.6), 0.5);
        assert_eq!(report.trusting_fraction(0.0), 1.0);
    }

    #[test]
    fn aggregator_labels() {
        assert_eq!(Aggregator::Geometric.label(), "geometric");
        assert_eq!(Aggregator::PowerMean(2.0).label(), "power(2)");
    }
}
