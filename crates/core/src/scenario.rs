//! The end-to-end decentralized social-network scenario.
//!
//! This is the system the paper argues for, assembled from every
//! substrate: users on a small-world social graph publish and request
//! content under *privacy policies*, a *reputation mechanism* scores
//! providers from (policy-filtered) feedback, and every participant's
//! *satisfaction* is tracked long-run. The scenario measures the three
//! facets and the resulting trust — and, when `adaptive_disclosure` is
//! on, closes the Section-3 loop "the less a user trusts towards the
//! system, the less she discloses information".
//!
//! Privacy-relevant flows modelled per interaction:
//!
//! 1. **Content access** — the consumer requests the provider's content;
//!    the PriServ-style [`Enforcer`] checks the provider's policy
//!    (friends-only, minimal trust level…). Grants are logged in the
//!    [`DisclosureLedger`]; a malicious *consumer* then leaks the granted
//!    data with `leak_probability` (breach cause: `MaliciousUser`).
//! 2. **Feedback reporting** — the system *requires* the configured
//!    disclosure level for a report to be accepted; users whose
//!    willingness has eroded below it opt out of feedback entirely,
//!    while anonymous levels leave lying raters free to ballot-stuff.
//! 3. **Behaviour metadata** — the system observes every request at its
//!    collection level; collection beyond what a user's own policy
//!    tolerates is a *system-caused* breach (cause: `System`), kept
//!    apart from user-caused leaks — the paper's footnote-2 distinction.

use crate::config::ScenarioConfig;
use crate::facets::FacetScores;
use crate::runner::{Observer, ValidationError};
use crate::trust::TrustMetric;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tsn_graph::{generators, Graph, InterestProfile, InterestSpace};
use tsn_privacy::enforcement::RequestContext;
use tsn_privacy::oecd::OecdAudit;
use tsn_privacy::policy::DataCategory;
use tsn_privacy::{
    AccessDecision, AccessRequest, BreachCause, DisclosureLedger, Enforcer, Operation,
    PrivacyFacetInputs, PrivacyPolicy, Purpose, SystemPrivacyProfile,
};
use tsn_reputation::{
    accuracy, Anonymized, DisclosurePolicy, FeedbackReport, MechanismKind, Population, PowerReport,
    ReportView, ReputationMechanism, SelectionScratch,
};
use tsn_satisfaction::{
    AdequacyModel, AllocationTracker, ConsumerIntentions, GlobalSatisfaction, InteractionAspects,
    ProviderIntentions, SatisfactionTracker,
};
use tsn_simnet::{
    DynamicsEvent, DynamicsRuntime, GroupMap, MembershipRuntime, NodeId, PartialView, SimDuration,
    SimRng, SimTime, StreamDomain, MEMBERSHIP_SEED_SALT,
};

/// Virtual time one scenario round spans (the interaction loop models
/// hourly activity waves).
pub const ROUND_DURATION: SimDuration = SimDuration::from_secs(3600);

/// Node count at or above which `shards = 0` (auto) picks the sharded
/// round engine. The engine choice depends only on this threshold —
/// never on the machine — so auto-sharded runs are deterministic across
/// hardware; only wall-clock time varies with the core count.
pub const SHARD_AUTO_NODES: usize = 10_000;

/// Stream-domain tag of the per-round offline coin flips, keeping them
/// disjoint from the `(round << 32) | node` interaction streams.
/// Registered as [`StreamDomain::ScenarioOffline`].
const OFFLINE_STREAM_DOMAIN: u64 = StreamDomain::ScenarioOffline.tag();

/// The RNG stream a consumer's interactions draw from in the sharded
/// engine: one independent stream per `(round, node)`, derived
/// statelessly from the config seed ([`StreamDomain::Interaction`]).
/// This is what makes the draw sequence — and therefore the whole
/// outcome — independent of the shard count and of shard execution
/// order.
fn interaction_stream(seed: u64, round: usize, node: usize) -> SimRng {
    StreamDomain::Interaction.stream(seed, ((round as u64) << 32) | node as u64)
}

/// Per-round measurements (the time series behind Figure 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSample {
    /// Round index.
    pub round: usize,
    /// Mean long-run satisfaction across users.
    pub mean_satisfaction: f64,
    /// Mean per-user trust estimate.
    pub mean_trust: f64,
    /// Ledger respect rate so far.
    pub respect_rate: f64,
    /// Mechanism consistency with ground truth (Spearman mapped to
    /// `[0, 1]`).
    pub consistency: f64,
    /// Mean effective disclosure exposure users are willing to provide.
    pub mean_willingness: f64,
    /// Interaction success rate this round.
    pub success_rate: f64,
    /// Feedback reports filed this round.
    pub reports_filed: u64,
    /// Fraction of users online this round (1.0 without churn).
    pub availability: f64,
    /// Partition health this round: the probability a random user pair
    /// shares a group — 1.0 outside any partition window.
    pub partition_health: f64,
    /// Consumers skipped this round because no eligible partner
    /// existed (dead/partitioned graph neighborhood, or — with the
    /// membership overlay — an empty/dead partial view). Always 0 in
    /// a healthy static run.
    pub isolated: u64,
}

/// Everything a scenario run produces.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The measured global facets.
    pub facets: FacetScores,
    /// Global trust toward the system (default metric).
    pub global_trust: f64,
    /// Per-user trust toward the system.
    pub per_user_trust: Vec<f64>,
    /// Per-user long-run satisfaction.
    pub per_user_satisfaction: Vec<f64>,
    /// Per-user policy-respect rate over their own data.
    pub per_user_respect: Vec<f64>,
    /// Mechanism power detail.
    pub power: PowerReport,
    /// Satisfaction aggregate detail.
    pub satisfaction: GlobalSatisfaction,
    /// Policy-respect rate measured by the ledger.
    pub respect_rate: f64,
    /// Breaches caused by malicious users.
    pub user_breaches: usize,
    /// Breaches caused by the system (over-sharing).
    pub system_breaches: usize,
    /// OECD audit overall score.
    pub oecd_score: f64,
    /// Mean effective disclosure exposure at the end of the run.
    pub mean_willingness: f64,
    /// Fraction of content requests denied by privacy enforcement.
    pub denial_rate: f64,
    /// Total interactions attempted.
    pub interactions: u64,
    /// Total protocol messages.
    pub messages: u64,
    /// Whitewash re-joins that occurred during the run (0 unless a
    /// dynamics plan with whitewashing was configured).
    pub whitewashes: u64,
    /// Per-round time series.
    pub samples: Vec<RoundSample>,
}

impl RoundSample {
    /// The recognized series names, in the order of the struct fields.
    pub const SERIES_NAMES: [&'static str; 10] = [
        "satisfaction",
        "trust",
        "respect",
        "consistency",
        "willingness",
        "success",
        "reports",
        "availability",
        "partition_health",
        "isolated",
    ];

    /// Extracts one named measurement, or `None` for an unknown name.
    pub fn field(&self, name: &str) -> Option<f64> {
        match name {
            "satisfaction" => Some(self.mean_satisfaction),
            "trust" => Some(self.mean_trust),
            "respect" => Some(self.respect_rate),
            "consistency" => Some(self.consistency),
            "willingness" => Some(self.mean_willingness),
            "success" => Some(self.success_rate),
            "reports" => Some(self.reports_filed as f64),
            "availability" => Some(self.availability),
            "partition_health" => Some(self.partition_health),
            "isolated" => Some(self.isolated as f64),
            _ => None,
        }
    }
}

impl ScenarioOutcome {
    /// Extracts a named series from the samples (for correlation
    /// analysis). Recognized names are [`RoundSample::SERIES_NAMES`];
    /// an unknown name returns `None` instead of panicking.
    pub fn series(&self, name: &str) -> Option<Vec<f64>> {
        if !RoundSample::SERIES_NAMES.contains(&name) {
            return None;
        }
        Some(
            self.samples
                .iter()
                // tsn-lint: allow(no-unwrap, "name membership in SERIES_NAMES is checked at function entry; every sample carries every series")
                .map(|s| s.field(name).expect("name checked against SERIES_NAMES"))
                .collect(),
        )
    }
}

struct UserState {
    intentions: ConsumerIntentions,
    provider_intentions: ProviderIntentions,
    satisfaction: SatisfactionTracker,
    provider_satisfaction: SatisfactionTracker,
    load_this_round: u32,
    allocation: AllocationTracker,
    /// Disclosure ladder level the user is willing to feed the
    /// reputation system.
    willingness_level: usize,
    /// Whether a privacy breach hit this user's data in the current round.
    breached_this_round: bool,
}

/// Reusable buffers for the round loop. Owned by the [`Scenario`] so the
/// steady-state hot path performs no per-round or per-interaction
/// allocation; every buffer is cleared (never assumed empty) before use,
/// so contents never leak between rounds or runs.
#[derive(Debug, Default)]
struct ScenarioScratch {
    /// Per-user offline flag for the current round.
    offline: Vec<bool>,
    /// Online neighbour candidates of the current consumer.
    candidates: Vec<NodeId>,
    /// Partner-selection scratch (weights / qualified sets).
    selection: SelectionScratch,
    /// Per-user trust of the current round.
    trust: Vec<f64>,
    /// Ground-truth qualities for the power measurement.
    truth: Vec<f64>,
    /// Adversarial flags for the power measurement.
    adversarial: Vec<bool>,
    /// Report views staged for `record_batch` while draining a shard
    /// outbox at the merge barrier.
    views: Vec<ReportView>,
}

/// Per-round counters a shard accumulates locally; summed at the merge
/// barrier (integer sums, so the total is independent of merge order —
/// though the order is fixed anyway).
#[derive(Debug, Default, Clone, Copy)]
struct ShardCounters {
    requests: u64,
    denials: u64,
    interactions: u64,
    messages: u64,
    round_ok: u64,
    round_tried: u64,
    round_reports: u64,
    round_isolated: u64,
}

/// A deferred disclosure-ledger entry. Shards cannot touch the shared
/// ledger mid-phase; they stage events in interaction order and the
/// merge barrier applies them shard-by-shard — which, with contiguous
/// shards, is exactly global consumer order for any shard count.
#[derive(Debug, Clone, Copy)]
enum LedgerEvent {
    Disclosure {
        owner: NodeId,
        recipient: NodeId,
        category: DataCategory,
        purpose: Purpose,
        anonymized: bool,
    },
    Breach {
        owner: NodeId,
        recipient: NodeId,
        category: DataCategory,
        purpose: Purpose,
        cause: BreachCause,
    },
}

/// Everything a shard defers to the merge barrier.
#[derive(Debug, Default)]
struct ShardOutbox {
    /// Feedback filed by this shard's consumers, in consumer order,
    /// with the ballot-stuffing copy count.
    reports: Vec<(FeedbackReport, u32)>,
    /// Ledger events in interaction order.
    ledger: Vec<LedgerEvent>,
    /// One provider per *granted* interaction: the merge credits one
    /// served interaction and one unit of round load each.
    touches: Vec<NodeId>,
    counters: ShardCounters,
}

impl ShardOutbox {
    fn clear(&mut self) {
        self.reports.clear();
        self.ledger.clear();
        self.touches.clear();
        self.counters = ShardCounters::default();
    }
}

/// One contiguous node shard: its range plus owned scratch and outbox,
/// persistent across rounds so the steady-state phase allocates nothing.
#[derive(Debug, Default)]
struct ShardState {
    /// First node (inclusive) this shard owns.
    start: usize,
    /// Past-the-end node of this shard's range.
    end: usize,
    /// Online neighbour candidates of the current consumer.
    candidates: Vec<NodeId>,
    /// Partner-selection scratch.
    selection: SelectionScratch,
    outbox: ShardOutbox,
}

/// One claimable unit of the interaction phase: a shard's contiguous
/// user slice plus its scratch/outbox. Workers take it (once) from a
/// `Mutex<Option<…>>` slot after winning the index off the cursor.
type ShardUnit<'a> = (&'a mut [UserState], &'a mut ShardState);

/// The read-only world a shard worker sees during the interaction
/// phase: a frozen round-start snapshot. All mutation goes through the
/// worker's own user slice and its outbox.
struct ShardCtx<'a> {
    config: &'a ScenarioConfig,
    graph: &'a Graph,
    population: &'a Population,
    mechanism: &'a dyn ReputationMechanism,
    enforcer: &'a Enforcer,
    adequacy: &'a AdequacyModel,
    offline: &'a [bool],
    policy_exposure_cap: &'a [f64],
    policies: &'a [PrivacyPolicy],
    /// Active partition group map, if a window is open this round
    /// (plain data extracted from the dynamics runtime, which itself is
    /// not `Sync` — it owns transport trait objects the phase never
    /// touches).
    partition: Option<&'a GroupMap>,
    /// Slot → current-identity map under whitewashing, `None` without a
    /// dynamics plan.
    identities: Option<&'a [NodeId]>,
    /// Slot-indexed partial views of the membership overlay — the
    /// round's frozen snapshot (shuffled in the serial control path
    /// before the phase starts), `None` when the overlay is off.
    views: Option<&'a [PartialView]>,
    system_policy: DisclosurePolicy,
    system_exposure: f64,
    round: usize,
    now: SimTime,
}

impl ShardCtx<'_> {
    fn identity(&self, slot: NodeId) -> NodeId {
        self.identities.map_or(slot, |ids| ids[slot.index()])
    }
}

/// Executes one shard's interaction/feedback phase against the frozen
/// round snapshot. `users` is the shard's own contiguous slice
/// (`state.start ..state.end`); everything cross-shard lands in the
/// outbox. Mirrors the serial loop except that (a) randomness comes
/// from per-`(round, node)` streams, (b) reputation scores, served
/// counters and ledger state are the round-start snapshot, and (c) a
/// consumer's `privacy_respected` reflects only its own flow this
/// round — cross-node leak flags are deferred (the synchronous-model
/// semantics DESIGN.md §10 documents).
fn run_shard(ctx: &ShardCtx<'_>, users: &mut [UserState], state: &mut ShardState) {
    let ShardState {
        start,
        candidates,
        selection,
        outbox,
        ..
    } = state;
    let start = *start;
    outbox.clear();
    for u in users.iter_mut() {
        u.breached_this_round = false;
        u.load_this_round = 0;
    }
    for (local, user) in users.iter_mut().enumerate() {
        let consumer_idx = start + local;
        if ctx.offline[consumer_idx] {
            continue;
        }
        let consumer = NodeId::from_index(consumer_idx);
        let mut rng = interaction_stream(ctx.config.seed, ctx.round, consumer_idx);
        for _ in 0..ctx.config.interactions_per_node {
            candidates.clear();
            let eligible = |p: &NodeId| {
                !ctx.offline[p.index()] && ctx.partition.is_none_or(|m| m.same_group(consumer, *p))
            };
            match ctx.views {
                // Peer sampling on: partners come from the consumer's
                // frozen partial view, mirroring the serial loop.
                Some(views) => {
                    candidates.extend(views[consumer_idx].peers().filter(|p| eligible(p)))
                }
                None => candidates.extend(
                    ctx.graph
                        .neighbors(consumer)
                        .iter()
                        .copied()
                        .filter(eligible),
                ),
            }
            let Some(provider) = ctx.config.selection.select_with(
                candidates,
                |c| ctx.mechanism.score(ctx.identity(c)),
                &mut rng,
                selection,
            ) else {
                // No eligible partner: the candidate set is fixed for
                // the round, so count the consumer isolated once and
                // skip its remaining attempts (exactly the serial
                // loop's behaviour — no randomness consumed).
                outbox.counters.round_isolated += 1;
                break;
            };
            outbox.counters.requests += 1;
            outbox.counters.messages += 1; // content request

            let request = AccessRequest {
                requester: consumer,
                owner: provider,
                operation: Operation::Read,
                purpose: Purpose::Social,
            };
            let request_ctx = RequestContext {
                social_distance: Some(1), // candidates are neighbours
                requester_trust: ctx.mechanism.score(ctx.identity(consumer)),
            };
            let decision =
                ctx.enforcer
                    .decide(&request, &ctx.policies[provider.index()], &request_ctx);

            let intended = user.intentions.intends(provider);
            user.allocation.observe(intended);

            let outcome_quality;
            if decision.is_granted() {
                let anonymized = decision == AccessDecision::GrantAnonymized;
                outbox.ledger.push(LedgerEvent::Disclosure {
                    owner: provider,
                    recipient: consumer,
                    category: DataCategory::Content,
                    purpose: Purpose::Social,
                    anonymized,
                });
                let outcome = ctx.population.interact_frozen(provider, &mut rng);
                outbox.touches.push(provider);
                outbox.counters.interactions += 1;
                outbox.counters.messages += 1; // content response
                outbox.counters.round_tried += 1;
                if outcome.is_success() {
                    outbox.counters.round_ok += 1;
                }
                outcome_quality = outcome.value();

                // Malicious consumers leak what they were granted.
                if ctx.population.is_adversarial(consumer)
                    && rng.gen_bool(ctx.config.leak_probability)
                {
                    outbox.ledger.push(LedgerEvent::Breach {
                        owner: provider,
                        recipient: consumer,
                        category: DataCategory::Content,
                        purpose: Purpose::Social,
                        cause: BreachCause::MaliciousUser,
                    });
                }

                // Feedback, against the frozen snapshot; the report is
                // staged and reaches the mechanism at the merge barrier.
                let willing = user.willingness_level;
                let adversarial_rater = ctx.population.is_adversarial(consumer);
                if adversarial_rater || willing >= ctx.config.disclosure_level {
                    let mut report = ctx
                        .population
                        .feedback(consumer, provider, outcome, ctx.now, None);
                    report.rater = ctx.identity(report.rater);
                    report.ratee = ctx.identity(report.ratee);
                    let copies = if !ctx.system_policy.rater_identity && adversarial_rater {
                        ctx.config
                            .ballot_stuffing_factor
                            .saturating_sub(ctx.config.disclosure_level)
                            .max(1)
                    } else {
                        1
                    };
                    outbox.reports.push((report, copies as u32));
                    outbox.counters.round_reports += copies as u64;
                    outbox.counters.messages +=
                        (ctx.mechanism.overhead_per_report() * copies) as u64;
                }
            } else {
                outbox.counters.denials += 1;
                outbox.counters.round_tried += 1;
                outcome_quality = 0.0; // the consumer got nothing
            }

            // Behaviour metadata (see the serial loop for the paper's
            // footnote-2 rationale).
            if ctx.system_exposure > ctx.policy_exposure_cap[consumer_idx] + 1e-9 {
                outbox.ledger.push(LedgerEvent::Breach {
                    owner: consumer,
                    recipient: provider,
                    category: DataCategory::Behavior,
                    purpose: Purpose::Reputation,
                    cause: BreachCause::System,
                });
                user.breached_this_round = true;
            } else {
                outbox.ledger.push(LedgerEvent::Disclosure {
                    owner: consumer,
                    recipient: provider,
                    category: DataCategory::Behavior,
                    purpose: Purpose::Reputation,
                    anonymized: ctx.config.disclosure_level <= 1,
                });
            }

            let aspects = InteractionAspects {
                provider,
                outcome_quality,
                privacy_respected: !user.breached_this_round,
            };
            let adequacy = ctx.adequacy.adequacy(&user.intentions, &aspects);
            user.satisfaction.observe(adequacy);
        }
    }
}

/// The assembled scenario, ready to run.
pub struct Scenario {
    config: ScenarioConfig,
    graph: Graph,
    population: Population,
    mechanism: Box<dyn ReputationMechanism>,
    users: Vec<UserState>,
    ledger: DisclosureLedger,
    enforcer: Enforcer,
    adequacy: AdequacyModel,
    metric: TrustMetric,
    rng: SimRng,
    /// Max exposure each user's own policy tolerates in the feedback
    /// pipeline.
    policy_exposure_cap: Vec<f64>,
    /// Exposure of each disclosure-ladder level, precomputed once (the
    /// round loop looks these up per user per round).
    ladder_exposure: [f64; DisclosurePolicy::LADDER_LEVELS],
    /// Round-loop scratch buffers.
    scratch: ScenarioScratch,
    /// Per-user privacy policies, read-only during rounds. Kept outside
    /// `UserState` so shard workers can read any *provider's* policy
    /// while holding their own contiguous `&mut` user slice.
    policies: Vec<PrivacyPolicy>,
    /// Shard ranges, scratch and outboxes of the sharded engine; empty
    /// until the first sharded round, persistent afterwards.
    shard_state: Vec<ShardState>,
    /// Dynamics executor (session churn, whitewashing, partitions),
    /// present iff `config.dynamics` is. Runs detached — the abstract
    /// scenario has no transport.
    net_dynamics: Option<DynamicsRuntime>,
    /// Peer-sampling overlay (bounded partial views + shuffling),
    /// present iff `config.membership` is. When on, partner candidates
    /// come from each consumer's local view instead of the global
    /// graph neighborhood.
    membership: Option<MembershipRuntime>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("nodes", &self.config.nodes)
            .field("mechanism", &self.config.mechanism)
            .field("disclosure_level", &self.config.disclosure_level)
            .finish()
    }
}

impl Scenario {
    /// Builds the scenario from a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] when the configuration is invalid.
    pub fn new(config: ScenarioConfig) -> Result<Self, ValidationError> {
        config.validate()?;
        let mut rng = SimRng::seed_from_u64(config.seed);
        let mut graph_rng = rng.fork(1);
        let graph = generators::watts_strogatz(
            config.nodes,
            config.graph_degree,
            config.graph_beta,
            &mut graph_rng,
        )
        .map_err(|e| ValidationError::new("graph_degree", e.to_string()))?;
        let mut pop_rng = rng.fork(2);
        // Default the traitor betrayal deadline to the switch-after
        // horizon in round time: a traitor then turns after
        // `switch_after` rounds even if no consumer ever selects it (the
        // stuck-traitor fix). An explicit deadline in the config wins.
        let mut pop_config = config.population.clone();
        if pop_config.traitor > 0.0 && pop_config.traitor_switch_deadline.is_none() {
            pop_config.traitor_switch_deadline = Some(
                SimTime::ZERO + ROUND_DURATION.mul_f64(pop_config.traitor_switch_after as f64),
            );
        }
        let population = Population::new(config.nodes, pop_config, &mut pop_rng);

        let base: Box<dyn ReputationMechanism> =
            if config.mechanism == MechanismKind::EigenTrust && config.pretrusted > 0 {
                let pretrusted: Vec<NodeId> = (0..config.nodes)
                    .map(NodeId::from_index)
                    .filter(|&n| !population.is_adversarial(n))
                    .take(config.pretrusted)
                    .collect();
                Box::new(tsn_reputation::EigenTrust::new(
                    config.nodes,
                    tsn_reputation::EigenTrustConfig {
                        pretrusted,
                        ..Default::default()
                    },
                ))
            } else {
                tsn_reputation::mechanism::build_mechanism(config.mechanism, config.nodes)
            };
        let mechanism: Box<dyn ReputationMechanism> = match config.anonymization {
            Some(anon) => Box::new(Anonymized::new(base, anon, rng.fork(3))),
            None => base,
        };

        let mut user_rng = rng.fork(4);
        let space = InterestSpace::new(8);
        let profiles: Vec<InterestProfile> = (0..config.nodes)
            .map(|_| space.sample_profile(2.0, &mut user_rng))
            .collect();
        let strict_cut =
            (config.policy_profile.strict_fraction() * config.nodes as f64).round() as usize;
        let mut strict_flags: Vec<bool> = (0..config.nodes).map(|i| i < strict_cut).collect();
        user_rng.shuffle(&mut strict_flags);

        let mut users = Vec::with_capacity(config.nodes);
        let mut policies = Vec::with_capacity(config.nodes);
        let mut policy_exposure_cap = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let me = NodeId::from_index(i);
            let my_topic = profiles[i].dominant_topic();
            // Preferred providers: neighbours sharing the dominant topic
            // (falling back to all neighbours when none does).
            let mut preferred: Vec<NodeId> = graph
                .neighbors(me)
                .iter()
                .copied()
                .filter(|n| profiles[n.index()].dominant_topic() == my_topic)
                .collect();
            if preferred.is_empty() {
                preferred = graph.neighbors(me).to_vec();
            }
            let concern =
                (config.privacy_concern_mean + user_rng.gen_normal(0.0, 0.2)).clamp(0.0, 1.0);
            let intentions = ConsumerIntentions::new(preferred, 0.6, concern)
                // tsn-lint: allow(no-unwrap, "interest share and concern are clamped into range on the lines above")
                .expect("intention parameters are in range");
            let strict = strict_flags[i];
            policies.push(if strict {
                PrivacyPolicy::strict(DataCategory::Content)
            } else {
                PrivacyPolicy::permissive(DataCategory::Content)
            });
            // Strict users tolerate at most ladder level 2 (no topic, no
            // identity) of *behaviour-metadata collection*; permissive
            // users accept everything. Collection beyond the cap is a
            // system-caused breach.
            let cap_level = if strict { 2 } else { 4 };
            policy_exposure_cap.push(DisclosurePolicy::ladder(cap_level).exposure());
            // Provider capacity per round varies per user (ref [17]:
            // providers intend to treat a bounded load).
            let capacity = user_rng.gen_range(3..9u32);
            users.push(UserState {
                intentions,
                provider_intentions: ProviderIntentions::new([], capacity)
                    // tsn-lint: allow(no-unwrap, "capacity is drawn from gen_range(3..9), always positive")
                    .expect("capacity is positive"),
                satisfaction: SatisfactionTracker::default(),
                provider_satisfaction: SatisfactionTracker::default(),
                load_this_round: 0,
                allocation: AllocationTracker::default(),
                // Users initially comply with the system's required
                // feedback-disclosure level; distrust erodes this
                // willingness when `adaptive_disclosure` is on.
                willingness_level: config.disclosure_level,
                breached_this_round: false,
            });
        }

        let mut ladder_exposure = [0.0; DisclosurePolicy::LADDER_LEVELS];
        for (level, slot) in ladder_exposure.iter_mut().enumerate() {
            *slot = DisclosurePolicy::ladder(level).exposure();
        }

        // Seeded straight from the config seed rather than forked off
        // `rng`: forking would consume a draw from the main stream, so
        // merely *attaching* a plan (even a static or regions-only one)
        // would shift every later draw. This way dynamics-off runs AND
        // runs with a no-op plan stay bit-identical to the goldens.
        let net_dynamics = match &config.dynamics {
            Some(plan) => Some(
                DynamicsRuntime::new(
                    plan.clone(),
                    config.nodes,
                    SimRng::seed_from_u64(config.seed ^ 0x5D71_4A3C_9E2B_8F01),
                )
                .map_err(|m| ValidationError::new("dynamics", m))?,
            ),
            None => None,
        };

        // Same seeding idiom as dynamics: derived straight from the
        // config seed (never forked), so attaching the overlay leaves
        // the main stream — and every membership-off golden — intact.
        let membership = match &config.membership {
            Some(cfg) => Some(
                MembershipRuntime::new(config.nodes, *cfg, config.seed ^ MEMBERSHIP_SEED_SALT)
                    .map_err(|m| ValidationError::new("membership", m))?,
            ),
            None => None,
        };

        Ok(Scenario {
            ledger: DisclosureLedger::with_raw_record_cap(config.ledger_raw_record_cap),
            config,
            graph,
            population,
            mechanism,
            users,
            enforcer: Enforcer::new(),
            adequacy: AdequacyModel::default(),
            metric: TrustMetric::default(),
            rng,
            policy_exposure_cap,
            ladder_exposure,
            scratch: ScenarioScratch::default(),
            policies,
            shard_state: Vec::new(),
            net_dynamics,
            membership,
        })
    }

    /// The identity the reputation mechanism currently knows `slot` as
    /// (differs from the slot only after a whitewash re-join).
    fn slot_identity(&self, slot: NodeId) -> NodeId {
        self.net_dynamics
            .as_ref()
            .map_or(slot, |d| d.identity(slot))
    }

    /// The configuration of this scenario.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    fn oecd_profile(&self) -> SystemPrivacyProfile {
        SystemPrivacyProfile {
            collection_fraction: self.config.disclosure_policy().exposure(),
            purposes_declared: true,
            purpose_respect_rate: self.ledger.respect_rate(),
            data_quality_controls: true,
            safeguards_active: self.config.anonymization.is_some()
                || self.config.disclosure_level <= 1,
            policies_published: true,
            user_controls: true,
            breaches_attributed: true,
        }
    }

    fn mean_willingness(&self) -> f64 {
        self.users
            .iter()
            .map(|u| self.ladder_exposure[u.willingness_level])
            .sum::<f64>()
            / self.users.len() as f64
    }

    /// Computes per-user trust into `self.scratch.trust` (the round loop
    /// needs it every round; reusing the buffer keeps the loop
    /// allocation-free).
    fn per_user_trust_into(&mut self, reputation_facet: f64, oecd: f64) {
        let trust = &mut self.scratch.trust;
        let ledger = &self.ledger;
        let metric = &self.metric;
        let ladder_exposure = &self.ladder_exposure;
        let w_c = self.config.consumer_role_weight;
        trust.clear();
        trust.extend(self.users.iter().enumerate().map(|(i, u)| {
            let me = NodeId::from_index(i);
            let inputs = PrivacyFacetInputs {
                exposure: ladder_exposure[u.willingness_level],
                respect_rate: ledger.respect_rate_for(me),
                oecd_score: oecd,
            };
            let facets = FacetScores {
                privacy: inputs.facet().facet,
                reputation: reputation_facet,
                satisfaction: w_c * u.satisfaction.satisfaction()
                    + (1.0 - w_c) * u.provider_satisfaction.satisfaction(),
            };
            metric.trust(&facets)
        }));
    }

    fn measure_power(&mut self, iterations: usize) -> PowerReport {
        let n = self.config.nodes;
        let ScenarioScratch {
            truth, adversarial, ..
        } = &mut self.scratch;
        adversarial.clear();
        adversarial.extend((0..n).map(|i| self.population.is_adversarial(NodeId::from_index(i))));
        truth.clear();
        truth.extend((0..n).map(|i| self.population.true_quality(NodeId::from_index(i))));
        // Ground truth is slot-indexed; the mechanism sees the slot's
        // *current identity*, so whitewashed adversaries are judged as
        // the same adversary even though the mechanism sees a newcomer.
        match self.net_dynamics.as_ref() {
            Some(d) => accuracy::evaluate_identities(
                self.mechanism.as_ref(),
                d.identities(),
                truth,
                adversarial,
                iterations,
            ),
            None => accuracy::evaluate(self.mechanism.as_ref(), truth, adversarial, iterations),
        }
    }

    /// Runs the configured number of rounds and returns the outcome.
    pub fn run(&mut self) -> ScenarioOutcome {
        self.run_observed(&mut [])
    }

    /// Runs the scenario, invoking every [`Observer`] at start, after
    /// each round and at completion. Observers only watch: the outcome
    /// is identical to [`Scenario::run`].
    ///
    /// Dispatches between the serial and sharded round engines per
    /// `ScenarioConfig::shards` (see [`SHARD_AUTO_NODES`] for the auto
    /// threshold).
    pub fn run_observed(&mut self, observers: &mut [&mut dyn Observer]) -> ScenarioOutcome {
        match self.sharded_engine_shards() {
            None => self.run_serial_observed(observers),
            Some(shards) => self.run_sharded_observed(shards, observers),
        }
    }

    /// Forces the *sharded* engine with exactly `shards` shards,
    /// regardless of the config knob. The outcome is independent of the
    /// shard count — this entry point exists so tests and benches can
    /// pin exactly that (`run_sharded(1)`, `run_sharded(2)` and
    /// `run_sharded(8)` are bit-identical).
    pub fn run_sharded(&mut self, shards: usize) -> ScenarioOutcome {
        self.run_sharded_observed(shards, &mut [])
    }

    /// The shard count the config selects, or `None` for the serial
    /// engine. The *engine* choice never depends on the hardware; the
    /// auto shard *count* does, which is safe because the sharded
    /// outcome is shard-count-invariant.
    fn sharded_engine_shards(&self) -> Option<usize> {
        let threads = || {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        };
        match self.config.shards {
            1 => None,
            0 if self.config.nodes < SHARD_AUTO_NODES => None,
            // A few shards per worker keeps the atomic-cursor stealing
            // effective when ranges cost unevenly (adversary clusters).
            0 => Some((threads() * 4).min(self.config.nodes)),
            k => Some(k.min(self.config.nodes)),
        }
    }

    fn run_serial_observed(&mut self, observers: &mut [&mut dyn Observer]) -> ScenarioOutcome {
        for observer in observers.iter_mut() {
            observer.on_start(&self.config);
        }
        let n = self.config.nodes;
        let mut samples = Vec::with_capacity(self.config.rounds);
        let mut interactions = 0u64;
        let mut messages = 0u64;
        let mut denials = 0u64;
        let mut requests = 0u64;
        let mut refresh_iterations = 0usize;
        let mut now = SimTime::ZERO;
        // Loop-invariant system disclosure policy and its exposure.
        let system_policy = self.config.disclosure_policy();
        let system_exposure = self.ladder_exposure[self.config.disclosure_level];

        let mut whitewashes = 0u64;
        for round in 0..self.config.rounds {
            // The population clock drives time-based traitor betrayal
            // (consumes no randomness).
            self.population.advance_clock(now);
            for u in &mut self.users {
                u.breached_this_round = false;
                u.load_this_round = 0;
            }
            // Availability churn: some users are offline this round —
            // session-based when a dynamics plan runs, i.i.d. coin flips
            // otherwise.
            self.scratch.offline.clear();
            if !self.dynamics_pre_round(now, &mut whitewashes) {
                for _ in 0..n {
                    let off = self.config.churn_offline > 0.0
                        && self.rng.gen_bool(self.config.churn_offline);
                    self.scratch.offline.push(off);
                }
            }
            let round_availability =
                1.0 - self.scratch.offline.iter().filter(|&&o| o).count() as f64 / n as f64;
            let round_partition_health = self
                .net_dynamics
                .as_ref()
                .map_or(1.0, |d| d.partition_health());
            self.membership_pre_round();
            let mut round_ok = 0u64;
            let mut round_tried = 0u64;
            let mut round_reports = 0u64;
            let mut round_isolated = 0u64;

            for consumer_idx in 0..n {
                if self.scratch.offline[consumer_idx] {
                    continue;
                }
                let consumer = NodeId::from_index(consumer_idx);
                for _ in 0..self.config.interactions_per_node {
                    self.scratch.candidates.clear();
                    {
                        let offline = &self.scratch.offline;
                        // While a partition window is active, users can
                        // only reach providers in their own group.
                        let partition = self
                            .net_dynamics
                            .as_ref()
                            .and_then(|d| d.active_group_map());
                        let eligible = |p: &NodeId| {
                            !offline[p.index()]
                                && partition.is_none_or(|m| m.same_group(consumer, *p))
                        };
                        match self.membership.as_ref() {
                            // Peer sampling on: partners come from the
                            // consumer's bounded partial view, not the
                            // global graph neighborhood.
                            Some(m) => self
                                .scratch
                                .candidates
                                .extend(m.view(consumer).peers().filter(|p| eligible(p))),
                            None => self.scratch.candidates.extend(
                                self.graph
                                    .neighbors(consumer)
                                    .iter()
                                    .copied()
                                    .filter(eligible),
                            ),
                        }
                    }
                    let mech = &self.mechanism;
                    let dynamics = self.net_dynamics.as_ref();
                    let Some(provider) = self.config.selection.select_with(
                        &self.scratch.candidates,
                        |c| mech.score(dynamics.map_or(c, |d| d.identity(c))),
                        &mut self.rng,
                        &mut self.scratch.selection,
                    ) else {
                        // No eligible partner. The candidate set is fixed
                        // for the round (offline flags, partition and view
                        // all are), so count the consumer isolated once
                        // and skip its remaining attempts. Consumes no
                        // randomness, so membership-off runs stay
                        // bit-identical to the goldens.
                        round_isolated += 1;
                        break;
                    };
                    requests += 1;
                    messages += 1; // content request

                    // --- Flow 1: content access under the provider's PP.
                    let request = AccessRequest {
                        requester: consumer,
                        owner: provider,
                        operation: Operation::Read,
                        purpose: Purpose::Social,
                    };
                    let ctx = RequestContext {
                        social_distance: Some(1), // candidates are neighbours
                        requester_trust: self.mechanism.score(self.slot_identity(consumer)),
                    };
                    let decision =
                        self.enforcer
                            .decide(&request, &self.policies[provider.index()], &ctx);

                    let intended = self.users[consumer_idx].intentions.intends(provider);
                    self.users[consumer_idx].allocation.observe(intended);

                    let outcome_quality;
                    if decision.is_granted() {
                        let anonymized = decision == AccessDecision::GrantAnonymized;
                        self.ledger.record_disclosure(
                            now,
                            provider,
                            consumer,
                            DataCategory::Content,
                            Purpose::Social,
                            anonymized,
                        );
                        let outcome = self.population.interact(provider, consumer, &mut self.rng);
                        self.users[provider.index()].load_this_round += 1;
                        interactions += 1;
                        messages += 1; // content response
                        round_tried += 1;
                        if outcome.is_success() {
                            round_ok += 1;
                        }
                        outcome_quality = outcome.value();

                        // Malicious consumers leak what they were granted.
                        if self.population.is_adversarial(consumer)
                            && self.rng.gen_bool(self.config.leak_probability)
                        {
                            self.ledger.record_breach(
                                now,
                                provider,
                                consumer,
                                DataCategory::Content,
                                Purpose::Social,
                                BreachCause::MaliciousUser,
                            );
                            self.users[provider.index()].breached_this_round = true;
                        }

                        // --- Flow 2: feedback. The system *requires* the
                        // configured disclosure level to accept a report;
                        // users unwilling to meet it opt out ("the less a
                        // user trusts towards the system, the less she
                        // discloses information"). Adversaries always
                        // comply — influence is their goal.
                        let willing = self.users[consumer_idx].willingness_level;
                        let adversarial_rater = self.population.is_adversarial(consumer);
                        if adversarial_rater || willing >= self.config.disclosure_level {
                            let mut report = self
                                .population
                                .feedback(consumer, provider, outcome, now, None);
                            // The mechanism knows whitewashed slots by
                            // their current identity only.
                            if let Some(d) = self.net_dynamics.as_ref() {
                                report.rater = d.identity(report.rater);
                                report.ratee = d.identity(report.ratee);
                            }
                            let effective = system_policy;
                            let view = effective.view(&report);
                            // Ballot stuffing: without a disclosed rater
                            // identity, nothing rate-limits a lying rater,
                            // so false reports arrive amplified; every
                            // extra disclosed field improves duplicate
                            // detection, and identity eliminates the
                            // attack entirely.
                            let copies = if !effective.rater_identity && adversarial_rater {
                                self.config
                                    .ballot_stuffing_factor
                                    .saturating_sub(self.config.disclosure_level)
                                    .max(1)
                            } else {
                                1
                            };
                            for _ in 0..copies {
                                self.mechanism.record(&view);
                            }
                            round_reports += copies as u64;
                            messages += (self.mechanism.overhead_per_report() * copies) as u64;
                        }
                    } else {
                        denials += 1;
                        round_tried += 1;
                        outcome_quality = 0.0; // the consumer got nothing
                    }

                    // Behaviour metadata: the system observes the request
                    // at its configured collection level whether or not it
                    // was granted or feedback was filed. Collection beyond
                    // what the user's own policy tolerates is a
                    // *system-caused* breach (the paper's footnote-2
                    // category).
                    if system_exposure > self.policy_exposure_cap[consumer_idx] + 1e-9 {
                        self.ledger.record_breach(
                            now,
                            consumer,
                            provider, // the counterparty observes the over-shared fields
                            DataCategory::Behavior,
                            Purpose::Reputation,
                            BreachCause::System,
                        );
                        self.users[consumer_idx].breached_this_round = true;
                    } else {
                        self.ledger.record_disclosure(
                            now,
                            consumer,
                            provider,
                            DataCategory::Behavior,
                            Purpose::Reputation,
                            self.config.disclosure_level <= 1,
                        );
                    }

                    let aspects = InteractionAspects {
                        provider,
                        outcome_quality,
                        privacy_respected: !self.users[consumer_idx].breached_this_round,
                    };
                    let adequacy = self
                        .adequacy
                        .adequacy(&self.users[consumer_idx].intentions, &aspects);
                    self.users[consumer_idx].satisfaction.observe(adequacy);
                }
            }

            let tally = RoundTally {
                ok: round_ok,
                tried: round_tried,
                reports: round_reports,
                availability: round_availability,
                partition_health: round_partition_health,
                isolated: round_isolated,
            };
            self.finish_round(
                round,
                tally,
                &mut refresh_iterations,
                observers,
                &mut samples,
            );
            now += ROUND_DURATION;
        }

        let totals = RunTotals {
            interactions,
            messages,
            denials,
            requests,
            refresh_iterations,
            whitewashes,
        };
        self.assemble_outcome(totals, samples, observers)
    }

    /// Dynamics pre-round step shared by both engines: advances the
    /// session/partition runtime to `now`, fills `scratch.offline` from
    /// the session state, restarts whitewashed users' willingness at the
    /// system level, counts the whitewashes and grows the mechanism to
    /// the identity space. Returns `false` when no plan is attached (the
    /// caller fills the offline flags itself).
    fn dynamics_pre_round(&mut self, now: SimTime, whitewashes: &mut u64) -> bool {
        let n = self.config.nodes;
        let Some(dynamics) = self.net_dynamics.as_mut() else {
            return false;
        };
        dynamics.clear_events();
        dynamics.advance_detached(now);
        for slot in 0..n {
            self.scratch
                .offline
                .push(!dynamics.online(NodeId::from_index(slot)));
        }
        for &(_, event) in dynamics.events() {
            if let DynamicsEvent::Whitewash { slot, .. } = event {
                *whitewashes += 1;
                // The fresh identity re-enters compliant: its
                // willingness restarts at the system's required
                // level (it has no history of distrust to act on).
                self.users[slot.index()].willingness_level = self.config.disclosure_level;
            }
        }
        // Make sure the mechanism tracks every identity ever
        // allocated (whitewashed ones score at the prior).
        self.mechanism.resize(dynamics.identity_count());
        true
    }

    /// Membership pre-round step shared by both engines: one view
    /// shuffle against this round's offline flags and any active
    /// partition. Runs in the serial control path even under sharding,
    /// so the per-round view snapshot is identical for any shard
    /// count. No-op when the overlay is off.
    fn membership_pre_round(&mut self) {
        let Some(membership) = self.membership.as_mut() else {
            return;
        };
        let offline = &self.scratch.offline;
        let partition = self
            .net_dynamics
            .as_ref()
            .and_then(|d| d.active_group_map());
        membership.shuffle_round(
            |node| !offline[node.index()],
            |a, b| partition.is_none_or(|m| m.same_group(a, b)),
        );
    }

    /// The shared round tail: provider-role adequacy, a possible
    /// mechanism refresh, the round sample and the adaptive-disclosure
    /// update (the Section-3 loop). Pure state math — no randomness — so
    /// serial and sharded rounds end identically given the same state.
    fn finish_round(
        &mut self,
        round: usize,
        tally: RoundTally,
        refresh_iterations: &mut usize,
        observers: &mut [&mut dyn Observer],
        samples: &mut Vec<RoundSample>,
    ) {
        let n = self.config.nodes;
        // Provider-role adequacy: did the system keep each provider's
        // load within intentions? Offline providers observe nothing.
        {
            let offline = &self.scratch.offline;
            for (i, u) in self.users.iter_mut().enumerate() {
                if !offline[i] {
                    let adequacy = u.provider_intentions.load_adequacy(u.load_this_round);
                    u.provider_satisfaction.observe(adequacy);
                }
            }
        }

        if (round + 1).is_multiple_of(self.config.refresh_every) {
            *refresh_iterations += self.mechanism.refresh();
        }

        // --- Round sample + adaptive disclosure (the Section-3 loop).
        let power_now = self.measure_power(*refresh_iterations);
        let oecd = OecdAudit::evaluate(&self.oecd_profile()).overall();
        self.per_user_trust_into(power_now.power(&Default::default()), oecd);
        let trust_now = &self.scratch.trust;
        let mean_trust = trust_now.iter().sum::<f64>() / trust_now.len() as f64;
        if self.config.adaptive_disclosure {
            for (i, u) in self.users.iter_mut().enumerate() {
                if trust_now[i] < 0.4 && u.willingness_level > 0 {
                    u.willingness_level -= 1;
                } else if trust_now[i] > 0.7 && u.willingness_level < self.config.disclosure_level {
                    u.willingness_level += 1;
                }
            }
        }
        let sample = RoundSample {
            round,
            mean_satisfaction: self
                .users
                .iter()
                .map(|u| u.satisfaction.satisfaction())
                .sum::<f64>()
                / n as f64,
            mean_trust,
            respect_rate: self.ledger.respect_rate(),
            consistency: power_now.consistency,
            mean_willingness: self.mean_willingness(),
            success_rate: if tally.tried == 0 {
                0.0
            } else {
                tally.ok as f64 / tally.tried as f64
            },
            reports_filed: tally.reports,
            availability: tally.availability,
            partition_health: tally.partition_health,
            isolated: tally.isolated,
        };
        for observer in observers.iter_mut() {
            observer.on_round(&sample);
        }
        samples.push(sample);
    }

    /// The shared end-of-run assembly: a final refresh and power
    /// measurement, global facets and the per-user vectors.
    fn assemble_outcome(
        &mut self,
        totals: RunTotals,
        samples: Vec<RoundSample>,
        observers: &mut [&mut dyn Observer],
    ) -> ScenarioOutcome {
        let n = self.config.nodes;
        let refresh_iterations = totals.refresh_iterations + self.mechanism.refresh();
        let power = self.measure_power(refresh_iterations);
        let oecd = OecdAudit::evaluate(&self.oecd_profile()).overall();

        let w_c = self.config.consumer_role_weight;
        let satisfaction_values: Vec<f64> = self
            .users
            .iter()
            .map(|u| {
                w_c * u.satisfaction.satisfaction()
                    + (1.0 - w_c) * u.provider_satisfaction.satisfaction()
            })
            .collect();
        let satisfaction =
            // tsn-lint: allow(no-unwrap, "the population is non-empty (config validation rejects n == 0), so the aggregate exists")
            GlobalSatisfaction::from_values(&satisfaction_values).expect("population is non-empty");

        let privacy_inputs = PrivacyFacetInputs {
            exposure: self
                .mean_willingness()
                .min(self.config.disclosure_policy().exposure()),
            respect_rate: self.ledger.respect_rate(),
            oecd_score: oecd,
        };
        let facets = FacetScores {
            privacy: privacy_inputs.facet().facet,
            reputation: power.power(&Default::default()),
            satisfaction: satisfaction.fairness_discounted(),
        };
        let global_trust = self.metric.trust(&facets);
        self.per_user_trust_into(facets.reputation, oecd);
        let per_user_trust = self.scratch.trust.clone();
        let per_user_respect: Vec<f64> = (0..n)
            .map(|i| self.ledger.respect_rate_for(NodeId::from_index(i)))
            .collect();

        let outcome = ScenarioOutcome {
            facets,
            global_trust,
            per_user_trust,
            per_user_satisfaction: satisfaction_values,
            per_user_respect,
            power,
            satisfaction,
            respect_rate: self.ledger.respect_rate(),
            user_breaches: self.ledger.breach_count(Some(BreachCause::MaliciousUser)),
            system_breaches: self.ledger.breach_count(Some(BreachCause::System)),
            oecd_score: oecd,
            mean_willingness: self.mean_willingness(),
            denial_rate: if totals.requests == 0 {
                0.0
            } else {
                totals.denials as f64 / totals.requests as f64
            },
            interactions: totals.interactions,
            messages: totals.messages,
            whitewashes: totals.whitewashes,
            samples,
        };
        for observer in observers.iter_mut() {
            observer.on_finish(&outcome);
        }
        outcome
    }
}

/// Per-round measurement inputs [`Scenario::finish_round`] folds into a
/// [`RoundSample`].
struct RoundTally {
    ok: u64,
    tried: u64,
    reports: u64,
    availability: f64,
    partition_health: f64,
    isolated: u64,
}

/// Whole-run accumulators both engines hand to
/// [`Scenario::assemble_outcome`].
struct RunTotals {
    interactions: u64,
    messages: u64,
    denials: u64,
    requests: u64,
    refresh_iterations: usize,
    whitewashes: u64,
}

// ---------------------------------------------------------------------
// The sharded round engine (DESIGN.md §10).
//
// Nodes are partitioned into contiguous shards. Every round:
//
//   1. *Pre-round* (serial): population clock, dynamics/offline flags.
//   2. *Interaction phase* (parallel): workers claim shards off an
//      atomic cursor (the SweepRunner idiom) and run them against the
//      frozen round-start snapshot — scores, served counters and ledger
//      state do not move. Randomness comes from per-(round, node)
//      streams, so draws are independent of shard count and order.
//   3. *Merge barrier* (serial, fixed shard order): outboxes drain into
//      the ledger, the population's served counters, provider loads and
//      the mechanism. Contiguous shards in ascending order make the
//      merged event sequence exactly global consumer order — for any
//      shard count, which is why k = 1, 2, 8 are bit-identical.
//   4. *Round tail* (serial, shared with the serial engine).
//
// The serial engine remains the semantics pinned by the goldens: there,
// a consumer's selection sees feedback recorded earlier in the *same*
// round, and a leak immediately marks the victim's round. The sharded
// engine defers both to the barrier (synchronous-model semantics), so
// its outcomes differ from serial by design, never by scheduling.
impl Scenario {
    /// (Re)builds the shard plan: `shards` contiguous ranges of
    /// near-equal size covering `0..nodes`.
    fn init_shard_state(&mut self, shards: usize) {
        let n = self.config.nodes;
        let matches_plan =
            self.shard_state.len() == shards && self.shard_state.last().is_some_and(|s| s.end == n);
        if matches_plan {
            return;
        }
        self.shard_state = (0..shards)
            .map(|i| ShardState {
                start: i * n / shards,
                end: (i + 1) * n / shards,
                ..Default::default()
            })
            .collect();
    }

    fn run_sharded_observed(
        &mut self,
        shards: usize,
        observers: &mut [&mut dyn Observer],
    ) -> ScenarioOutcome {
        let n = self.config.nodes;
        let shards = shards.clamp(1, n);
        self.init_shard_state(shards);
        for observer in observers.iter_mut() {
            observer.on_start(&self.config);
        }
        let mut samples = Vec::with_capacity(self.config.rounds);
        let mut totals = RunTotals {
            interactions: 0,
            messages: 0,
            denials: 0,
            requests: 0,
            refresh_iterations: 0,
            whitewashes: 0,
        };
        let mut now = SimTime::ZERO;
        let system_policy = self.config.disclosure_policy();
        let system_exposure = self.ladder_exposure[self.config.disclosure_level];
        let workers = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .min(shards);

        for round in 0..self.config.rounds {
            self.population.advance_clock(now);
            // Offline flags: session state under a dynamics plan, one
            // dedicated per-round stream for i.i.d. coin flips (never
            // the main `self.rng` — the flags must not depend on how
            // many draws earlier rounds consumed elsewhere).
            self.scratch.offline.clear();
            if !self.dynamics_pre_round(now, &mut totals.whitewashes) {
                if self.config.churn_offline > 0.0 {
                    let mut stream =
                        SimRng::stream(self.config.seed, OFFLINE_STREAM_DOMAIN | round as u64);
                    for _ in 0..n {
                        self.scratch
                            .offline
                            .push(stream.gen_bool(self.config.churn_offline));
                    }
                } else {
                    self.scratch.offline.resize(n, false);
                }
            }
            let round_availability =
                1.0 - self.scratch.offline.iter().filter(|&&o| o).count() as f64 / n as f64;
            let round_partition_health = self
                .net_dynamics
                .as_ref()
                .map_or(1.0, |d| d.partition_health());
            // View shuffle in the serial control path, before the
            // phase snapshot freezes — shards then read identical
            // views for any shard count.
            self.membership_pre_round();

            // --- Interaction phase: workers steal shards off a cursor.
            {
                let ctx = ShardCtx {
                    config: &self.config,
                    graph: &self.graph,
                    population: &self.population,
                    mechanism: self.mechanism.as_ref(),
                    enforcer: &self.enforcer,
                    adequacy: &self.adequacy,
                    offline: &self.scratch.offline,
                    policy_exposure_cap: &self.policy_exposure_cap,
                    policies: &self.policies,
                    partition: self
                        .net_dynamics
                        .as_ref()
                        .and_then(|d| d.active_group_map()),
                    identities: self.net_dynamics.as_ref().map(|d| d.identities()),
                    views: self.membership.as_ref().map(|m| m.views()),
                    system_policy,
                    system_exposure,
                    round,
                    now,
                };
                let mut rest: &mut [UserState] = &mut self.users;
                let mut units: Vec<Mutex<Option<ShardUnit<'_>>>> = Vec::with_capacity(shards);
                for state in self.shard_state.iter_mut() {
                    let width = state.end - state.start;
                    let (own, tail) = std::mem::take(&mut rest).split_at_mut(width);
                    rest = tail;
                    units.push(Mutex::new(Some((own, state))));
                }
                if workers == 1 {
                    for unit in &units {
                        let (users, state) =
                            // tsn-lint: allow(no-unwrap, "poisoning implies a prior shard-worker panic, and the cursor hands each unit out exactly once")
                            unit.lock().expect("unpoisoned").take().expect("unclaimed");
                        run_shard(&ctx, users, state);
                    }
                } else {
                    let cursor = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            scope.spawn(|| loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= units.len() {
                                    break;
                                }
                                let (users, state) = units[i]
                                    .lock()
                                    // tsn-lint: allow(no-unwrap, "lock poisoning implies a prior shard-worker panic; crashing here re-surfaces it")
                                    .expect("unpoisoned")
                                    .take()
                                    // tsn-lint: allow(no-unwrap, "the atomic cursor hands each shard to exactly one worker, so every slot is filled")
                                    .expect("each shard is claimed exactly once");
                                run_shard(&ctx, users, state);
                            });
                        }
                    });
                }
            }

            // --- Merge barrier, in ascending shard order.
            let tally = self.merge_shards(now, system_policy, &mut totals);
            let tally = RoundTally {
                availability: round_availability,
                partition_health: round_partition_health,
                ..tally
            };
            self.finish_round(
                round,
                tally,
                &mut totals.refresh_iterations,
                observers,
                &mut samples,
            );
            now += ROUND_DURATION;
        }

        self.assemble_outcome(totals, samples, observers)
    }

    /// Drains every shard outbox into the shared state, in shard order:
    /// ledger events, served/load credits, then the staged feedback
    /// through one `record_batch` per shard.
    fn merge_shards(
        &mut self,
        now: SimTime,
        system_policy: DisclosurePolicy,
        totals: &mut RunTotals,
    ) -> RoundTally {
        let Scenario {
            shard_state,
            ledger,
            population,
            users,
            mechanism,
            scratch,
            ..
        } = self;
        let mut ok = 0u64;
        let mut tried = 0u64;
        let mut reports_filed = 0u64;
        let mut isolated = 0u64;
        for state in shard_state.iter_mut() {
            let outbox = &mut state.outbox;
            let c = outbox.counters;
            totals.requests += c.requests;
            totals.denials += c.denials;
            totals.interactions += c.interactions;
            totals.messages += c.messages;
            ok += c.round_ok;
            tried += c.round_tried;
            reports_filed += c.round_reports;
            isolated += c.round_isolated;

            for event in outbox.ledger.drain(..) {
                match event {
                    LedgerEvent::Disclosure {
                        owner,
                        recipient,
                        category,
                        purpose,
                        anonymized,
                    } => ledger
                        .record_disclosure(now, owner, recipient, category, purpose, anonymized),
                    LedgerEvent::Breach {
                        owner,
                        recipient,
                        category,
                        purpose,
                        cause,
                    } => ledger.record_breach(now, owner, recipient, category, purpose, cause),
                }
            }
            for &provider in &outbox.touches {
                population.note_served(provider, 1);
                users[provider.index()].load_this_round += 1;
            }
            scratch.views.clear();
            for &(ref report, copies) in &outbox.reports {
                let view = system_policy.view(report);
                for _ in 0..copies {
                    scratch.views.push(view);
                }
            }
            mechanism.record_batch(&scratch.views);
        }
        RoundTally {
            ok,
            tried,
            reports: reports_filed,
            availability: 1.0,
            partition_health: 1.0,
            isolated,
        }
    }
}

/// Builds and runs a scenario in one call.
///
/// # Errors
///
/// Returns a [`ValidationError`] when the configuration is invalid.
pub fn run_scenario(config: ScenarioConfig) -> Result<ScenarioOutcome, ValidationError> {
    Ok(Scenario::new(config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyProfile;
    use tsn_reputation::PopulationConfig;

    fn small(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            ..ScenarioConfig::small()
        }
    }

    #[test]
    fn outcome_fields_are_bounded() {
        let o = run_scenario(small(1)).unwrap();
        for (name, v) in o.facets.iter() {
            assert!((0.0..=1.0).contains(&v), "{name} = {v}");
        }
        assert!((0.0..=1.0).contains(&o.global_trust));
        assert!((0.0..=1.0).contains(&o.respect_rate));
        assert!((0.0..=1.0).contains(&o.denial_rate));
        assert_eq!(o.per_user_trust.len(), 40);
        assert!(o.per_user_trust.iter().all(|t| (0.0..=1.0).contains(t)));
        assert_eq!(o.samples.len(), 10);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run_scenario(small(7)).unwrap();
        let b = run_scenario(small(7)).unwrap();
        assert_eq!(a.global_trust, b.global_trust);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.per_user_trust, b.per_user_trust);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_scenario(small(1)).unwrap();
        let b = run_scenario(small(2)).unwrap();
        assert_ne!(a.global_trust, b.global_trust);
    }

    #[test]
    fn full_disclosure_exposes_more_than_minimal() {
        let mut lo = small(3);
        lo.disclosure_level = 0;
        let mut hi = small(3);
        hi.disclosure_level = 4;
        let lo_out = run_scenario(lo).unwrap();
        let hi_out = run_scenario(hi).unwrap();
        assert!(
            lo_out.facets.privacy > hi_out.facets.privacy,
            "less disclosure → better privacy facet: {} vs {}",
            lo_out.facets.privacy,
            hi_out.facets.privacy
        );
    }

    #[test]
    fn disclosure_raises_reputation_power() {
        // The antagonistic coupling of Figure 2: averaged over seeds.
        let mean_rep = |level: usize| {
            (0..4)
                .map(|s| {
                    let mut c = small(20 + s);
                    c.disclosure_level = level;
                    c.population = PopulationConfig::with_malicious(0.3);
                    c.rounds = 15;
                    run_scenario(c).unwrap().facets.reputation
                })
                .sum::<f64>()
                / 4.0
        };
        let low = mean_rep(0);
        let high = mean_rep(4);
        assert!(high > low, "more shared info → more power: {high} vs {low}");
    }

    #[test]
    fn system_breaches_occur_only_when_oversharing() {
        let mut strict_low = small(5);
        strict_low.policy_profile = PolicyProfile::Strict;
        strict_low.disclosure_level = 2;
        let o = run_scenario(strict_low).unwrap();
        assert_eq!(o.system_breaches, 0, "level 2 within strict cap");

        let mut strict_high = small(5);
        strict_high.policy_profile = PolicyProfile::Strict;
        strict_high.disclosure_level = 4;
        let o = run_scenario(strict_high).unwrap();
        assert!(
            o.system_breaches > 0,
            "level 4 over-shares for strict users"
        );
    }

    #[test]
    fn malicious_population_causes_user_breaches() {
        let mut c = small(6);
        c.population = PopulationConfig::with_malicious(0.4);
        c.leak_probability = 0.5;
        let o = run_scenario(c).unwrap();
        assert!(o.user_breaches > 0);

        let mut honest = small(6);
        honest.population = PopulationConfig::with_malicious(0.0);
        honest.leak_probability = 0.5;
        let o = run_scenario(honest).unwrap();
        assert_eq!(o.user_breaches, 0, "no adversaries, no leaks");
    }

    #[test]
    fn strict_policies_cause_denials() {
        let mut strict = small(8);
        strict.policy_profile = PolicyProfile::Strict;
        let o = run_scenario(strict).unwrap();
        assert!(o.denial_rate > 0.0);

        let mut permissive = small(8);
        permissive.policy_profile = PolicyProfile::Permissive;
        let o2 = run_scenario(permissive).unwrap();
        assert!(o2.denial_rate < o.denial_rate);
    }

    #[test]
    fn adaptive_disclosure_reacts_to_low_trust() {
        // A hostile, over-sharing system should push adaptive users to
        // retract disclosure relative to the open-loop run.
        let hostile = |adaptive: bool, seed: u64| {
            let mut c = small(seed);
            c.population = PopulationConfig::with_malicious(0.5);
            c.disclosure_level = 4;
            c.leak_probability = 0.8;
            c.adaptive_disclosure = adaptive;
            c.rounds = 20;
            run_scenario(c).unwrap().mean_willingness
        };
        let adaptive = (0..3).map(|s| hostile(true, 30 + s)).sum::<f64>() / 3.0;
        let open_loop = (0..3).map(|s| hostile(false, 30 + s)).sum::<f64>() / 3.0;
        assert!(
            adaptive < open_loop,
            "distrusting users retract disclosure: {adaptive} vs {open_loop}"
        );
    }

    #[test]
    fn series_extraction() {
        let o = run_scenario(small(9)).unwrap();
        for name in RoundSample::SERIES_NAMES {
            assert_eq!(o.series(name).expect("known name").len(), o.samples.len());
        }
    }

    #[test]
    fn unknown_series_is_none_not_panic() {
        let o = run_scenario(small(9)).unwrap();
        assert_eq!(o.series("nope"), None);
        assert_eq!(o.samples[0].field("nope"), None);
    }

    #[test]
    fn invalid_config_rejected() {
        let cases = [
            ScenarioConfig {
                disclosure_level: 9,
                ..Default::default()
            },
            ScenarioConfig {
                churn_offline: 1.5,
                ..Default::default()
            },
            ScenarioConfig {
                consumer_role_weight: -0.1,
                ..Default::default()
            },
        ];
        for c in cases {
            assert!(Scenario::new(c).is_err());
        }
    }

    #[test]
    fn churn_reduces_interactions_but_stays_sound() {
        let mut stable = small(40);
        stable.rounds = 12;
        let stable_out = run_scenario(stable).unwrap();
        let mut churny = small(40);
        churny.rounds = 12;
        churny.churn_offline = 0.4;
        let churny_out = run_scenario(churny).unwrap();
        assert!(churny_out.interactions < stable_out.interactions);
        assert!(churny_out.facets.validate().is_ok());
        assert!((0.0..=1.0).contains(&churny_out.global_trust));
    }

    #[test]
    fn full_churn_is_a_degenerate_but_safe_run() {
        let mut c = small(41);
        c.churn_offline = 1.0;
        let o = run_scenario(c).unwrap();
        assert_eq!(o.interactions, 0);
        assert_eq!(o.denial_rate, 0.0);
        assert!(o.facets.validate().is_ok());
    }

    #[test]
    fn greedy_selection_overloads_providers() {
        // Best-only selection concentrates load on top-scored providers,
        // hurting provider-role satisfaction relative to random spread.
        let provider_side = |selection: tsn_reputation::SelectionPolicy, seed: u64| {
            let mut c = small(seed);
            c.rounds = 15;
            c.interactions_per_node = 4;
            c.consumer_role_weight = 0.0; // isolate the provider role
            c.selection = selection;
            run_scenario(c).unwrap().facets.satisfaction
        };
        let spread = (0..3)
            .map(|s| provider_side(tsn_reputation::SelectionPolicy::Random, 60 + s))
            .sum::<f64>()
            / 3.0;
        let greedy = (0..3)
            .map(|s| provider_side(tsn_reputation::SelectionPolicy::Best, 60 + s))
            .sum::<f64>()
            / 3.0;
        assert!(
            greedy < spread,
            "greedy selection must overload winners: {greedy} vs {spread}"
        );
    }
}
