//! Commonly used items, for `use tsn_core::prelude::*`.
//!
//! Pulls together the batch entry points (scenario, builder, sweeps),
//! the online entry points ([`TrustService`], [`ServiceDriver`]) and
//! the simulator vocabulary they both speak ([`SimTime`], [`NodeId`],
//! …), so one import serves scripts and examples.

pub use crate::runner::{
    DisclosureLevel, Observer, ProgressPrinter, ScenarioBuilder, SeriesRecorder, SweepGrid,
    SweepReport, SweepRunner, ValidationError,
};
pub use crate::{
    FacetScores, FacetWeights, Scenario, ScenarioConfig, ScenarioOutcome, TrustMetric, TrustReport,
};
pub use tsn_reputation::{InteractionOutcome, MechanismKind};
pub use tsn_service::{
    DriverConfig, EpochSample, ExposureQueryResult, IngestOutcome, ServiceConfig, ServiceDriver,
    ServiceEvent, ServiceOp, ServiceStats, TrustQueryResult, TrustService,
};
pub use tsn_simnet::{
    DynamicsPlan, DynamicsRuntime, NodeId, PartitionWindow, SimDuration, SimRng, SimTime,
    Simulation,
};
