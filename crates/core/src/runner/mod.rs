//! The unified experiment-runner API.
//!
//! Everything that turns knobs into numbers lives here, in three
//! layers:
//!
//! * [`ScenarioBuilder`] — fluent, *validated* construction of a single
//!   scenario, with typed knobs ([`DisclosureLevel`] instead of a raw
//!   `usize`) and a [`ValidationError`] naming the offending field;
//! * [`Observer`] — per-round subscription hooks
//!   ([`SeriesRecorder`], [`ProgressPrinter`], [`ConvergenceProbe`]),
//!   replacing post-hoc mining of `ScenarioOutcome::samples`;
//! * [`SweepGrid`] / [`SweepRunner`] — declarative mechanism ×
//!   disclosure × profile × seed grids executed across threads with
//!   per-cell deterministic seeding, yielding a [`SweepReport`] with
//!   CSV/JSON emitters.
//!
//! The CLI, the examples and every `tsn-bench` experiment binary build
//! their configurations exclusively through this module; see DESIGN.md
//! for the architecture.

mod builder;
mod error;
mod observer;
mod sweep;

pub use builder::{DisclosureLevel, ScenarioBuilder};
pub use error::ValidationError;
pub use observer::{ConvergenceProbe, Observer, ProgressPrinter, SeriesRecorder};
pub use sweep::{SweepCell, SweepCellResult, SweepGrid, SweepReport, SweepRunner};
