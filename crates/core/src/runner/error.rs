//! Typed configuration errors.

use std::error::Error;
use std::fmt;

/// A rejected configuration: which knob was wrong and why.
///
/// Every path that turns knobs into a runnable scenario —
/// [`ScenarioBuilder::build`](crate::runner::ScenarioBuilder::build),
/// [`ScenarioConfig::validate`](crate::ScenarioConfig::validate),
/// [`SweepGrid`](crate::runner::SweepGrid) expansion — reports failures
/// through this type instead of a bare string, so callers can match on
/// the offending field and tooling can surface it next to the right
/// flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// The configuration field that failed validation.
    pub field: &'static str,
    /// Human-readable explanation of the constraint that was violated.
    pub message: String,
}

impl ValidationError {
    /// Creates an error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        ValidationError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.message)
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = ValidationError::new("nodes", "need at least 4 nodes");
        assert_eq!(e.to_string(), "invalid nodes: need at least 4 nodes");
        assert_eq!(e.field, "nodes");
    }
}
