//! Grid sweeps over the settable dimensions, executed in parallel.
//!
//! The paper's figures are sweeps: mechanism × disclosure × policy
//! profile (× seed) grids whose every cell is one scenario run. A
//! [`SweepGrid`] declares the grid, a [`SweepRunner`] executes the
//! cells — serially or across std threads — and a [`SweepReport`]
//! holds the per-cell summaries with CSV/JSON emitters.
//!
//! Determinism: a cell's configuration (including its seed) depends
//! only on its grid coordinates, never on which thread executes it or
//! in which order, and the report is always in grid order — so serial
//! and parallel runs produce identical reports.

use crate::config::{PolicyProfile, ScenarioConfig};
use crate::facets::FacetScores;
use crate::json::{format_f64, JsonValue};
use crate::report::{csv_field, ExperimentRow, ExperimentTable};
use crate::runner::{DisclosureLevel, ScenarioBuilder, ValidationError};
use crate::scenario::{run_scenario, ScenarioOutcome};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use tsn_reputation::MechanismKind;

/// A declared sweep: a base configuration plus the dimensions to vary.
///
/// Dimensions default to the base's own value; widen them with the
/// fluent setters. Cells are enumerated in row-major order
/// (mechanism, then disclosure, then profile, then seed).
///
/// ```
/// use tsn_core::runner::{ScenarioBuilder, SweepGrid, SweepRunner};
///
/// let grid = SweepGrid::over(ScenarioBuilder::small())
///     .all_mechanisms()
///     .seeds([1, 2]);
/// assert_eq!(grid.len(), 5 * 2);
/// let report = SweepRunner::parallel().run(&grid).expect("valid grid");
/// assert_eq!(report.cells.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct SweepGrid {
    base: ScenarioConfig,
    mechanisms: Vec<MechanismKind>,
    disclosures: Vec<DisclosureLevel>,
    profiles: Vec<PolicyProfile>,
    seeds: Vec<u64>,
}

/// One grid coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Position in grid order (stable across runs and thread counts).
    pub index: usize,
    /// Reputation mechanism of this cell.
    pub mechanism: MechanismKind,
    /// Disclosure level of this cell.
    pub disclosure: DisclosureLevel,
    /// Policy profile of this cell.
    pub profile: PolicyProfile,
    /// Scenario seed of this cell.
    pub seed: u64,
}

impl SweepCell {
    /// Compact label for tables: `"eigentrust/level3/mixed/s42"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/s{}",
            self.mechanism.name(),
            self.disclosure.label(),
            self.profile.label(),
            self.seed
        )
    }
}

impl SweepGrid {
    /// Declares a sweep around the given base scenario. Every dimension
    /// starts as the singleton of the base's own value.
    pub fn over(base: ScenarioBuilder) -> SweepGrid {
        let base = base.into_config_unchecked();
        SweepGrid {
            mechanisms: vec![base.mechanism],
            disclosures: vec![
                DisclosureLevel::from_index(base.disclosure_level).unwrap_or(DisclosureLevel::Full)
            ],
            profiles: vec![base.policy_profile],
            seeds: vec![base.seed],
            base,
        }
    }

    /// Sweeps the given mechanisms.
    pub fn mechanisms(mut self, mechanisms: impl IntoIterator<Item = MechanismKind>) -> Self {
        self.mechanisms = mechanisms.into_iter().collect();
        self
    }

    /// Sweeps every implemented mechanism.
    pub fn all_mechanisms(self) -> Self {
        self.mechanisms(MechanismKind::ALL)
    }

    /// Sweeps the given disclosure levels.
    pub fn disclosures(mut self, levels: impl IntoIterator<Item = DisclosureLevel>) -> Self {
        self.disclosures = levels.into_iter().collect();
        self
    }

    /// Sweeps the full disclosure ladder.
    pub fn all_disclosures(self) -> Self {
        self.disclosures(DisclosureLevel::ALL)
    }

    /// Sweeps the given policy profiles.
    pub fn profiles(mut self, profiles: impl IntoIterator<Item = PolicyProfile>) -> Self {
        self.profiles = profiles.into_iter().collect();
        self
    }

    /// Sweeps all three policy profiles.
    pub fn all_profiles(self) -> Self {
        self.profiles(PolicyProfile::ALL)
    }

    /// Sweeps the given seeds (Monte-Carlo repetitions per point).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.mechanisms.len() * self.disclosures.len() * self.profiles.len() * self.seeds.len()
    }

    /// Whether the grid has no cells (some dimension is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the base configuration and that every dimension is
    /// non-empty.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the problem.
    pub fn validate(&self) -> Result<(), ValidationError> {
        self.base.validate()?;
        for (name, empty) in [
            ("mechanisms", self.mechanisms.is_empty()),
            ("disclosures", self.disclosures.is_empty()),
            ("profiles", self.profiles.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            if empty {
                return Err(ValidationError::new(
                    name,
                    "sweep dimension must be non-empty",
                ));
            }
        }
        Ok(())
    }

    /// Enumerates the cells in grid order.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for &mechanism in &self.mechanisms {
            for &disclosure in &self.disclosures {
                for &profile in &self.profiles {
                    for &seed in &self.seeds {
                        cells.push(SweepCell {
                            index: cells.len(),
                            mechanism,
                            disclosure,
                            profile,
                            seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The concrete configuration a cell runs: the base with the cell's
    /// coordinates substituted. Depends only on the coordinates, which
    /// is what makes sweeps reproducible under any parallelism.
    pub fn config_for(&self, cell: &SweepCell) -> ScenarioConfig {
        let mut config = self.base.clone();
        config.mechanism = cell.mechanism;
        config.disclosure_level = cell.disclosure.index();
        config.policy_profile = cell.profile;
        config.seed = cell.seed;
        config
    }
}

/// Summary of one executed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellResult {
    /// The grid coordinate this result belongs to.
    pub cell: SweepCell,
    /// Measured facet scores.
    pub facets: FacetScores,
    /// Global trust under the default metric.
    pub trust: f64,
    /// Ledger policy-respect rate.
    pub respect_rate: f64,
    /// Fraction of content requests denied by enforcement.
    pub denial_rate: f64,
    /// OECD audit score.
    pub oecd_score: f64,
    /// Mean end-of-run disclosure willingness.
    pub mean_willingness: f64,
    /// Breaches caused by malicious users.
    pub user_breaches: usize,
    /// Breaches caused by the system.
    pub system_breaches: usize,
    /// Total interactions executed.
    pub interactions: u64,
    /// Total protocol messages.
    pub messages: u64,
}

impl SweepCellResult {
    fn from_outcome(cell: SweepCell, outcome: &ScenarioOutcome) -> Self {
        SweepCellResult {
            cell,
            facets: outcome.facets,
            trust: outcome.global_trust,
            respect_rate: outcome.respect_rate,
            denial_rate: outcome.denial_rate,
            oecd_score: outcome.oecd_score,
            mean_willingness: outcome.mean_willingness,
            user_breaches: outcome.user_breaches,
            system_breaches: outcome.system_breaches,
            interactions: outcome.interactions,
            messages: outcome.messages,
        }
    }
}

/// The structured result of a sweep, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One summary per cell, ordered by [`SweepCell::index`].
    pub cells: Vec<SweepCellResult>,
}

impl SweepReport {
    /// The trust-maximizing cell, if the report is non-empty.
    pub fn best_by_trust(&self) -> Option<&SweepCellResult> {
        self.cells.iter().max_by(|a, b| a.trust.total_cmp(&b.trust))
    }

    /// Cells whose facets clear the given thresholds (the paper's
    /// Area A membership test).
    pub fn meeting<'a>(
        &'a self,
        thresholds: &'a FacetScores,
    ) -> impl Iterator<Item = &'a SweepCellResult> {
        self.cells
            .iter()
            .filter(move |c| c.facets.meets(thresholds))
    }

    /// Mean facets and trust grouped by a cell key (e.g. group by
    /// disclosure level across seeds). Groups are returned in key
    /// order.
    pub fn mean_by<K: Ord, F: Fn(&SweepCellResult) -> K>(
        &self,
        key: F,
    ) -> Vec<(K, FacetScores, f64)> {
        let mut groups: BTreeMap<K, (FacetScores, f64, usize)> = BTreeMap::new();
        for cell in &self.cells {
            let entry = groups.entry(key(cell)).or_insert((
                FacetScores {
                    privacy: 0.0,
                    reputation: 0.0,
                    satisfaction: 0.0,
                },
                0.0,
                0,
            ));
            entry.0.privacy += cell.facets.privacy;
            entry.0.reputation += cell.facets.reputation;
            entry.0.satisfaction += cell.facets.satisfaction;
            entry.1 += cell.trust;
            entry.2 += 1;
        }
        groups
            .into_iter()
            .map(|(k, (sum, trust, n))| {
                let n = n as f64;
                (
                    k,
                    FacetScores {
                        privacy: sum.privacy / n,
                        reputation: sum.reputation / n,
                        satisfaction: sum.satisfaction / n,
                    },
                    trust / n,
                )
            })
            .collect()
    }

    /// Renders as CSV with a header row (floats in shortest round-trip
    /// form, so output is bit-stable across runs). String-valued fields
    /// are quoted per RFC 4180 when they contain `,`, `"` or line
    /// breaks, so the table survives any future axis label verbatim.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "mechanism,disclosure,profile,seed,privacy,reputation,satisfaction,trust,\
             respect_rate,denial_rate,oecd_score,mean_willingness,user_breaches,\
             system_breaches,interactions,messages\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                csv_field(c.cell.mechanism.name()),
                c.cell.disclosure.index(),
                csv_field(c.cell.profile.label()),
                c.cell.seed,
                format_f64(c.facets.privacy),
                format_f64(c.facets.reputation),
                format_f64(c.facets.satisfaction),
                format_f64(c.trust),
                format_f64(c.respect_rate),
                format_f64(c.denial_rate),
                format_f64(c.oecd_score),
                format_f64(c.mean_willingness),
                c.user_breaches,
                c.system_breaches,
                c.interactions,
                c.messages,
            ));
        }
        out
    }

    /// Renders as a single JSON array of cell objects.
    pub fn to_json(&self) -> String {
        JsonValue::array(self.cells.iter().map(|c| {
            JsonValue::object([
                ("mechanism", JsonValue::str(c.cell.mechanism.name())),
                ("disclosure", JsonValue::from(c.cell.disclosure.index())),
                ("profile", JsonValue::str(c.cell.profile.label())),
                ("seed", JsonValue::from(c.cell.seed)),
                ("privacy", JsonValue::from(c.facets.privacy)),
                ("reputation", JsonValue::from(c.facets.reputation)),
                ("satisfaction", JsonValue::from(c.facets.satisfaction)),
                ("trust", JsonValue::from(c.trust)),
                ("respect_rate", JsonValue::from(c.respect_rate)),
                ("denial_rate", JsonValue::from(c.denial_rate)),
                ("oecd_score", JsonValue::from(c.oecd_score)),
                ("mean_willingness", JsonValue::from(c.mean_willingness)),
                ("user_breaches", JsonValue::from(c.user_breaches)),
                ("system_breaches", JsonValue::from(c.system_breaches)),
                ("interactions", JsonValue::from(c.interactions)),
                ("messages", JsonValue::from(c.messages)),
            ])
        }))
        .to_string()
    }

    /// Converts to an [`ExperimentTable`] (label = cell label; columns =
    /// facets and trust) for the bench binaries' emit contract.
    pub fn to_table(&self, id: impl Into<String>, title: impl Into<String>) -> ExperimentTable {
        let mut table = ExperimentTable::new(
            id,
            title,
            ["privacy", "reputation", "satisfaction", "trust"],
        );
        for c in &self.cells {
            table.push(ExperimentRow::new(
                c.cell.label(),
                vec![
                    c.facets.privacy,
                    c.facets.reputation,
                    c.facets.satisfaction,
                    c.trust,
                ],
            ));
        }
        table
    }
}

/// Executes a [`SweepGrid`], serially or across threads.
///
/// Thread count only affects wall-clock time: results are written into
/// their grid slot, so the report is identical for any thread count.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A single-threaded runner.
    pub fn serial() -> Self {
        SweepRunner { threads: 1 }
    }

    /// A runner using all available hardware parallelism.
    pub fn parallel() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepRunner { threads }
    }

    /// A runner with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// The thread count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of the grid and collects the report in grid
    /// order.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the grid's base configuration is
    /// invalid or a dimension is empty; no cell is executed in that
    /// case.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepReport, ValidationError> {
        grid.validate()?;
        let cells = grid.cells();
        let threads = self.threads.min(cells.len()).max(1);
        let mut slots: Vec<Option<SweepCellResult>> = Vec::new();
        slots.resize_with(cells.len(), || None);

        if threads == 1 {
            for cell in &cells {
                slots[cell.index] = Some(run_cell(grid, cell));
            }
        } else {
            // Chunked work stealing over an atomic cursor: each worker
            // claims a run of consecutive cells per fetch_add (fewer
            // contended cursor bumps than per-cell claiming), executes
            // them into a thread-local buffer, and the results are
            // merged into their grid slots after the join — no lock
            // anywhere on the execution path. A cell's config depends
            // only on its coordinates, so which worker claims which
            // chunk never shows in the report.
            let chunk = (cells.len() / (threads * 4)).max(1);
            let next = AtomicUsize::new(0);
            let locals: Vec<Vec<(usize, SweepCellResult)>> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let start = next.fetch_add(chunk, Ordering::Relaxed);
                                if start >= cells.len() {
                                    break;
                                }
                                let end = (start + chunk).min(cells.len());
                                for cell in &cells[start..end] {
                                    local.push((cell.index, run_cell(grid, cell)));
                                }
                            }
                            local
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    // tsn-lint: allow(no-unwrap, "join() re-raises a worker-thread panic on the coordinating thread; not a new failure mode")
                    .map(|w| w.join().expect("sweep worker panicked"))
                    .collect()
            });
            for (index, result) in locals.into_iter().flatten() {
                slots[index] = Some(result);
            }
        }

        Ok(SweepReport {
            cells: slots
                .into_iter()
                // tsn-lint: allow(no-unwrap, "the atomic cursor hands every cell to exactly one worker; a hole here is a lost cell worth crashing on")
                .map(|s| s.expect("every cell executed"))
                .collect(),
        })
    }
}

fn run_cell(grid: &SweepGrid, cell: &SweepCell) -> SweepCellResult {
    // tsn-lint: allow(no-unwrap, "the grid was validated before execution; per-cell configs inherit that validity")
    let outcome = run_scenario(grid.config_for(cell)).expect("grid validated before execution");
    SweepCellResult::from_outcome(*cell, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid::over(ScenarioBuilder::small().nodes(24).rounds(4).graph(4, 0.1))
            .mechanisms([MechanismKind::None, MechanismKind::Beta])
            .disclosures([DisclosureLevel::Minimal, DisclosureLevel::Full])
            .seeds([1, 2])
    }

    #[test]
    fn grid_enumerates_in_row_major_order() {
        let grid = tiny_grid();
        assert_eq!(grid.len(), 8);
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
        assert_eq!(cells[0].mechanism, MechanismKind::None);
        assert_eq!(cells[0].disclosure, DisclosureLevel::Minimal);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[7].mechanism, MechanismKind::Beta);
        assert_eq!(cells[7].disclosure, DisclosureLevel::Full);
    }

    #[test]
    fn cell_config_substitutes_coordinates_only() {
        let grid = tiny_grid();
        let cells = grid.cells();
        let config = grid.config_for(&cells[5]);
        assert_eq!(config.mechanism, cells[5].mechanism);
        assert_eq!(config.disclosure_level, cells[5].disclosure.index());
        assert_eq!(config.seed, cells[5].seed);
        assert_eq!(config.nodes, 24, "non-swept knobs come from the base");
    }

    #[test]
    fn empty_dimension_is_rejected_before_execution() {
        let grid = tiny_grid().seeds([]);
        assert!(grid.is_empty());
        let err = SweepRunner::serial().run(&grid).unwrap_err();
        assert_eq!(err.field, "seeds");
    }

    #[test]
    fn invalid_base_is_rejected_before_execution() {
        let grid = SweepGrid::over(ScenarioBuilder::new().nodes(2));
        let err = SweepRunner::parallel().run(&grid).unwrap_err();
        assert_eq!(err.field, "nodes");
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let grid = tiny_grid();
        let serial = SweepRunner::serial().run(&grid).expect("valid grid");
        let parallel = SweepRunner::with_threads(4).run(&grid).expect("valid grid");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn same_grid_same_report_across_runs() {
        let grid = tiny_grid();
        let a = SweepRunner::with_threads(3).run(&grid).expect("valid grid");
        let b = SweepRunner::with_threads(2).run(&grid).expect("valid grid");
        assert_eq!(a, b);
    }

    #[test]
    fn report_helpers_work() {
        let report = SweepRunner::parallel()
            .run(&tiny_grid())
            .expect("valid grid");
        let best = report.best_by_trust().expect("non-empty");
        assert!(report.cells.iter().all(|c| c.trust <= best.trust));

        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + report.cells.len());
        assert!(csv.starts_with("mechanism,disclosure,profile"));

        let json = report.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"mechanism\":\"beta\""));

        let table = report.to_table("S1", "tiny sweep");
        assert_eq!(table.rows.len(), report.cells.len());

        // Grouping by disclosure averages over mechanisms and seeds.
        let by_level = report.mean_by(|c| c.cell.disclosure.index());
        assert_eq!(by_level.len(), 2);
        assert_eq!(by_level[0].0, 0);
        assert_eq!(by_level[1].0, 4);
    }

    /// A minimal RFC 4180 reader: quoted fields may contain commas,
    /// doubled quotes and line breaks. The reference the emitter's
    /// round-trip test parses back through.
    fn parse_csv(input: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        let mut field = String::new();
        let mut chars = input.chars().peekable();
        let mut in_quotes = false;
        while let Some(c) = chars.next() {
            if in_quotes {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    field.push(c);
                }
            } else {
                match c {
                    '"' => in_quotes = true,
                    ',' => row.push(std::mem::take(&mut field)),
                    '\n' => {
                        row.push(std::mem::take(&mut field));
                        rows.push(std::mem::take(&mut row));
                    }
                    '\r' => {} // CRLF line ending
                    _ => field.push(c),
                }
            }
        }
        if !field.is_empty() || !row.is_empty() {
            row.push(field);
            rows.push(row);
        }
        rows
    }

    #[test]
    fn csv_round_trips_through_an_rfc4180_parser() {
        // A real report parses back field-for-field…
        let report = SweepRunner::serial().run(&tiny_grid()).expect("valid grid");
        let rows = parse_csv(&report.to_csv());
        assert_eq!(rows.len(), 1 + report.cells.len());
        assert_eq!(rows[0][0], "mechanism");
        for (row, cell) in rows[1..].iter().zip(&report.cells) {
            assert_eq!(row.len(), 16, "constant arity");
            assert_eq!(row[0], cell.cell.mechanism.name());
            assert_eq!(row[2], cell.cell.profile.label());
            assert_eq!(row[3], cell.cell.seed.to_string());
            assert_eq!(row[15], cell.messages.to_string());
            assert_eq!(row[4].parse::<f64>().unwrap(), cell.facets.privacy);
        }
        // …and so does every kind of hostile field the escaper guards
        // against (commas, quotes, CR/LF), via the same helper the
        // emitter uses.
        let nasty = [
            "plain",
            "with,comma",
            "say \"hi\"",
            "multi\nline",
            "carriage\rreturn",
            "",
            "\"all,of\nit\"",
        ];
        let line: String = nasty
            .iter()
            .map(|f| crate::report::csv_field(f).into_owned())
            .collect::<Vec<_>>()
            .join(",");
        let parsed = parse_csv(&line);
        assert_eq!(parsed.len(), 1, "one logical record despite line breaks");
        assert_eq!(parsed[0], nasty);
    }

    #[test]
    fn meeting_filters_by_thresholds() {
        let report = SweepRunner::parallel()
            .run(&tiny_grid())
            .expect("valid grid");
        let none = FacetScores::new(1.0, 1.0, 1.0).expect("valid thresholds");
        assert_eq!(report.meeting(&none).count(), 0);
        let all = FacetScores::new(0.0, 0.0, 0.0).expect("valid thresholds");
        assert_eq!(report.meeting(&all).count(), report.cells.len());
    }
}
