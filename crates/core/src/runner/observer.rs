//! Per-round subscription hooks.
//!
//! Callers that need the time series behind Figure 1 used to mine
//! `ScenarioOutcome::samples` after the fact; an [`Observer`] instead
//! receives each [`RoundSample`] as the scenario produces it, so
//! streaming consumers (progress printers, live plots, convergence
//! detectors) need no post-hoc bookkeeping.

use crate::config::ScenarioConfig;
use crate::scenario::{RoundSample, ScenarioOutcome};
use std::collections::BTreeMap;

/// Subscriber to the lifecycle of one scenario run.
///
/// All hooks have empty defaults; implement only what you need.
pub trait Observer {
    /// Called once before the first round, with the validated
    /// configuration about to run.
    fn on_start(&mut self, _config: &ScenarioConfig) {}

    /// Called after every round with that round's measurements.
    fn on_round(&mut self, _sample: &RoundSample) {}

    /// Called once with the final outcome.
    fn on_finish(&mut self, _outcome: &ScenarioOutcome) {}
}

/// Records named per-round series as the run progresses.
///
/// ```
/// use tsn_core::runner::{ScenarioBuilder, SeriesRecorder};
///
/// let mut recorder = SeriesRecorder::new(["trust", "satisfaction"]);
/// ScenarioBuilder::small()
///     .run_observed(&mut [&mut recorder])
///     .expect("valid configuration");
/// assert_eq!(recorder.series("trust").expect("known name").len(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeriesRecorder {
    names: Vec<String>,
    series: BTreeMap<String, Vec<f64>>,
}

impl SeriesRecorder {
    /// Subscribes to the given series names (see
    /// [`RoundSample::SERIES_NAMES`] for the recognized set; unknown
    /// names record nothing).
    pub fn new(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let series = names.iter().map(|n| (n.clone(), Vec::new())).collect();
        SeriesRecorder { names, series }
    }

    /// Subscribes to every recognized series.
    pub fn all() -> Self {
        Self::new(RoundSample::SERIES_NAMES)
    }

    /// The recorded values of one subscribed series.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Iterates `(name, values)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.series.iter().map(|(n, v)| (n.as_str(), v.as_slice()))
    }
}

impl Observer for SeriesRecorder {
    fn on_round(&mut self, sample: &RoundSample) {
        for name in &self.names {
            if let (Some(value), Some(values)) = (sample.field(name), self.series.get_mut(name)) {
                values.push(value);
            }
        }
    }
}

/// Prints one progress line per `every` rounds to stderr — handy for
/// long CLI runs.
#[derive(Debug, Clone)]
pub struct ProgressPrinter {
    every: usize,
    rounds: usize,
}

impl ProgressPrinter {
    /// Prints every `every`-th round (clamped to at least 1).
    pub fn every(every: usize) -> Self {
        ProgressPrinter {
            every: every.max(1),
            rounds: 0,
        }
    }
}

impl Observer for ProgressPrinter {
    fn on_start(&mut self, config: &ScenarioConfig) {
        self.rounds = config.rounds;
    }

    fn on_round(&mut self, sample: &RoundSample) {
        if (sample.round + 1).is_multiple_of(self.every) || sample.round + 1 == self.rounds {
            eprintln!(
                "round {:>4}/{}: trust={:.3} satisfaction={:.3} respect={:.3}",
                sample.round + 1,
                self.rounds,
                sample.mean_trust,
                sample.mean_satisfaction,
                sample.respect_rate,
            );
        }
    }
}

/// Detects the round after which a series stopped moving more than
/// `tolerance` — a cheap convergence probe for choosing `rounds`.
#[derive(Debug, Clone)]
pub struct ConvergenceProbe {
    name: &'static str,
    tolerance: f64,
    last: Option<f64>,
    /// First round index after which every successive delta stayed
    /// within tolerance, if any.
    converged_at: Option<usize>,
}

impl ConvergenceProbe {
    /// Probes the named series (see [`RoundSample::SERIES_NAMES`]) with
    /// the given absolute tolerance.
    pub fn new(name: &'static str, tolerance: f64) -> Self {
        ConvergenceProbe {
            name,
            tolerance,
            last: None,
            converged_at: None,
        }
    }

    /// The round the series settled at, if it did.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }
}

impl Observer for ConvergenceProbe {
    fn on_round(&mut self, sample: &RoundSample) {
        let Some(value) = sample.field(self.name) else {
            return;
        };
        if let Some(last) = self.last {
            if (value - last).abs() <= self.tolerance {
                self.converged_at.get_or_insert(sample.round);
            } else {
                self.converged_at = None;
            }
        }
        self.last = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioBuilder;

    #[test]
    fn recorder_matches_post_hoc_samples() {
        let mut recorder = SeriesRecorder::new(["trust", "reports"]);
        let outcome = ScenarioBuilder::small()
            .seed(5)
            .run_observed(&mut [&mut recorder])
            .expect("valid");
        assert_eq!(
            recorder.series("trust").expect("subscribed"),
            outcome.series("trust").expect("known").as_slice()
        );
        assert_eq!(
            recorder.series("reports").expect("subscribed"),
            outcome.series("reports").expect("known").as_slice()
        );
        assert!(recorder.series("nope").is_none());
    }

    #[test]
    fn recorder_all_covers_every_series() {
        let mut recorder = SeriesRecorder::all();
        ScenarioBuilder::small()
            .seed(6)
            .run_observed(&mut [&mut recorder])
            .expect("valid");
        assert_eq!(recorder.iter().count(), RoundSample::SERIES_NAMES.len());
        for (_, values) in recorder.iter() {
            assert_eq!(values.len(), 10);
        }
    }

    #[test]
    fn multiple_observers_all_fire() {
        let mut a = SeriesRecorder::new(["trust"]);
        let mut b = SeriesRecorder::new(["satisfaction"]);
        let mut probe = ConvergenceProbe::new("respect", 1.0);
        ScenarioBuilder::small()
            .seed(7)
            .run_observed(&mut [&mut a, &mut b, &mut probe])
            .expect("valid");
        assert_eq!(a.series("trust").expect("subscribed").len(), 10);
        assert_eq!(b.series("satisfaction").expect("subscribed").len(), 10);
        // Tolerance 1.0 on a [0,1] series converges immediately.
        assert_eq!(probe.converged_at(), Some(1));
    }

    #[test]
    fn observed_run_equals_plain_run() {
        let plain = ScenarioBuilder::small().seed(8).run().expect("valid");
        let observed = ScenarioBuilder::small()
            .seed(8)
            .run_observed(&mut [&mut ProgressPrinter::every(1000)])
            .expect("valid");
        assert_eq!(plain.global_trust, observed.global_trust);
        assert_eq!(plain.messages, observed.messages);
    }
}
