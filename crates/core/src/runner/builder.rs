//! Fluent, validated construction of scenarios.

use crate::config::{PolicyProfile, ScenarioConfig};
use crate::runner::{Observer, ValidationError};
use crate::scenario::{Scenario, ScenarioOutcome, ROUND_DURATION};
use tsn_reputation::{
    AnonymizationConfig, DisclosurePolicy, MechanismKind, PopulationConfig, SelectionPolicy,
};
use tsn_simnet::{DynamicsPlan, MembershipConfig, SimDuration, SimTime};

/// The five rungs of the paper's disclosure ladder, as a type.
///
/// Each rung adds one field to what a feedback report discloses (the
/// x-axis of Figure 2, right): `Minimal` shares only the score,
/// `Full` additionally reveals outcome detail, timestamp, topic and the
/// rater's identity. The enum replaces the seed API's raw `usize`
/// level, making out-of-range levels unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DisclosureLevel {
    /// Level 0 — anonymous score-only reports.
    Minimal,
    /// Level 1 — adds the outcome detail.
    Outcome,
    /// Level 2 — adds the timestamp.
    Timestamped,
    /// Level 3 — adds the content topic.
    Topical,
    /// Level 4 — adds the rater's identity (full disclosure).
    Full,
}

impl DisclosureLevel {
    /// All levels in ladder order, for sweeps.
    pub const ALL: [DisclosureLevel; 5] = [
        DisclosureLevel::Minimal,
        DisclosureLevel::Outcome,
        DisclosureLevel::Timestamped,
        DisclosureLevel::Topical,
        DisclosureLevel::Full,
    ];

    /// The ladder index (`0..=4`) this level denotes.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The level for a raw ladder index, if in range.
    pub fn from_index(index: usize) -> Option<DisclosureLevel> {
        Self::ALL.get(index).copied()
    }

    /// Label for tables and CLI flags (`"level0"` … `"level4"`).
    pub fn label(self) -> &'static str {
        match self {
            DisclosureLevel::Minimal => "level0",
            DisclosureLevel::Outcome => "level1",
            DisclosureLevel::Timestamped => "level2",
            DisclosureLevel::Topical => "level3",
            DisclosureLevel::Full => "level4",
        }
    }

    /// The reputation-pipeline disclosure policy this level induces.
    pub fn policy(self) -> DisclosurePolicy {
        DisclosurePolicy::ladder(self.index())
    }

    /// Fraction of report fields this level exposes.
    pub fn exposure(self) -> f64 {
        self.policy().exposure()
    }
}

/// Fluent construction of [`ScenarioConfig`]s with typed knobs.
///
/// The builder is the single public path to a scenario configuration:
/// every knob has a dedicated setter, enum-valued knobs take enums
/// (e.g. [`DisclosureLevel`] instead of a raw `usize`), and
/// [`build`](ScenarioBuilder::build) runs full validation, returning a
/// [`ValidationError`] naming the offending field instead of silently
/// accepting a bad configuration.
///
/// ```
/// use tsn_core::runner::{DisclosureLevel, ScenarioBuilder};
/// use tsn_reputation::MechanismKind;
///
/// let outcome = ScenarioBuilder::small()
///     .mechanism(MechanismKind::Beta)
///     .disclosure(DisclosureLevel::Timestamped)
///     .seed(7)
///     .run()
///     .expect("valid configuration");
/// assert!((0.0..=1.0).contains(&outcome.global_trust));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    config: ScenarioConfig,
}

impl ScenarioBuilder {
    /// Starts from the default configuration (100 users, 30 rounds).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from the small, fast configuration used by tests and doc
    /// examples (40 users, 10 rounds).
    pub fn small() -> Self {
        ScenarioBuilder {
            config: ScenarioConfig::small(),
        }
    }

    /// Starts from the standard experiment-scale base shared by the
    /// figure-regeneration binaries: 100 users, 25 rounds, 25% malicious.
    pub fn experiment(seed: u64) -> Self {
        Self::new()
            .rounds(25)
            .population(PopulationConfig::with_malicious(0.25))
            .seed(seed)
    }

    /// Starts from an existing configuration (e.g. to derive variants).
    pub fn from_config(config: ScenarioConfig) -> Self {
        ScenarioBuilder { config }
    }

    /// Population size.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Rounds of the interaction loop.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.config.rounds = rounds;
        self
    }

    /// Interactions each user initiates per round.
    pub fn interactions_per_node(mut self, k: usize) -> Self {
        self.config.interactions_per_node = k;
        self
    }

    /// Reputation mechanism.
    pub fn mechanism(mut self, mechanism: MechanismKind) -> Self {
        self.config.mechanism = mechanism;
        self
    }

    /// Required feedback-disclosure level (typed ladder rung).
    pub fn disclosure(mut self, level: DisclosureLevel) -> Self {
        self.config.disclosure_level = level.index();
        self
    }

    /// Extra anonymization layer on the reputation mechanism.
    pub fn anonymization(mut self, anonymization: AnonymizationConfig) -> Self {
        self.config.anonymization = Some(anonymization);
        self
    }

    /// Partner-selection policy.
    pub fn selection(mut self, selection: SelectionPolicy) -> Self {
        self.config.selection = selection;
        self
    }

    /// Privacy-policy strictness profile of the population.
    pub fn policy_profile(mut self, profile: PolicyProfile) -> Self {
        self.config.policy_profile = profile;
        self
    }

    /// Full behaviour mix of the population.
    pub fn population(mut self, population: PopulationConfig) -> Self {
        self.config.population = population;
        self
    }

    /// Shorthand: a population with the given malicious fraction.
    pub fn malicious_fraction(self, fraction: f64) -> Self {
        self.population(PopulationConfig::with_malicious(fraction))
    }

    /// Mean privacy concern of users.
    pub fn privacy_concern(mut self, mean: f64) -> Self {
        self.config.privacy_concern_mean = mean;
        self
    }

    /// Whether users adapt their disclosure to their current trust (the
    /// Section-3 closed loop).
    pub fn adaptive_disclosure(mut self, adaptive: bool) -> Self {
        self.config.adaptive_disclosure = adaptive;
        self
    }

    /// Rounds between mechanism refreshes.
    pub fn refresh_every(mut self, rounds: usize) -> Self {
        self.config.refresh_every = rounds;
        self
    }

    /// Pre-trusted seed peers for EigenTrust.
    pub fn pretrusted(mut self, count: usize) -> Self {
        self.config.pretrusted = count;
        self
    }

    /// Watts–Strogatz graph parameters: mean degree (even) and rewiring
    /// probability.
    pub fn graph(mut self, degree: usize, beta: f64) -> Self {
        self.config.graph_degree = degree;
        self.config.graph_beta = beta;
        self
    }

    /// Probability a malicious recipient leaks granted data.
    pub fn leak_probability(mut self, p: f64) -> Self {
        self.config.leak_probability = p;
        self
    }

    /// Availability churn: per-round offline probability (the legacy
    /// i.i.d. model; see [`ScenarioBuilder::dynamics`] for sessions,
    /// whitewashing and partitions).
    pub fn churn(mut self, offline: f64) -> Self {
        self.config.churn_offline = offline;
        self
    }

    /// Attaches a full dynamics plan: session-based churn, whitewash
    /// re-joins (fresh identities with reset reputation) and scheduled
    /// partitions that confine partner selection group-wise while
    /// active. Mutually exclusive with [`ScenarioBuilder::churn`].
    ///
    /// Plan times are virtual: one scenario round spans
    /// [`ROUND_DURATION`] (one hour).
    pub fn dynamics(mut self, plan: DynamicsPlan) -> Self {
        self.config.dynamics = Some(plan);
        self
    }

    /// Attaches the peer-sampling membership overlay: bounded partial
    /// views refreshed by one deterministic push-pull shuffle per
    /// round, bootstrapped through the first `relays` nodes. Partner
    /// candidates then come from each consumer's local view instead of
    /// the global graph neighborhood. Leaving it off keeps the legacy
    /// global selection bit-identical.
    pub fn membership(mut self, config: MembershipConfig) -> Self {
        self.config.membership = Some(config);
        self
    }

    /// Preset: the membership overlay with its default parameters
    /// (view size 16, shuffle length 8, 3 relays).
    pub fn with_peer_sampling(self) -> Self {
        self.membership(MembershipConfig::default())
    }

    /// Preset: a flash crowd — 75 % of users start offline and flood in
    /// during the first round, then churn with ~8-round sessions.
    pub fn flash_crowd(self) -> Self {
        self.dynamics(DynamicsPlan::flash_crowd(
            ROUND_DURATION.mul_f64(8.0),
            ROUND_DURATION.mul_f64(0.5),
        ))
    }

    /// Preset: a clean two-way split active during rounds
    /// `start_round..end_round` (healing at the start of `end_round`).
    /// While split, users only interact within their own half.
    pub fn split_then_heal(self, start_round: usize, end_round: usize) -> Self {
        let at = |round: usize| SimTime::ZERO + ROUND_DURATION.mul_f64(round as f64);
        self.dynamics(DynamicsPlan::split_then_heal(
            at(start_round),
            at(end_round),
        ))
    }

    /// Preset: `groups` WAN regions. The regional latency map shapes
    /// the *transport* layer (protocol-level runs); the abstract
    /// scenario engine accepts and records the plan but its interaction
    /// loop is latency-free, so outcomes are unchanged — use the
    /// protocol crate's round driver to measure the latency cost.
    pub fn wan_regions(self, groups: usize) -> Self {
        self.dynamics(DynamicsPlan::wan_regions(
            groups,
            SimDuration::from_millis(10),
            SimDuration::from_millis(150),
        ))
    }

    /// Preset: a whitewash economy — ~3-round sessions, 80 % of
    /// re-joins under a fresh identity that sheds its reputation.
    pub fn whitewash_attack(self) -> Self {
        self.dynamics(DynamicsPlan::whitewash_attack(
            ROUND_DURATION.mul_f64(3.0),
            ROUND_DURATION,
        ))
    }

    /// Weight of the consumer role in overall satisfaction.
    pub fn consumer_role_weight(mut self, weight: f64) -> Self {
        self.config.consumer_role_weight = weight;
        self
    }

    /// Ballot-stuffing amplification factor (1 disables the attack).
    pub fn ballot_stuffing(mut self, factor: usize) -> Self {
        self.config.ballot_stuffing_factor = factor;
        self
    }

    /// Round-engine sharding: `1` (default) is the serial engine, `0`
    /// auto-shards at large node counts, `k ≥ 2` forces the sharded
    /// engine with `k` contiguous shards. The sharded outcome does not
    /// depend on `k` — the knob is purely about parallelism — but the
    /// sharded engine's synchronous round semantics differ from serial
    /// (see `ScenarioConfig::shards` and DESIGN.md §10).
    ///
    /// Sweep interplay: a [`SweepRunner`](crate::runner::SweepRunner)
    /// already parallelizes *across* cells; sharded cells inside a
    /// parallel sweep oversubscribe the machine. Shard the cells when a
    /// single scenario dominates, parallelize the sweep when many small
    /// cells do.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Preset: a mega-scale run — auto-sharded round engine and a
    /// bounded raw ledger audit trail (aggregate privacy measurements
    /// still cover the full history), which keep a 100k–1M node
    /// scenario inside memory and on every core.
    pub fn mega(nodes: usize) -> Self {
        Self::new()
            .nodes(nodes)
            .rounds(20)
            .shards(0)
            .ledger_raw_record_cap(Some(200_000))
    }

    /// Caps the raw disclosure-ledger records kept in memory (oldest
    /// evicted first); aggregate privacy measurements still cover the
    /// full history. `None` (the default) keeps every record.
    pub fn ledger_raw_record_cap(mut self, cap: Option<usize>) -> Self {
        self.config.ledger_raw_record_cap = cap;
        self
    }

    /// Random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The configuration as accumulated so far, without validation.
    /// Used by [`SweepGrid`](crate::runner::SweepGrid), which validates
    /// at execution time.
    pub(crate) fn into_config_unchecked(self) -> ScenarioConfig {
        self.config
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the first invalid knob.
    pub fn build(self) -> Result<ScenarioConfig, ValidationError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validates and assembles a ready-to-run [`Scenario`].
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the first invalid knob.
    pub fn build_scenario(self) -> Result<Scenario, ValidationError> {
        Scenario::new(self.build()?)
    }

    /// Builds and runs the scenario to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the first invalid knob.
    pub fn run(self) -> Result<ScenarioOutcome, ValidationError> {
        Ok(self.build_scenario()?.run())
    }

    /// Builds and runs the scenario with per-round [`Observer`] hooks.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] naming the first invalid knob.
    pub fn run_observed(
        self,
        observers: &mut [&mut dyn Observer],
    ) -> Result<ScenarioOutcome, ValidationError> {
        Ok(self.build_scenario()?.run_observed(observers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_map_to_ladder_indices() {
        for (i, level) in DisclosureLevel::ALL.into_iter().enumerate() {
            assert_eq!(level.index(), i);
            assert_eq!(DisclosureLevel::from_index(i), Some(level));
            assert_eq!(level.policy(), DisclosurePolicy::ladder(i));
        }
        assert_eq!(DisclosureLevel::from_index(5), None);
        assert_eq!(DisclosureLevel::Minimal.label(), "level0");
        assert_eq!(DisclosureLevel::Full.label(), "level4");
    }

    #[test]
    fn exposure_is_monotone() {
        let exposures: Vec<f64> = DisclosureLevel::ALL.iter().map(|l| l.exposure()).collect();
        assert!(exposures.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn builder_produces_the_config_it_was_given() {
        let config = ScenarioBuilder::new()
            .nodes(48)
            .rounds(12)
            .mechanism(MechanismKind::PowerTrust)
            .disclosure(DisclosureLevel::Topical)
            .policy_profile(PolicyProfile::Strict)
            .malicious_fraction(0.3)
            .churn(0.1)
            .adaptive_disclosure(true)
            .graph(6, 0.2)
            .seed(99)
            .build()
            .expect("valid");
        assert_eq!(config.nodes, 48);
        assert_eq!(config.rounds, 12);
        assert_eq!(config.mechanism, MechanismKind::PowerTrust);
        assert_eq!(config.disclosure_level, 3);
        assert_eq!(config.policy_profile, PolicyProfile::Strict);
        assert_eq!(config.churn_offline, 0.1);
        assert!(config.adaptive_disclosure);
        assert_eq!(config.graph_degree, 6);
        assert_eq!(config.seed, 99);
    }

    #[test]
    fn builder_rejects_bad_knobs_with_the_field_name() {
        let err = ScenarioBuilder::new().nodes(2).build().unwrap_err();
        assert_eq!(err.field, "nodes");
        let err = ScenarioBuilder::new().churn(1.5).build().unwrap_err();
        assert_eq!(err.field, "churn_offline");
        let err = ScenarioBuilder::new().graph(7, 0.1).build().unwrap_err();
        assert_eq!(err.field, "graph_degree");
        let err = ScenarioBuilder::new()
            .leak_probability(-0.2)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "leak_probability");
        let err = ScenarioBuilder::new()
            .malicious_fraction(2.0)
            .build()
            .unwrap_err();
        assert_eq!(err.field, "population");
    }

    #[test]
    fn presets_are_valid() {
        assert!(ScenarioBuilder::new().build().is_ok());
        assert!(ScenarioBuilder::small().build().is_ok());
        let exp = ScenarioBuilder::experiment(7).build().unwrap();
        assert_eq!(exp.rounds, 25);
        assert_eq!(exp.seed, 7);
    }

    #[test]
    fn dynamics_presets_build_valid_plans() {
        for builder in [
            ScenarioBuilder::small().flash_crowd(),
            ScenarioBuilder::small().split_then_heal(2, 6),
            ScenarioBuilder::small().wan_regions(3),
            ScenarioBuilder::small().whitewash_attack(),
        ] {
            let config = builder.build().expect("preset is valid");
            assert!(config.dynamics.is_some());
        }
        let split = ScenarioBuilder::small()
            .split_then_heal(2, 6)
            .build()
            .unwrap();
        let window = &split.dynamics.unwrap().partitions[0];
        assert_eq!(window.start, SimTime::from_secs(2 * 3600));
        assert_eq!(window.end, SimTime::from_secs(6 * 3600));
    }

    #[test]
    fn dynamics_and_coin_flip_churn_are_mutually_exclusive() {
        let err = ScenarioBuilder::small()
            .churn(0.2)
            .whitewash_attack()
            .build()
            .unwrap_err();
        assert_eq!(err.field, "dynamics");
        // An invalid plan is rejected with the field name too.
        let err = ScenarioBuilder::small()
            .dynamics(DynamicsPlan {
                initial_offline: 0.5,
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err.field, "dynamics");
    }

    #[test]
    fn run_executes_end_to_end() {
        let outcome = ScenarioBuilder::small().seed(3).run().expect("valid");
        assert_eq!(outcome.samples.len(), 10);
        assert!((0.0..=1.0).contains(&outcome.global_trust));
    }
}
