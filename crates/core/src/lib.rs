//! # tsn-core — the three-facet trust model
//!
//! The primary contribution of *"Trust your Social Network According to
//! Satisfaction, Reputation and Privacy"* (Busnel, Serrano-Alvarado,
//! Lamarre, 2010), built on the substrates of the sibling crates:
//!
//! * [`facets`] — the three facet scores in `[0, 1]`: privacy guarantees,
//!   reputation power and global satisfaction, each computed from
//!   *measured* quantities (disclosure exposure, PP-respect rate, OECD
//!   audit; mechanism consistency/reliability/efficiency; long-run
//!   participant satisfaction with fairness discount);
//! * [`trust`] — the **generic metric** the paper calls for (Section 4):
//!   a configurable aggregation of the facets into per-user and global
//!   *trust toward the system*;
//! * [`dynamics`] — Section 3's interaction loops as a coupled
//!   discrete-time system, used to verify the sign structure of Figure 1
//!   analytically;
//! * [`scenario`] — the end-to-end decentralized social-network
//!   simulation that wires every substrate together and produces the
//!   measured facets (and their per-round time series);
//! * [`optimizer`] — the paper's "main aim": searching system settings to
//!   maximize trust under applicative constraints, including the Area-A
//!   region extraction of Figure 2 (left);
//! * [`report`] — experiment-row structures shared by the `tsn-bench`
//!   binaries and EXPERIMENTS.md.
//!
//! ## Quick example
//!
//! ```
//! use tsn_core::{ScenarioConfig, Scenario};
//!
//! let mut config = ScenarioConfig::default();
//! config.nodes = 40;
//! config.rounds = 10;
//! let outcome = Scenario::new(config).expect("valid config").run();
//! assert!(outcome.facets.privacy >= 0.0 && outcome.facets.privacy <= 1.0);
//! assert!(outcome.global_trust >= 0.0 && outcome.global_trust <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dynamics;
pub mod facets;
pub mod json;
pub mod optimizer;
pub mod prelude;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod trust;

pub use config::{PolicyProfile, ScenarioConfig};
pub use dynamics::{DynamicsConfig, DynamicsState, InteractionDynamics};
pub use facets::{FacetScores, FacetWeights};
pub use optimizer::{AreaReport, ConfigPoint, Optimizer, OptimizerResult, SweepOutcome};
pub use report::{ExperimentRow, ExperimentTable};
pub use runner::{
    DisclosureLevel, Observer, ScenarioBuilder, SweepGrid, SweepReport, SweepRunner,
    ValidationError,
};
pub use scenario::{RoundSample, Scenario, ScenarioOutcome, ROUND_DURATION};
pub use trust::{Aggregator, TrustMetric, TrustReport};
pub use tsn_simnet::{DynamicsPlan, NodeId, PartitionWindow, RegionPlan};
