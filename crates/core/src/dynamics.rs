//! Section 3's concept interactions as a coupled discrete-time system.
//!
//! The paper lists (Section 3) complementary and antagonistic influences
//! between trust `T`, satisfaction `S`, reputation efficiency `R`,
//! disclosure `D` and privacy respect `P`. This module writes them as
//! difference equations so their sign structure and fixed points can be
//! checked *analytically*, complementing the simulation evidence:
//!
//! ```text
//! S ← S + η·( base_quality·R + privacy_term·P − S )   (E3, E5c)
//! T ← T + η·( κ_S·S + κ_R·R_trusty − T )             (E1, E2, E4)
//! D ← D + η·( T − D )                                 (E5b: trust drives disclosure)
//! R ← R + η·( power(D) − R )                          (E5a: disclosure drives efficiency)
//! P ← P + η·( guarantees(D) − P )                     (privacy erodes with disclosure)
//! ```
//!
//! `R_trusty` is where the paper's fourth bullet lives: an *efficient*
//! mechanism that concludes "the majority of users are untrustworthy"
//! still leaves users distrusting the **system**, while they keep
//! contributing feedback. We model it as `R · honest_fraction`: mechanism
//! power only builds trust to the extent the verdict about the population
//! is positive.

/// Parameters of the coupled system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsConfig {
    /// Adaptation rate `η` in `(0, 1]`.
    pub eta: f64,
    /// Ground-truth fraction of honest participants — the "reality" the
    /// reputation verdict reflects when the mechanism is efficient.
    pub honest_fraction: f64,
    /// Base interaction quality delivered by honest partners.
    pub base_quality: f64,
    /// Weight of satisfaction vs reputation verdict in trust formation.
    pub kappa_s: f64,
    /// Weight of the reputation verdict in trust formation.
    pub kappa_r: f64,
    /// How strongly disclosure erodes privacy guarantees.
    pub privacy_erosion: f64,
    /// Mechanism power at full disclosure (power scales with `D`).
    pub max_power: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            eta: 0.2,
            honest_fraction: 0.8,
            base_quality: 0.9,
            kappa_s: 0.6,
            kappa_r: 0.4,
            privacy_erosion: 0.5,
            max_power: 0.9,
        }
    }
}

impl DynamicsConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.eta > 0.0 && self.eta <= 1.0) {
            return Err("eta must be in (0,1]".into());
        }
        for (name, v) in [
            ("honest_fraction", self.honest_fraction),
            ("base_quality", self.base_quality),
            ("privacy_erosion", self.privacy_erosion),
            ("max_power", self.max_power),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1]"));
            }
        }
        if self.kappa_s < 0.0 || self.kappa_r < 0.0 || self.kappa_s + self.kappa_r <= 0.0 {
            return Err("kappa weights must be non-negative and not both zero".into());
        }
        Ok(())
    }
}

/// The five coupled state variables, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsState {
    /// Trust toward the system.
    pub trust: f64,
    /// User satisfaction.
    pub satisfaction: f64,
    /// Reputation-mechanism efficiency (power).
    pub reputation_efficiency: f64,
    /// Information disclosure level.
    pub disclosure: f64,
    /// Privacy guarantees experienced.
    pub privacy: f64,
}

impl DynamicsState {
    /// A neutral starting point.
    pub fn neutral() -> Self {
        DynamicsState {
            trust: 0.5,
            satisfaction: 0.5,
            reputation_efficiency: 0.5,
            disclosure: 0.5,
            privacy: 0.5,
        }
    }

    fn clamp(&mut self) {
        self.trust = self.trust.clamp(0.0, 1.0);
        self.satisfaction = self.satisfaction.clamp(0.0, 1.0);
        self.reputation_efficiency = self.reputation_efficiency.clamp(0.0, 1.0);
        self.disclosure = self.disclosure.clamp(0.0, 1.0);
        self.privacy = self.privacy.clamp(0.0, 1.0);
    }

    /// Max absolute difference with another state.
    pub fn distance(&self, other: &DynamicsState) -> f64 {
        [
            (self.trust - other.trust).abs(),
            (self.satisfaction - other.satisfaction).abs(),
            (self.reputation_efficiency - other.reputation_efficiency).abs(),
            (self.disclosure - other.disclosure).abs(),
            (self.privacy - other.privacy).abs(),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// The coupled interaction dynamics.
///
/// ```
/// use tsn_core::dynamics::{DynamicsState, InteractionDynamics};
///
/// let dynamics = InteractionDynamics::default();
/// let (fixed_point, steps) = dynamics.fixed_point(DynamicsState::neutral(), 1e-9, 10_000);
/// assert!(steps < 10_000, "the default system converges");
/// assert!(fixed_point.trust > 0.0 && fixed_point.trust < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct InteractionDynamics {
    config: DynamicsConfig,
}

impl InteractionDynamics {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate first to handle
    /// errors.
    pub fn new(config: DynamicsConfig) -> Self {
        if let Err(e) = config.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a config that validate() rejects; fallible callers validate first")
            panic!("invalid dynamics config: {e}");
        }
        InteractionDynamics { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DynamicsConfig {
        &self.config
    }

    /// One synchronous update step.
    pub fn step(&self, state: &DynamicsState) -> DynamicsState {
        let c = &self.config;
        let power = c.max_power * state.disclosure;
        let guarantees = 1.0 - c.privacy_erosion * state.disclosure;
        // The verdict an efficient mechanism renders about the population:
        let verdict = state.reputation_efficiency * c.honest_fraction
            + (1.0 - state.reputation_efficiency) * 0.5;
        // Interaction quality improves with mechanism efficiency (better
        // partner selection): from 60 % of the honest ceiling (random
        // choice) to 100 % (perfect avoidance of bad partners).
        let quality =
            c.base_quality * c.honest_fraction * (0.6 + 0.4 * state.reputation_efficiency);
        let target_satisfaction = 0.75 * quality + 0.25 * state.privacy;
        let target_trust =
            (c.kappa_s * state.satisfaction + c.kappa_r * verdict) / (c.kappa_s + c.kappa_r);
        let mut next = DynamicsState {
            satisfaction: state.satisfaction + c.eta * (target_satisfaction - state.satisfaction),
            trust: state.trust + c.eta * (target_trust - state.trust),
            disclosure: state.disclosure + c.eta * (state.trust - state.disclosure),
            reputation_efficiency: state.reputation_efficiency
                + c.eta * (power - state.reputation_efficiency),
            privacy: state.privacy + c.eta * (guarantees - state.privacy),
        };
        next.clamp();
        next
    }

    /// Iterates until the state moves less than `epsilon` or `max_steps`
    /// is reached. Returns the final state and the steps taken.
    pub fn fixed_point(
        &self,
        mut state: DynamicsState,
        epsilon: f64,
        max_steps: usize,
    ) -> (DynamicsState, usize) {
        for step in 0..max_steps {
            let next = self.step(&state);
            let moved = next.distance(&state);
            state = next;
            if moved < epsilon {
                return (state, step + 1);
            }
        }
        (state, max_steps)
    }

    /// Empirical sign of the coupling `d(target)/d(source)` at a state:
    /// perturbs `source` by `+δ` and reports the change in `target` after
    /// one step. Used to verify Figure 1's edge directions.
    pub fn coupling_sign(&self, state: &DynamicsState, source: &str, target: &str) -> f64 {
        let delta = 0.05;
        let mut perturbed = *state;
        match source {
            "trust" => perturbed.trust = (perturbed.trust + delta).min(1.0),
            "satisfaction" => perturbed.satisfaction = (perturbed.satisfaction + delta).min(1.0),
            "reputation" => {
                perturbed.reputation_efficiency = (perturbed.reputation_efficiency + delta).min(1.0)
            }
            "disclosure" => perturbed.disclosure = (perturbed.disclosure + delta).min(1.0),
            "privacy" => perturbed.privacy = (perturbed.privacy + delta).min(1.0),
            // tsn-lint: allow(no-unwrap, "figure-verification probe: variable names are compile-time literals at every call site")
            other => panic!("unknown variable {other}"),
        }
        let base_next = self.step(state);
        let pert_next = self.step(&perturbed);
        let read = |s: &DynamicsState| match target {
            "trust" => s.trust,
            "satisfaction" => s.satisfaction,
            "reputation" => s.reputation_efficiency,
            "disclosure" => s.disclosure,
            "privacy" => s.privacy,
            // tsn-lint: allow(no-unwrap, "figure-verification probe: variable names are compile-time literals at every call site")
            other => panic!("unknown variable {other}"),
        };
        read(&pert_next) - read(&base_next)
    }
}

impl Default for InteractionDynamics {
    fn default() -> Self {
        InteractionDynamics::new(DynamicsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_a_fixed_point() {
        let d = InteractionDynamics::default();
        let (state, steps) = d.fixed_point(DynamicsState::neutral(), 1e-9, 10_000);
        assert!(steps < 10_000, "should converge, took {steps}");
        // Verify it is a fixed point.
        let next = d.step(&state);
        assert!(next.distance(&state) < 1e-8);
    }

    #[test]
    fn fixed_point_is_interior_for_defaults() {
        let d = InteractionDynamics::default();
        let (s, _) = d.fixed_point(DynamicsState::neutral(), 1e-10, 10_000);
        for v in [
            s.trust,
            s.satisfaction,
            s.reputation_efficiency,
            s.disclosure,
            s.privacy,
        ] {
            assert!(v > 0.05 && v < 1.0, "interior fixed point, got {s:?}");
        }
    }

    #[test]
    fn honest_world_earns_more_trust_than_hostile_world() {
        let honest = InteractionDynamics::new(DynamicsConfig {
            honest_fraction: 0.95,
            ..Default::default()
        });
        let hostile = InteractionDynamics::new(DynamicsConfig {
            honest_fraction: 0.2,
            ..Default::default()
        });
        let (s1, _) = honest.fixed_point(DynamicsState::neutral(), 1e-9, 10_000);
        let (s2, _) = hostile.fixed_point(DynamicsState::neutral(), 1e-9, 10_000);
        assert!(s1.trust > s2.trust + 0.1, "{} vs {}", s1.trust, s2.trust);
    }

    #[test]
    fn coupling_signs_match_figure_1() {
        let d = InteractionDynamics::default();
        let s = DynamicsState::neutral();
        // E1: satisfaction → trust is positive.
        assert!(d.coupling_sign(&s, "satisfaction", "trust") > 0.0);
        // E2: reputation efficiency → trust is positive (honest majority).
        assert!(d.coupling_sign(&s, "reputation", "trust") > 0.0);
        // E3: reputation efficiency → satisfaction is positive.
        assert!(d.coupling_sign(&s, "reputation", "satisfaction") > 0.0);
        // E5a: disclosure → reputation efficiency is positive.
        assert!(d.coupling_sign(&s, "disclosure", "reputation") > 0.0);
        // E5b: trust → disclosure is positive.
        assert!(d.coupling_sign(&s, "trust", "disclosure") > 0.0);
        // Privacy erosion: disclosure → privacy is negative.
        assert!(d.coupling_sign(&s, "disclosure", "privacy") < 0.0);
        // E5c: privacy → satisfaction is positive.
        assert!(d.coupling_sign(&s, "privacy", "satisfaction") > 0.0);
    }

    #[test]
    fn e4_efficient_mechanism_hostile_majority_low_trust() {
        // The paper's fourth bullet: efficiency high, majority untrustworthy
        // → users do not trust the system even though feedback continues.
        let hostile = InteractionDynamics::new(DynamicsConfig {
            honest_fraction: 0.2,
            ..Default::default()
        });
        let s = DynamicsState {
            reputation_efficiency: 0.95,
            ..DynamicsState::neutral()
        };
        // With high efficiency, reputation → trust turns NEGATIVE: the
        // verdict (0.2-honest world) is worse than agnosticism.
        assert!(hostile.coupling_sign(&s, "reputation", "trust") < 0.0);
        let (fp, _) = hostile.fixed_point(s, 1e-9, 10_000);
        assert!(
            fp.trust < 0.5,
            "hostile verdict suppresses trust: {}",
            fp.trust
        );
    }

    #[test]
    fn trust_satisfaction_loop_e1_is_mutually_reinforcing() {
        // Raising satisfaction raises trust (one step), and raising trust
        // raises disclosure → efficiency → satisfaction (three steps).
        let d = InteractionDynamics::default();
        let s = DynamicsState::neutral();
        assert!(d.coupling_sign(&s, "satisfaction", "trust") > 0.0);
        let mut boosted = s;
        boosted.trust += 0.2;
        let mut base = s;
        for _ in 0..5 {
            boosted = d.step(&boosted);
            base = d.step(&base);
        }
        assert!(
            boosted.satisfaction > base.satisfaction,
            "trust feeds back into satisfaction"
        );
    }

    #[test]
    fn config_validation() {
        assert!(DynamicsConfig {
            eta: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DynamicsConfig {
            honest_fraction: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DynamicsConfig {
            kappa_s: 0.0,
            kappa_r: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DynamicsConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_coupling_variable_panics() {
        let d = InteractionDynamics::default();
        let _ = d.coupling_sign(&DynamicsState::neutral(), "bogus", "trust");
    }

    #[test]
    fn states_stay_in_bounds() {
        let d = InteractionDynamics::new(DynamicsConfig {
            eta: 1.0,
            ..Default::default()
        });
        let mut s = DynamicsState {
            trust: 1.0,
            satisfaction: 0.0,
            reputation_efficiency: 1.0,
            disclosure: 0.0,
            privacy: 1.0,
        };
        for _ in 0..100 {
            s = d.step(&s);
            for v in [
                s.trust,
                s.satisfaction,
                s.reputation_efficiency,
                s.disclosure,
                s.privacy,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
