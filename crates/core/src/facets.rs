//! The three facet scores and their weights.

use std::fmt;

/// The measured facet scores, each in `[0, 1]`.
///
/// * `privacy` — "satisfaction in terms of privacy guarantees": weighted
///   mix of non-disclosure, PP-respect rate and the OECD audit
///   (computed by [`tsn_privacy::PrivacyFacetInputs`]);
/// * `reputation` — "satisfaction of the reputation mechanism in terms of
///   power": consistency with reality, reliability, efficiency
///   (computed by [`tsn_reputation::accuracy::evaluate`]);
/// * `satisfaction` — "global users' satisfaction": fairness-discounted
///   mean of long-run participant satisfaction
///   (computed by [`tsn_satisfaction::GlobalSatisfaction`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacetScores {
    /// Privacy facet.
    pub privacy: f64,
    /// Reputation facet.
    pub reputation: f64,
    /// Satisfaction facet.
    pub satisfaction: f64,
}

impl FacetScores {
    /// Creates validated facet scores.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range facet.
    pub fn new(privacy: f64, reputation: f64, satisfaction: f64) -> Result<Self, String> {
        let scores = FacetScores {
            privacy,
            reputation,
            satisfaction,
        };
        scores.validate()?;
        Ok(scores)
    }

    /// Validates that every facet is in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range facet.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in self.iter() {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("facet {name} must be in [0,1], got {v}"));
            }
        }
        Ok(())
    }

    /// Iterates `(name, value)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> {
        [
            ("privacy", self.privacy),
            ("reputation", self.reputation),
            ("satisfaction", self.satisfaction),
        ]
        .into_iter()
    }

    /// The lowest facet — the binding constraint on trust under
    /// complementary aggregation.
    pub fn weakest(&self) -> (&'static str, f64) {
        self.iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // tsn-lint: allow(no-unwrap, "iter() yields exactly the three facets, so min_by is Some")
            .expect("three facets exist")
    }

    /// Whether each facet clears its threshold — the membership test of
    /// the paper's Figure 2 (left) Venn regions.
    pub fn meets(&self, thresholds: &FacetScores) -> bool {
        self.privacy >= thresholds.privacy
            && self.reputation >= thresholds.reputation
            && self.satisfaction >= thresholds.satisfaction
    }
}

impl fmt::Display for FacetScores {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy={:.3} reputation={:.3} satisfaction={:.3}",
            self.privacy, self.reputation, self.satisfaction
        )
    }
}

/// Relative importance of the facets in the combined trust metric.
///
/// The paper leaves the weighting to the "applicative context"; weights
/// here are free non-negative reals, normalized at use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacetWeights {
    /// Weight of the privacy facet.
    pub privacy: f64,
    /// Weight of the reputation facet.
    pub reputation: f64,
    /// Weight of the satisfaction facet.
    pub satisfaction: f64,
}

impl Default for FacetWeights {
    /// Equal weights: the paper presents the facets as co-equal.
    fn default() -> Self {
        FacetWeights {
            privacy: 1.0,
            reputation: 1.0,
            satisfaction: 1.0,
        }
    }
}

impl FacetWeights {
    /// Validates weights: finite, non-negative, not all zero.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("privacy", self.privacy),
            ("reputation", self.reputation),
            ("satisfaction", self.satisfaction),
        ] {
            if !(w.is_finite() && w >= 0.0) {
                return Err(format!("weight {name} must be finite and non-negative"));
            }
        }
        if self.total() <= 0.0 {
            return Err("at least one weight must be positive".into());
        }
        Ok(())
    }

    /// Sum of weights.
    pub fn total(&self) -> f64 {
        self.privacy + self.reputation + self.satisfaction
    }

    /// Normalized copy summing to 1.
    ///
    /// # Panics
    ///
    /// Panics if the weights are invalid.
    pub fn normalized(&self) -> FacetWeights {
        if let Err(e) = self.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on weights that validate() rejects; fallible callers validate first")
            panic!("invalid facet weights: {e}");
        }
        let t = self.total();
        FacetWeights {
            privacy: self.privacy / t,
            reputation: self.reputation / t,
            satisfaction: self.satisfaction / t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_ranges() {
        assert!(FacetScores::new(0.5, 0.5, 0.5).is_ok());
        let e = FacetScores::new(1.5, 0.5, 0.5).unwrap_err();
        assert!(e.contains("privacy"));
        let e = FacetScores::new(0.5, -0.1, 0.5).unwrap_err();
        assert!(e.contains("reputation"));
    }

    #[test]
    fn weakest_finds_binding_facet() {
        let f = FacetScores::new(0.9, 0.2, 0.7).unwrap();
        assert_eq!(f.weakest(), ("reputation", 0.2));
    }

    #[test]
    fn meets_is_conjunctive() {
        let f = FacetScores::new(0.8, 0.7, 0.6).unwrap();
        let t = FacetScores::new(0.5, 0.5, 0.5).unwrap();
        assert!(f.meets(&t));
        let high = FacetScores::new(0.5, 0.5, 0.65).unwrap();
        assert!(!f.meets(&FacetScores::new(0.9, 0.0, 0.0).unwrap()));
        assert!(high.meets(&FacetScores::new(0.5, 0.5, 0.6).unwrap()));
    }

    #[test]
    fn weights_normalize() {
        let w = FacetWeights {
            privacy: 2.0,
            reputation: 1.0,
            satisfaction: 1.0,
        }
        .normalized();
        assert!((w.privacy - 0.5).abs() < 1e-12);
        assert!((w.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_validation() {
        assert!(FacetWeights {
            privacy: 0.0,
            reputation: 0.0,
            satisfaction: 0.0
        }
        .validate()
        .is_err());
        assert!(FacetWeights {
            privacy: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FacetWeights::default().validate().is_ok());
    }

    #[test]
    fn display_is_compact() {
        let f = FacetScores::new(0.5, 0.25, 1.0).unwrap();
        assert_eq!(
            f.to_string(),
            "privacy=0.500 reputation=0.250 satisfaction=1.000"
        );
    }

    #[test]
    fn iter_order_is_stable() {
        let f = FacetScores::new(0.1, 0.2, 0.3).unwrap();
        let names: Vec<&str> = f.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["privacy", "reputation", "satisfaction"]);
    }
}
