//! # tsn-satisfaction — the participant satisfaction model
//!
//! Implements the satisfaction facet of the `tsn` reproduction, following
//! the model the paper adopts (Section 2.1): the adequacy / satisfaction /
//! allocation-satisfaction framework of Quiané-Ruiz, Lamarre & Valduriez
//! ("A Self-Adaptable Query Allocation Framework for Distributed
//! Information Systems", VLDB J. 18(3), 2009 — the paper's ref \[17\]).
//!
//! The key ideas, as the paper summarizes them:
//!
//! * satisfaction is a **long-run** notion: "a participant is satisfied by
//!   the system process if the latter meets its intentions in the long
//!   term". [`SatisfactionTracker`] realizes this as an exponentially
//!   weighted average of per-interaction [`adequacy`], so one bad
//!   interaction does not destroy satisfaction ("a data provider can be
//!   satisfied even if sometimes the system imposes queries he does not
//!   intend to treat");
//! * **adequacy** measures how well a single interaction matches the
//!   participant's [`intention`]s (preferred partners, expected quality,
//!   privacy respected);
//! * **allocation satisfaction** tracks whether the *allocation itself*
//!   (which partner the system chose) followed the participant's
//!   intentions, independent of the outcome.
//!
//! [`aggregate`] turns per-participant satisfaction into the global
//! satisfaction axis of the paper's Figure 2, with fairness measures
//! (Jain index, Gini) so "global" is not just a mean hiding misery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adequacy;
pub mod aggregate;
pub mod intention;
pub mod satisfaction;

pub use adequacy::{AdequacyModel, InteractionAspects};
pub use aggregate::GlobalSatisfaction;
pub use intention::{ConsumerIntentions, ProviderIntentions};
pub use satisfaction::{AllocationTracker, SatisfactionTracker};
pub use tsn_simnet::NodeId;
