//! Adequacy: how well one interaction matched a participant's intentions.
//!
//! Ref \[17\] defines adequacy as the instantaneous match between what the
//! system did and what the participant intended; satisfaction then
//! averages adequacy over the long run. Our adequacy combines the three
//! aspects the paper's three facets make observable per interaction.

use crate::intention::ConsumerIntentions;
use tsn_simnet::NodeId;

/// The observable aspects of one finished interaction, from the
/// consumer's side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractionAspects {
    /// The provider the system allocated.
    pub provider: NodeId,
    /// Outcome quality in `\[0, 1\]` (0 = failure).
    pub outcome_quality: f64,
    /// Whether the consumer's privacy policy was respected during the
    /// interaction (data flows stayed compliant).
    pub privacy_respected: bool,
}

/// Weights for combining the aspects into adequacy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdequacyModel {
    /// Weight of outcome quality relative to expectation.
    pub outcome_weight: f64,
    /// Weight of the allocation matching preferred providers.
    pub preference_weight: f64,
    /// Base weight of privacy respect (scaled further by the consumer's
    /// own `privacy_concern`).
    pub privacy_weight: f64,
}

impl Default for AdequacyModel {
    fn default() -> Self {
        AdequacyModel {
            outcome_weight: 0.5,
            preference_weight: 0.25,
            privacy_weight: 0.25,
        }
    }
}

impl AdequacyModel {
    /// Validates weights.
    ///
    /// # Errors
    ///
    /// Returns a message when weights are negative or all zero.
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("outcome_weight", self.outcome_weight),
            ("preference_weight", self.preference_weight),
            ("privacy_weight", self.privacy_weight),
        ] {
            if !(w.is_finite() && w >= 0.0) {
                return Err(format!("{name} must be finite and non-negative"));
            }
        }
        if self.outcome_weight + self.preference_weight + self.privacy_weight <= 0.0 {
            return Err("at least one weight must be positive".into());
        }
        Ok(())
    }

    /// Adequacy of one interaction to `intentions`, in `\[0, 1\]`.
    ///
    /// * Outcome: quality relative to the consumer's expectation (meeting
    ///   the expectation scores 1; a shortfall scores proportionally).
    /// * Preference: 1 if the provider was intended, a small floor if
    ///   imposed.
    /// * Privacy: 1 if respected, else 0 — weighted by how much this
    ///   consumer cares (`privacy_concern`): an indifferent user loses
    ///   nothing, a concerned user loses the full privacy share. This is
    ///   the paper's point that privacy preferences are individual.
    ///
    /// # Panics
    ///
    /// Panics if the model is invalid; call [`AdequacyModel::validate`]
    /// first to handle errors.
    pub fn adequacy(&self, intentions: &ConsumerIntentions, aspects: &InteractionAspects) -> f64 {
        if let Err(e) = self.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a model that validate() rejects; fallible callers validate first")
            panic!("invalid adequacy model: {e}");
        }
        let outcome_term = if intentions.quality_expectation <= 0.0 {
            1.0
        } else {
            (aspects.outcome_quality / intentions.quality_expectation).clamp(0.0, 1.0)
        };
        let preference_term = intentions.preference_match(aspects.provider);
        // Concern scales the *effective weight* of privacy, not its value:
        let effective_privacy_weight = self.privacy_weight * intentions.privacy_concern;
        let privacy_term = if aspects.privacy_respected { 1.0 } else { 0.0 };
        let total = self.outcome_weight + self.preference_weight + effective_privacy_weight;
        (self.outcome_weight * outcome_term
            + self.preference_weight * preference_term
            + effective_privacy_weight * privacy_term)
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aspects(quality: f64, privacy: bool) -> InteractionAspects {
        InteractionAspects {
            provider: NodeId(1),
            outcome_quality: quality,
            privacy_respected: privacy,
        }
    }

    #[test]
    fn perfect_interaction_scores_one() {
        let model = AdequacyModel::default();
        let intentions = ConsumerIntentions::default();
        let a = model.adequacy(&intentions, &aspects(1.0, true));
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failure_scores_low() {
        let model = AdequacyModel::default();
        let intentions = ConsumerIntentions::default();
        let a = model.adequacy(&intentions, &aspects(0.0, true));
        assert!(a < 0.6, "failed outcome should hurt, got {a}");
    }

    #[test]
    fn meeting_expectation_is_enough() {
        let model = AdequacyModel::default();
        let demanding = ConsumerIntentions::new([], 0.9, 0.5).unwrap();
        let modest = ConsumerIntentions::new([], 0.3, 0.5).unwrap();
        // Quality 0.5 fully satisfies the modest consumer's outcome term,
        // only partially the demanding one's.
        let a_demanding = model.adequacy(&demanding, &aspects(0.5, true));
        let a_modest = model.adequacy(&modest, &aspects(0.5, true));
        assert!(a_modest > a_demanding);
        assert!((a_modest - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unintended_provider_reduces_adequacy() {
        let model = AdequacyModel::default();
        let picky = ConsumerIntentions::new([NodeId(7)], 0.5, 0.5).unwrap();
        let intended = InteractionAspects {
            provider: NodeId(7),
            outcome_quality: 0.8,
            privacy_respected: true,
        };
        let imposed = InteractionAspects {
            provider: NodeId(3),
            outcome_quality: 0.8,
            privacy_respected: true,
        };
        assert!(model.adequacy(&picky, &intended) > model.adequacy(&picky, &imposed));
    }

    #[test]
    fn privacy_violation_hurts_concerned_users_more() {
        let model = AdequacyModel::default();
        let concerned = ConsumerIntentions::new([], 0.5, 1.0).unwrap();
        let indifferent = ConsumerIntentions::new([], 0.5, 0.0).unwrap();
        let ok = aspects(0.8, true);
        let violated = aspects(0.8, false);
        let concerned_drop =
            model.adequacy(&concerned, &ok) - model.adequacy(&concerned, &violated);
        let indifferent_drop =
            model.adequacy(&indifferent, &ok) - model.adequacy(&indifferent, &violated);
        assert!(concerned_drop > 0.2, "drop {concerned_drop}");
        assert!(
            indifferent_drop.abs() < 1e-12,
            "indifferent users lose nothing"
        );
    }

    #[test]
    fn zero_expectation_outcome_term_is_one() {
        let model = AdequacyModel::default();
        let easy = ConsumerIntentions::new([], 0.0, 0.5).unwrap();
        let a = model.adequacy(&easy, &aspects(0.0, true));
        assert!(a > 0.9, "nothing expected, nothing lost: {a}");
    }

    #[test]
    fn adequacy_is_bounded() {
        let model = AdequacyModel::default();
        let intentions = ConsumerIntentions::new([NodeId(9)], 0.7, 0.8).unwrap();
        for q in [0.0, 0.3, 0.9, 1.0] {
            for p in [true, false] {
                let a = model.adequacy(&intentions, &aspects(q, p));
                assert!((0.0..=1.0).contains(&a), "adequacy {a} out of range");
            }
        }
    }

    #[test]
    fn validation_catches_bad_weights() {
        let zero = AdequacyModel {
            outcome_weight: 0.0,
            preference_weight: 0.0,
            privacy_weight: 0.0,
        };
        assert!(zero.validate().is_err());
        let neg = AdequacyModel {
            outcome_weight: -1.0,
            ..Default::default()
        };
        assert!(neg.validate().is_err());
        assert!(AdequacyModel::default().validate().is_ok());
    }
}
