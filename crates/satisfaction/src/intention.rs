//! Participant intentions: what each user wants from the system.
//!
//! Ref \[17\] characterizes autonomous participants by their *intentions*.
//! In a social network the two roles are:
//!
//! * **consumers** — want content/services from providers they prefer
//!   (interest match, known quality) with their privacy respected;
//! * **providers** — want to serve requests they care about and not be
//!   flooded with requests they never intended to treat.

use std::collections::BTreeSet;
use tsn_simnet::NodeId;

/// A consumer's intentions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumerIntentions {
    /// Providers the consumer explicitly prefers (e.g. friends, same
    /// community). An allocation to one of these is "intended".
    pub preferred_providers: BTreeSet<NodeId>,
    /// Minimum outcome quality the consumer considers adequate.
    pub quality_expectation: f64,
    /// How much the consumer cares that her privacy policy is respected
    /// (0 = indifferent, 1 = paramount).
    pub privacy_concern: f64,
}

impl ConsumerIntentions {
    /// Creates intentions with validation.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is out of `\[0, 1\]`.
    pub fn new(
        preferred_providers: impl IntoIterator<Item = NodeId>,
        quality_expectation: f64,
        privacy_concern: f64,
    ) -> Result<Self, String> {
        if !(0.0..=1.0).contains(&quality_expectation) {
            return Err("quality_expectation must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&privacy_concern) {
            return Err("privacy_concern must be in [0,1]".into());
        }
        Ok(ConsumerIntentions {
            preferred_providers: preferred_providers.into_iter().collect(),
            quality_expectation,
            privacy_concern,
        })
    }

    /// Whether an allocation to `provider` matches the consumer's
    /// intentions. With no stated preference, any provider is intended.
    pub fn intends(&self, provider: NodeId) -> bool {
        self.preferred_providers.is_empty() || self.preferred_providers.contains(&provider)
    }

    /// Preference match in `\[0, 1\]`: 1 for an intended provider, a
    /// configurable floor otherwise (the system *imposed* a partner; ref
    /// \[17\] stresses this is tolerable occasionally).
    pub fn preference_match(&self, provider: NodeId) -> f64 {
        if self.intends(provider) {
            1.0
        } else {
            0.2
        }
    }
}

impl Default for ConsumerIntentions {
    fn default() -> Self {
        ConsumerIntentions {
            preferred_providers: BTreeSet::new(),
            quality_expectation: 0.5,
            privacy_concern: 0.5,
        }
    }
}

/// A provider's intentions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderIntentions {
    /// Topics the provider wants to serve (empty = everything).
    pub preferred_topics: BTreeSet<usize>,
    /// Maximum load (requests per round) the provider intends to handle.
    pub capacity: u32,
}

impl ProviderIntentions {
    /// Creates intentions.
    ///
    /// # Errors
    ///
    /// Returns a message if `capacity` is zero.
    pub fn new(
        preferred_topics: impl IntoIterator<Item = usize>,
        capacity: u32,
    ) -> Result<Self, String> {
        if capacity == 0 {
            return Err("capacity must be positive".into());
        }
        Ok(ProviderIntentions {
            preferred_topics: preferred_topics.into_iter().collect(),
            capacity,
        })
    }

    /// Whether serving a request on `topic` matches intentions.
    pub fn intends_topic(&self, topic: Option<usize>) -> bool {
        match topic {
            None => true,
            Some(t) => self.preferred_topics.is_empty() || self.preferred_topics.contains(&t),
        }
    }

    /// Adequacy of the current `load` against intended capacity: 1 while
    /// within capacity, decaying once overloaded.
    pub fn load_adequacy(&self, load: u32) -> f64 {
        if load <= self.capacity {
            1.0
        } else {
            self.capacity as f64 / load as f64
        }
    }
}

impl Default for ProviderIntentions {
    fn default() -> Self {
        ProviderIntentions {
            preferred_topics: BTreeSet::new(),
            capacity: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_with_no_preference_intends_anyone() {
        let c = ConsumerIntentions::default();
        assert!(c.intends(NodeId(5)));
        assert_eq!(c.preference_match(NodeId(5)), 1.0);
    }

    #[test]
    fn consumer_preferences_filter() {
        let c = ConsumerIntentions::new([NodeId(1), NodeId(2)], 0.6, 0.8).unwrap();
        assert!(c.intends(NodeId(1)));
        assert!(!c.intends(NodeId(3)));
        assert_eq!(c.preference_match(NodeId(1)), 1.0);
        assert_eq!(c.preference_match(NodeId(3)), 0.2);
    }

    #[test]
    fn consumer_validation() {
        assert!(ConsumerIntentions::new([], 1.5, 0.5).is_err());
        assert!(ConsumerIntentions::new([], 0.5, -0.1).is_err());
        assert!(ConsumerIntentions::new([], 0.5, 0.5).is_ok());
    }

    #[test]
    fn provider_topic_intentions() {
        let p = ProviderIntentions::new([1, 2], 5).unwrap();
        assert!(p.intends_topic(Some(1)));
        assert!(!p.intends_topic(Some(3)));
        assert!(p.intends_topic(None), "untopiced requests are acceptable");
        let open = ProviderIntentions::default();
        assert!(open.intends_topic(Some(42)));
    }

    #[test]
    fn provider_load_adequacy_decays_when_overloaded() {
        let p = ProviderIntentions::new([], 4).unwrap();
        assert_eq!(p.load_adequacy(0), 1.0);
        assert_eq!(p.load_adequacy(4), 1.0);
        assert_eq!(p.load_adequacy(8), 0.5);
        assert!(p.load_adequacy(100) < 0.05);
    }

    #[test]
    fn provider_validation() {
        assert!(ProviderIntentions::new([], 0).is_err());
    }
}
