//! Long-run satisfaction and allocation satisfaction (ref \[17\]).

/// Long-run satisfaction: an exponentially weighted average of adequacy.
///
/// Ref \[17\]'s satisfaction is "a long run notion evaluating the capacity
/// of the system to follow the intentions of each participant". The EWMA
/// keeps it long-run (one bad interaction moves it by at most
/// `learning_rate`) while staying responsive to sustained change.
///
/// ```
/// use tsn_satisfaction::SatisfactionTracker;
///
/// let mut tracker = SatisfactionTracker::default();
/// for _ in 0..30 {
///     tracker.observe(0.9);
/// }
/// tracker.observe(0.0); // one bad day is forgiven
/// assert!(tracker.satisfaction() > 0.7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SatisfactionTracker {
    value: f64,
    learning_rate: f64,
    observations: u64,
}

impl SatisfactionTracker {
    /// Creates a tracker starting at the neutral prior 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not in `(0, 1]`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must be in (0,1]"
        );
        SatisfactionTracker {
            value: 0.5,
            learning_rate,
            observations: 0,
        }
    }

    /// Records the adequacy of one interaction.
    ///
    /// # Panics
    ///
    /// Panics if `adequacy` is not in `\[0, 1\]`.
    pub fn observe(&mut self, adequacy: f64) {
        assert!((0.0..=1.0).contains(&adequacy), "adequacy must be in [0,1]");
        self.value += self.learning_rate * (adequacy - self.value);
        self.observations += 1;
    }

    /// Current satisfaction in `\[0, 1\]`.
    pub fn satisfaction(&self) -> f64 {
        self.value
    }

    /// Number of interactions observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether the participant would plausibly *leave* the system:
    /// satisfied participants stay ("they may decide whether to stay or to
    /// leave the system based on it"). The threshold is the caller's
    /// churn model; this is a convenience comparator.
    pub fn would_leave(&self, threshold: f64) -> bool {
        self.observations > 0 && self.value < threshold
    }
}

impl Default for SatisfactionTracker {
    /// Learning rate 0.1: roughly a 10-interaction memory half-life.
    fn default() -> Self {
        SatisfactionTracker::new(0.1)
    }
}

/// Allocation satisfaction: the fraction of allocations that matched the
/// participant's intentions, over a sliding window.
///
/// Ref \[17\] separates *satisfaction* (with outcomes) from *allocation
/// satisfaction* (with the allocation decisions themselves): a consumer
/// is allocation-satisfied when "in general she receives answers from the
/// providers she prefers".
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationTracker {
    window: Vec<bool>,
    capacity: usize,
    cursor: usize,
    filled: bool,
}

impl AllocationTracker {
    /// Creates a tracker over a window of `capacity` allocations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        AllocationTracker {
            window: vec![false; capacity],
            capacity,
            cursor: 0,
            filled: false,
        }
    }

    /// Records whether an allocation was intended.
    pub fn observe(&mut self, intended: bool) {
        self.window[self.cursor] = intended;
        self.cursor = (self.cursor + 1) % self.capacity;
        if self.cursor == 0 {
            self.filled = true;
        }
    }

    /// Number of allocations currently in the window.
    pub fn len(&self) -> usize {
        if self.filled {
            self.capacity
        } else {
            self.cursor
        }
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocation satisfaction in `\[0, 1\]`; 0.5 (neutral) before any
    /// observation.
    pub fn allocation_satisfaction(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.5;
        }
        let hits = self.window[..if self.filled {
            self.capacity
        } else {
            self.cursor
        }]
            .iter()
            .filter(|&&b| b)
            .count();
        hits as f64 / n as f64
    }
}

impl Default for AllocationTracker {
    /// A 50-allocation window.
    fn default() -> Self {
        AllocationTracker::new(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_starts_neutral() {
        let t = SatisfactionTracker::default();
        assert_eq!(t.satisfaction(), 0.5);
        assert_eq!(t.observations(), 0);
    }

    #[test]
    fn sustained_good_experience_converges_up() {
        let mut t = SatisfactionTracker::new(0.1);
        for _ in 0..100 {
            t.observe(0.95);
        }
        assert!(t.satisfaction() > 0.9);
        assert_eq!(t.observations(), 100);
    }

    #[test]
    fn sustained_bad_experience_converges_down() {
        let mut t = SatisfactionTracker::new(0.1);
        for _ in 0..100 {
            t.observe(0.05);
        }
        assert!(t.satisfaction() < 0.1);
    }

    #[test]
    fn one_bad_interaction_is_forgiven() {
        // The long-run property ref [17] insists on.
        let mut t = SatisfactionTracker::new(0.1);
        for _ in 0..50 {
            t.observe(0.9);
        }
        let before = t.satisfaction();
        t.observe(0.0);
        let after = t.satisfaction();
        assert!(
            before - after < 0.1,
            "single failure must not crater satisfaction"
        );
        assert!(after > 0.7);
    }

    #[test]
    fn higher_learning_rate_reacts_faster() {
        let mut slow = SatisfactionTracker::new(0.05);
        let mut fast = SatisfactionTracker::new(0.5);
        for _ in 0..5 {
            slow.observe(1.0);
            fast.observe(1.0);
        }
        assert!(fast.satisfaction() > slow.satisfaction());
    }

    #[test]
    fn would_leave_requires_observations() {
        let t = SatisfactionTracker::default();
        assert!(!t.would_leave(0.9), "no experience yet → no churn decision");
        let mut t = SatisfactionTracker::new(0.5);
        t.observe(0.0);
        assert!(t.would_leave(0.4));
        assert!(!t.would_leave(0.1));
    }

    #[test]
    #[should_panic(expected = "adequacy must be in [0,1]")]
    fn out_of_range_adequacy_panics() {
        SatisfactionTracker::default().observe(1.5);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_panics() {
        let _ = SatisfactionTracker::new(0.0);
    }

    #[test]
    fn allocation_tracker_window() {
        let mut a = AllocationTracker::new(4);
        assert_eq!(a.allocation_satisfaction(), 0.5, "neutral before data");
        assert!(a.is_empty());
        a.observe(true);
        a.observe(true);
        a.observe(false);
        assert_eq!(a.len(), 3);
        assert!((a.allocation_satisfaction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn allocation_tracker_slides() {
        let mut a = AllocationTracker::new(3);
        for _ in 0..3 {
            a.observe(false);
        }
        assert_eq!(a.allocation_satisfaction(), 0.0);
        // Three intended allocations push the misses out of the window.
        for _ in 0..3 {
            a.observe(true);
        }
        assert_eq!(a.allocation_satisfaction(), 1.0);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "window capacity")]
    fn zero_window_panics() {
        let _ = AllocationTracker::new(0);
    }
}
