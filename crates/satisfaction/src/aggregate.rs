//! Global satisfaction: aggregating per-participant satisfaction.
//!
//! The paper's Figure 2 plots *global* satisfaction; Section 3 notes a
//! user's perception "can be influenced only by its local vision of the
//! system, or by a global one". The global view must not hide individual
//! misery behind a mean, so fairness measures ride along.

/// Aggregated satisfaction statistics over a population.
///
/// ```
/// use tsn_satisfaction::GlobalSatisfaction;
///
/// let g = GlobalSatisfaction::from_values(&[1.0, 1.0, 0.0, 0.0]).expect("non-empty");
/// assert_eq!(g.mean, 0.5);
/// assert!(g.fairness_discounted() < g.mean, "inequality is discounted");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalSatisfaction {
    /// Arithmetic mean satisfaction.
    pub mean: f64,
    /// Minimum individual satisfaction.
    pub min: f64,
    /// Jain fairness index in `(0, 1]` (1 = perfectly even).
    pub jain_index: f64,
    /// Gini coefficient in `[0, 1)` (0 = perfectly even).
    pub gini: f64,
    /// Population size.
    pub population: usize,
}

impl GlobalSatisfaction {
    /// Computes aggregates from individual satisfaction values (each in
    /// `[0, 1]`).
    ///
    /// Returns `None` for an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1]`.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        assert!(
            values.iter().all(|v| (0.0..=1.0).contains(v)),
            "satisfaction values must be in [0,1]"
        );
        let n = values.len() as f64;
        let sum: f64 = values.iter().sum();
        let mean = sum / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let sum_sq: f64 = values.iter().map(|v| v * v).sum();
        let jain_index = if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sum_sq)
        };
        let gini = gini_coefficient(values);
        Some(GlobalSatisfaction {
            mean,
            min,
            jain_index,
            gini,
            population: values.len(),
        })
    }

    /// A fairness-discounted global score: `mean × jain`. This is the
    /// value `tsn-core` uses as the satisfaction facet, so a system that
    /// satisfies half its users perfectly and ignores the rest does not
    /// score like one satisfying everyone at 0.5.
    pub fn fairness_discounted(&self) -> f64 {
        self.mean * self.jain_index
    }
}

/// Gini coefficient of non-negative values (0 = perfect equality).
pub fn gini_coefficient(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = values.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    // Gini = (2 Σ_i i·x_i) / (n Σ x) − (n+1)/n, with i starting at 1.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_population_is_perfectly_fair() {
        let g = GlobalSatisfaction::from_values(&[0.7; 10]).unwrap();
        assert!((g.mean - 0.7).abs() < 1e-12);
        assert_eq!(g.min, 0.7);
        assert!((g.jain_index - 1.0).abs() < 1e-12);
        assert!(g.gini.abs() < 1e-12);
        assert_eq!(g.population, 10);
        assert!((g.fairness_discounted() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_population_is_none() {
        assert_eq!(GlobalSatisfaction::from_values(&[]), None);
    }

    #[test]
    fn skewed_population_scores_unfair() {
        // Half blissful, half miserable.
        let values: Vec<f64> = (0..10).map(|i| if i < 5 { 1.0 } else { 0.0 }).collect();
        let g = GlobalSatisfaction::from_values(&values).unwrap();
        assert!((g.mean - 0.5).abs() < 1e-12);
        assert_eq!(g.min, 0.0);
        assert!((g.jain_index - 0.5).abs() < 1e-12);
        assert!((g.gini - 0.5).abs() < 1e-12);
        // Fairness discount bites: 0.5 × 0.5 = 0.25 < 0.5.
        assert!((g.fairness_discounted() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn even_half_satisfaction_beats_skewed_same_mean() {
        let even = GlobalSatisfaction::from_values(&[0.5; 10]).unwrap();
        let skewed = GlobalSatisfaction::from_values(
            &(0..10)
                .map(|i| if i < 5 { 1.0 } else { 0.0 })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!((even.mean - skewed.mean).abs() < 1e-12);
        assert!(even.fairness_discounted() > skewed.fairness_discounted());
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
        assert!(gini_coefficient(&[1.0, 1.0, 1.0]).abs() < 1e-12);
        // One person has everything, n=4: Gini = (n-1)/n = 0.75.
        let g = gini_coefficient(&[0.0, 0.0, 0.0, 1.0]);
        assert!((g - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_zero_population() {
        let g = GlobalSatisfaction::from_values(&[0.0, 0.0]).unwrap();
        assert_eq!(g.mean, 0.0);
        assert_eq!(g.jain_index, 1.0, "equal misery is still 'fair'");
        assert_eq!(g.fairness_discounted(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn out_of_range_values_panic() {
        let _ = GlobalSatisfaction::from_values(&[0.5, 1.5]);
    }

    #[test]
    fn jain_index_bounds() {
        // Jain ∈ [1/n, 1].
        let worst = GlobalSatisfaction::from_values(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((worst.jain_index - 0.25).abs() < 1e-12);
    }
}
