//! Privacy policies, after P3P (paper ref \[9\]) and PriServ (ref \[12\]).
//!
//! The paper, Section 2.3: *"we consider that PPs should consider
//! authorized users, allowed operations, access purposes, access
//! conditions, retention time, obligations and the minimal trust level
//! necessary to allow data access"*. [`PrivacyPolicy`] carries exactly
//! those seven elements, per [`DataCategory`].

use std::collections::BTreeSet;
use std::fmt;
use tsn_simnet::{NodeId, SimDuration};

/// Categories of personal data a social-network profile holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataCategory {
    /// Name, photo, public profile.
    Profile,
    /// Posts and shared media.
    Content,
    /// Friend list / social graph edges.
    Contacts,
    /// Behavioural data: who interacted with whom, when.
    Behavior,
    /// Feedback and ratings the user files (reputation input).
    Feedback,
    /// Location or other sensor-derived data.
    Location,
}

impl DataCategory {
    /// All categories.
    pub const ALL: [DataCategory; 6] = [
        DataCategory::Profile,
        DataCategory::Content,
        DataCategory::Contacts,
        DataCategory::Behavior,
        DataCategory::Feedback,
        DataCategory::Location,
    ];

    /// Relative sensitivity in `\[0, 1\]` used for exposure weighting.
    pub fn sensitivity(self) -> f64 {
        match self {
            DataCategory::Profile => 0.3,
            DataCategory::Content => 0.5,
            DataCategory::Contacts => 0.6,
            DataCategory::Behavior => 0.8,
            DataCategory::Feedback => 0.7,
            DataCategory::Location => 1.0,
        }
    }
}

impl fmt::Display for DataCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataCategory::Profile => "profile",
            DataCategory::Content => "content",
            DataCategory::Contacts => "contacts",
            DataCategory::Behavior => "behavior",
            DataCategory::Feedback => "feedback",
            DataCategory::Location => "location",
        };
        f.write_str(s)
    }
}

/// Operations a requester may perform on data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operation {
    /// Read the data.
    Read,
    /// Store a copy (e.g. replicate for availability).
    Store,
    /// Aggregate into statistics (e.g. reputation scoring).
    Aggregate,
    /// Re-share with third parties.
    Share,
}

/// Purposes a requester may invoke (P3P purpose element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Purpose {
    /// Social interaction between users.
    Social,
    /// Reputation computation.
    Reputation,
    /// System operation (routing, replication).
    SystemOperation,
    /// Research / analytics.
    Analytics,
    /// Commercial use.
    Commercial,
}

/// Conditions attached to an access grant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessCondition {
    /// Requester must be a direct friend (graph neighbour).
    FriendsOnly,
    /// Requester must be within `hops` in the social graph.
    WithinHops(u32),
    /// Data must be anonymized before leaving the owner.
    AnonymizedOnly,
}

/// Obligations the recipient accepts (P3P/PriServ obligation element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Obligation {
    /// Delete after the retention period.
    DeleteAfterRetention,
    /// Notify the owner on every access.
    NotifyOwner,
    /// Never re-share.
    NoOnwardTransfer,
}

/// Policy construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// Minimal trust level outside `\[0, 1\]`.
    InvalidTrustLevel,
    /// Retention of zero duration with a delete obligation is
    /// contradictory.
    ContradictoryRetention,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::InvalidTrustLevel => write!(f, "minimal trust level must be in [0,1]"),
            PolicyError::ContradictoryRetention => {
                write!(
                    f,
                    "zero retention contradicts delete-after-retention obligation"
                )
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// One user's privacy policy for one data category.
///
/// Built with [`PrivacyPolicy::builder`]; all seven P3P/PriServ elements
/// are representable.
///
/// ```
/// use tsn_privacy::{DataCategory, Operation, PrivacyPolicy, Purpose};
///
/// let policy = PrivacyPolicy::builder(DataCategory::Content)
///     .allow_operations([Operation::Read])
///     .allow_purposes([Purpose::Social])
///     .min_trust_level(0.6)
///     .build()?;
/// assert!(policy.strictness() > PrivacyPolicy::permissive(DataCategory::Content).strictness());
/// # Ok::<(), tsn_privacy::PolicyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyPolicy {
    /// The data category this policy governs.
    pub category: DataCategory,
    /// Explicitly authorized users; `None` = anyone passing the other
    /// checks (`Some(∅)` = nobody).
    pub authorized_users: Option<BTreeSet<NodeId>>,
    /// Allowed operations.
    pub operations: BTreeSet<Operation>,
    /// Allowed purposes.
    pub purposes: BTreeSet<Purpose>,
    /// Additional conditions (all must hold).
    pub conditions: Vec<AccessCondition>,
    /// How long recipients may retain the data.
    pub retention: SimDuration,
    /// Obligations accepted by recipients.
    pub obligations: BTreeSet<Obligation>,
    /// Minimal trust level (toward the requester) to allow access.
    pub min_trust_level: f64,
}

impl PrivacyPolicy {
    /// Starts building a policy for `category`.
    pub fn builder(category: DataCategory) -> PrivacyPolicyBuilder {
        PrivacyPolicyBuilder::new(category)
    }

    /// A permissive policy: anyone may read/aggregate for social or
    /// reputation purposes, no trust requirement.
    pub fn permissive(category: DataCategory) -> Self {
        PrivacyPolicy::builder(category)
            .allow_operations([Operation::Read, Operation::Store, Operation::Aggregate])
            .allow_purposes([
                Purpose::Social,
                Purpose::Reputation,
                Purpose::SystemOperation,
            ])
            .retention(SimDuration::from_secs(30 * 24 * 3600))
            .build()
            // tsn-lint: allow(no-unwrap, "preset literal is valid by inspection and pinned by the policy unit tests")
            .expect("permissive policy is valid")
    }

    /// A strict policy: friends only, read only, social purpose only,
    /// high trust requirement, short retention, full obligations.
    pub fn strict(category: DataCategory) -> Self {
        PrivacyPolicy::builder(category)
            .allow_operations([Operation::Read])
            .allow_purposes([Purpose::Social])
            .condition(AccessCondition::FriendsOnly)
            .retention(SimDuration::from_secs(24 * 3600))
            .obligations([
                Obligation::DeleteAfterRetention,
                Obligation::NotifyOwner,
                Obligation::NoOnwardTransfer,
            ])
            .min_trust_level(0.7)
            .build()
            // tsn-lint: allow(no-unwrap, "preset literal is valid by inspection and pinned by the policy unit tests")
            .expect("strict policy is valid")
    }

    /// Strictness score in `\[0, 1\]`: how much this policy restricts,
    /// relative to the permissive baseline. Used by the exposure model.
    pub fn strictness(&self) -> f64 {
        let user_term = match &self.authorized_users {
            None => 0.0,
            Some(s) if s.is_empty() => 1.0,
            Some(_) => 0.7,
        };
        let op_term = 1.0 - self.operations.len() as f64 / 4.0;
        let purpose_term = 1.0 - self.purposes.len() as f64 / 5.0;
        let condition_term = (self.conditions.len() as f64 / 3.0).min(1.0);
        let trust_term = self.min_trust_level;
        let obligation_term = self.obligations.len() as f64 / 3.0;
        (user_term + op_term + purpose_term + condition_term + trust_term + obligation_term) / 6.0
    }
}

/// Builder for [`PrivacyPolicy`] (non-consuming terminal, chained setters).
#[derive(Debug, Clone)]
pub struct PrivacyPolicyBuilder {
    category: DataCategory,
    authorized_users: Option<BTreeSet<NodeId>>,
    operations: BTreeSet<Operation>,
    purposes: BTreeSet<Purpose>,
    conditions: Vec<AccessCondition>,
    retention: SimDuration,
    obligations: BTreeSet<Obligation>,
    min_trust_level: f64,
}

impl PrivacyPolicyBuilder {
    fn new(category: DataCategory) -> Self {
        PrivacyPolicyBuilder {
            category,
            authorized_users: None,
            operations: BTreeSet::new(),
            purposes: BTreeSet::new(),
            conditions: Vec::new(),
            retention: SimDuration::from_secs(7 * 24 * 3600),
            obligations: BTreeSet::new(),
            min_trust_level: 0.0,
        }
    }

    /// Restricts access to the given users.
    pub fn authorize_users(mut self, users: impl IntoIterator<Item = NodeId>) -> Self {
        self.authorized_users = Some(users.into_iter().collect());
        self
    }

    /// Adds allowed operations.
    pub fn allow_operations(mut self, ops: impl IntoIterator<Item = Operation>) -> Self {
        self.operations.extend(ops);
        self
    }

    /// Adds allowed purposes.
    pub fn allow_purposes(mut self, purposes: impl IntoIterator<Item = Purpose>) -> Self {
        self.purposes.extend(purposes);
        self
    }

    /// Adds a condition.
    pub fn condition(mut self, condition: AccessCondition) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Sets the retention period.
    pub fn retention(mut self, retention: SimDuration) -> Self {
        self.retention = retention;
        self
    }

    /// Adds obligations.
    pub fn obligations(mut self, obligations: impl IntoIterator<Item = Obligation>) -> Self {
        self.obligations.extend(obligations);
        self
    }

    /// Sets the minimal trust level in `\[0, 1\]`.
    pub fn min_trust_level(mut self, level: f64) -> Self {
        self.min_trust_level = level;
        self
    }

    /// Validates and builds the policy.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidTrustLevel`] when the trust level is
    /// outside `\[0, 1\]`, and [`PolicyError::ContradictoryRetention`] when
    /// a delete obligation is combined with zero retention.
    pub fn build(self) -> Result<PrivacyPolicy, PolicyError> {
        if !(0.0..=1.0).contains(&self.min_trust_level) {
            return Err(PolicyError::InvalidTrustLevel);
        }
        if self.retention == SimDuration::ZERO
            && self.obligations.contains(&Obligation::DeleteAfterRetention)
        {
            return Err(PolicyError::ContradictoryRetention);
        }
        Ok(PrivacyPolicy {
            category: self.category,
            authorized_users: self.authorized_users,
            operations: self.operations,
            purposes: self.purposes,
            conditions: self.conditions,
            retention: self.retention,
            obligations: self.obligations,
            min_trust_level: self.min_trust_level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_all_seven_elements() {
        let p = PrivacyPolicy::builder(DataCategory::Content)
            .authorize_users([NodeId(1), NodeId(2)])
            .allow_operations([Operation::Read, Operation::Aggregate])
            .allow_purposes([Purpose::Reputation])
            .condition(AccessCondition::WithinHops(2))
            .retention(SimDuration::from_secs(3600))
            .obligations([Obligation::NotifyOwner])
            .min_trust_level(0.5)
            .build()
            .unwrap();
        assert_eq!(p.category, DataCategory::Content);
        assert_eq!(p.authorized_users.as_ref().unwrap().len(), 2);
        assert!(p.operations.contains(&Operation::Read));
        assert!(p.purposes.contains(&Purpose::Reputation));
        assert_eq!(p.conditions, vec![AccessCondition::WithinHops(2)]);
        assert_eq!(p.retention, SimDuration::from_secs(3600));
        assert!(p.obligations.contains(&Obligation::NotifyOwner));
        assert_eq!(p.min_trust_level, 0.5);
    }

    #[test]
    fn invalid_trust_level_rejected() {
        let r = PrivacyPolicy::builder(DataCategory::Profile)
            .min_trust_level(1.5)
            .build();
        assert_eq!(r.unwrap_err(), PolicyError::InvalidTrustLevel);
    }

    #[test]
    fn contradictory_retention_rejected() {
        let r = PrivacyPolicy::builder(DataCategory::Profile)
            .retention(SimDuration::ZERO)
            .obligations([Obligation::DeleteAfterRetention])
            .build();
        assert_eq!(r.unwrap_err(), PolicyError::ContradictoryRetention);
    }

    #[test]
    fn strict_is_stricter_than_permissive() {
        for category in DataCategory::ALL {
            let strict = PrivacyPolicy::strict(category).strictness();
            let permissive = PrivacyPolicy::permissive(category).strictness();
            assert!(strict > permissive, "{category}: {strict} vs {permissive}");
        }
    }

    #[test]
    fn strictness_is_bounded() {
        let max = PrivacyPolicy::builder(DataCategory::Location)
            .authorize_users([])
            .condition(AccessCondition::FriendsOnly)
            .condition(AccessCondition::AnonymizedOnly)
            .condition(AccessCondition::WithinHops(1))
            .obligations([
                Obligation::DeleteAfterRetention,
                Obligation::NotifyOwner,
                Obligation::NoOnwardTransfer,
            ])
            .min_trust_level(1.0)
            .build()
            .unwrap();
        let s = max.strictness();
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.9, "maximal policy should be near 1, got {s}");
    }

    #[test]
    fn sensitivity_ordering_is_sane() {
        assert!(DataCategory::Location.sensitivity() > DataCategory::Profile.sensitivity());
        assert!(DataCategory::Behavior.sensitivity() > DataCategory::Content.sensitivity());
    }

    #[test]
    fn display_names() {
        assert_eq!(DataCategory::Feedback.to_string(), "feedback");
        assert_eq!(
            PolicyError::InvalidTrustLevel.to_string(),
            "minimal trust level must be in [0,1]"
        );
    }

    #[test]
    fn empty_authorized_set_differs_from_none() {
        let nobody = PrivacyPolicy::builder(DataCategory::Profile)
            .authorize_users([])
            .build()
            .unwrap();
        let anybody = PrivacyPolicy::builder(DataCategory::Profile)
            .build()
            .unwrap();
        assert!(nobody.strictness() > anybody.strictness());
    }
}
