//! The disclosure ledger: accounting for every personal-data flow.
//!
//! The paper's privacy facet is *measured*, not assumed: "privacy concerns
//! the respect of individual PPs". The ledger records every disclosure
//! (and every breach), so per-user and system-wide respect rates are exact
//! counts. Footnote 2 of the paper insists breaches by malicious users
//! and breaches by the system itself "should not be treated in the same
//! manner" — [`BreachCause`] keeps them apart.
//!
//! # Performance
//!
//! Aggregate queries ([`DisclosureLedger::respect_rate`],
//! [`DisclosureLedger::respect_rate_for`], [`DisclosureLedger::breach_count`],
//! [`DisclosureLedger::exposure_for`], [`DisclosureLedger::total_exposure`])
//! are answered from running counters maintained on every `record_*` call,
//! so they are O(1) instead of a scan of the full record log — the
//! scenario loop queries them per user per round. The counters are exact:
//! integer counts, and exposure sums accumulated in append order (the same
//! order a scan would use), so the answers are bit-identical to the old
//! scanning implementation. The raw record log can additionally be capped
//! with [`DisclosureLedger::with_raw_record_cap`]; counters always cover
//! the full history even when old raw records have been evicted.

use crate::policy::{DataCategory, Purpose};
use std::collections::VecDeque;
use tsn_simnet::{NodeId, SimTime};

/// Who is to blame for a breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreachCause {
    /// A malicious *user* leaked data they were granted.
    MaliciousUser,
    /// The *system* violated a policy (bug, misconfiguration, over-sharing
    /// by the reputation pipeline).
    System,
}

/// One recorded data flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisclosureRecord {
    /// When it happened.
    pub at: SimTime,
    /// Whose data flowed.
    pub owner: NodeId,
    /// Who received it.
    pub recipient: NodeId,
    /// What category of data.
    pub category: DataCategory,
    /// Declared purpose of the flow.
    pub purpose: Purpose,
    /// Whether the flow complied with the owner's policy. Non-compliant
    /// flows are *breaches*.
    pub compliant: bool,
    /// Cause, for breaches.
    pub breach_cause: Option<BreachCause>,
    /// Whether the data was anonymized before flowing.
    pub anonymized: bool,
}

impl DisclosureRecord {
    /// Sensitivity-weighted exposure contribution of this record.
    fn exposure(&self) -> f64 {
        self.category.sensitivity() * if self.anonymized { 0.25 } else { 1.0 }
    }
}

/// Running aggregates for one owner's data.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct OwnerStats {
    total: u64,
    compliant: u64,
    exposure: f64,
}

/// Append-only ledger of disclosures, with per-owner aggregation.
///
/// ```
/// use tsn_privacy::{BreachCause, DataCategory, DisclosureLedger, Purpose};
/// use tsn_simnet::{NodeId, SimTime};
///
/// let mut ledger = DisclosureLedger::new();
/// ledger.record_disclosure(SimTime::ZERO, NodeId(0), NodeId(1), DataCategory::Content, Purpose::Social, false);
/// ledger.record_breach(SimTime::ZERO, NodeId(0), NodeId(2), DataCategory::Content, Purpose::Social, BreachCause::MaliciousUser);
/// assert_eq!(ledger.respect_rate(), 0.5);
/// assert_eq!(ledger.breach_count(Some(BreachCause::System)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DisclosureLedger {
    /// Raw audit trail. A ring (`VecDeque`), not a `Vec`: with a
    /// retention cap every insert beyond the cap evicts the oldest
    /// record, and `Vec::drain(..1)` would memmove the whole window —
    /// O(cap) per insert, which turned mega-scale scenario rounds
    /// quadratic. `pop_front` keeps eviction O(1).
    records: VecDeque<DisclosureRecord>,
    /// Optional cap on *raw* record retention; `None` keeps everything.
    raw_record_cap: Option<usize>,
    /// Per-owner running aggregates, indexed by `owner.index()`.
    owners: Vec<OwnerStats>,
    /// Running totals over the full history (never evicted).
    total: u64,
    compliant: u64,
    user_breaches: u64,
    system_breaches: u64,
    total_exposure: f64,
}

impl DisclosureLedger {
    /// Creates an empty ledger that retains every raw record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty ledger that keeps at most `cap` raw records
    /// (oldest evicted first). Aggregate queries still cover the full
    /// history; only [`DisclosureLedger::records`] and friends see the
    /// truncated window. `None` disables the cap.
    pub fn with_raw_record_cap(cap: Option<usize>) -> Self {
        DisclosureLedger {
            raw_record_cap: cap,
            ..Self::default()
        }
    }

    /// The configured raw-record retention cap, if any.
    pub fn raw_record_cap(&self) -> Option<usize> {
        self.raw_record_cap
    }

    fn owner_stats_mut(&mut self, owner: NodeId) -> &mut OwnerStats {
        let i = owner.index();
        if i >= self.owners.len() {
            self.owners.resize(i + 1, OwnerStats::default());
        }
        &mut self.owners[i]
    }

    fn push(&mut self, record: DisclosureRecord) {
        self.total += 1;
        if record.compliant {
            self.compliant += 1;
        }
        match record.breach_cause {
            Some(BreachCause::MaliciousUser) => self.user_breaches += 1,
            Some(BreachCause::System) => self.system_breaches += 1,
            None => {}
        }
        let exposure = record.exposure();
        self.total_exposure += exposure;
        let stats = self.owner_stats_mut(record.owner);
        stats.total += 1;
        stats.compliant += u64::from(record.compliant);
        stats.exposure += exposure;

        self.records.push_back(record);
        if let Some(cap) = self.raw_record_cap {
            while self.records.len() > cap {
                self.records.pop_front();
            }
        }
    }

    /// Records a compliant disclosure.
    pub fn record_disclosure(
        &mut self,
        at: SimTime,
        owner: NodeId,
        recipient: NodeId,
        category: DataCategory,
        purpose: Purpose,
        anonymized: bool,
    ) {
        self.push(DisclosureRecord {
            at,
            owner,
            recipient,
            category,
            purpose,
            compliant: true,
            breach_cause: None,
            anonymized,
        });
    }

    /// Records a breach.
    pub fn record_breach(
        &mut self,
        at: SimTime,
        owner: NodeId,
        recipient: NodeId,
        category: DataCategory,
        purpose: Purpose,
        cause: BreachCause,
    ) {
        self.push(DisclosureRecord {
            at,
            owner,
            recipient,
            category,
            purpose,
            compliant: false,
            breach_cause: Some(cause),
            anonymized: false,
        });
    }

    /// All retained raw records, in order. With a raw-record cap this is
    /// the most recent window; aggregates still cover the full history.
    pub fn records(&self) -> &VecDeque<DisclosureRecord> {
        &self.records
    }

    /// Total number of records over the full history (including any raw
    /// records evicted by the retention cap).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the ledger has never recorded anything.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of breaches, optionally filtered by cause.
    pub fn breach_count(&self, cause: Option<BreachCause>) -> usize {
        (match cause {
            None => self.user_breaches + self.system_breaches,
            Some(BreachCause::MaliciousUser) => self.user_breaches,
            Some(BreachCause::System) => self.system_breaches,
        }) as usize
    }

    /// System-wide policy-respect rate: compliant / total. An empty
    /// ledger counts as fully respected (no flow, no violation).
    pub fn respect_rate(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.compliant as f64 / self.total as f64
    }

    /// Policy-respect rate for one owner's data.
    pub fn respect_rate_for(&self, owner: NodeId) -> f64 {
        match self.owners.get(owner.index()) {
            Some(stats) if stats.total > 0 => stats.compliant as f64 / stats.total as f64,
            _ => 1.0,
        }
    }

    /// Sensitivity-weighted exposure of one owner: Σ sensitivity(category)
    /// over their non-anonymized disclosed records (anonymized flows count
    /// 25 %). Unnormalized; see [`crate::exposure`] for the facet mapping.
    pub fn exposure_for(&self, owner: NodeId) -> f64 {
        self.owners
            .get(owner.index())
            .map_or(0.0, |stats| stats.exposure)
    }

    /// Total sensitivity-weighted exposure across all owners.
    pub fn total_exposure(&self) -> f64 {
        self.total_exposure
    }

    /// Records concerning one owner (within the retained raw window).
    pub fn records_for(&self, owner: NodeId) -> impl Iterator<Item = &DisclosureRecord> {
        self.records.iter().filter(move |r| r.owner == owner)
    }

    /// Drops records older than `horizon` (retention enforcement on the
    /// ledger itself) and rebuilds the aggregates from the survivors, so
    /// the counters match a ledger that never saw the purged flows.
    /// Returns how many retained records were purged.
    ///
    /// With a raw-record cap, records evicted from the raw window carry
    /// no timestamp any more, so a purge resets the aggregates to the
    /// surviving *retained* window — evicted history is forgotten along
    /// with the purge, whatever its age.
    pub fn purge_before(&mut self, horizon: SimTime) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.at >= horizon);
        let purged = before - self.records.len();
        let capped_history = self.raw_record_cap.is_some() && self.total as usize > before;
        if purged > 0 || capped_history {
            self.rebuild_aggregates();
        }
        purged
    }

    /// Recomputes every counter from the retained raw records, in record
    /// order — the same accumulation order `push` uses, so the rebuilt
    /// state is exactly what incremental maintenance would have produced.
    fn rebuild_aggregates(&mut self) {
        self.owners.clear();
        self.total = 0;
        self.compliant = 0;
        self.user_breaches = 0;
        self.system_breaches = 0;
        self.total_exposure = 0.0;
        let records = std::mem::take(&mut self.records);
        let cap = self.raw_record_cap.take();
        for record in &records {
            self.push(*record);
        }
        self.records = records;
        self.raw_record_cap = cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_ledger_is_fully_respected() {
        let l = DisclosureLedger::new();
        assert_eq!(l.respect_rate(), 1.0);
        assert_eq!(l.respect_rate_for(NodeId(0)), 1.0);
        assert!(l.is_empty());
        assert_eq!(l.total_exposure(), 0.0);
    }

    #[test]
    fn respect_rate_counts_breaches() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(1),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        l.record_disclosure(
            t(2),
            NodeId(0),
            NodeId(2),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        l.record_breach(
            t(3),
            NodeId(0),
            NodeId(3),
            DataCategory::Content,
            Purpose::Commercial,
            BreachCause::System,
        );
        assert!((l.respect_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(l.breach_count(None), 1);
        assert_eq!(l.breach_count(Some(BreachCause::System)), 1);
        assert_eq!(l.breach_count(Some(BreachCause::MaliciousUser)), 0);
    }

    #[test]
    fn per_owner_rates_are_independent() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(9),
            DataCategory::Profile,
            Purpose::Social,
            false,
        );
        l.record_breach(
            t(2),
            NodeId(1),
            NodeId(9),
            DataCategory::Profile,
            Purpose::Social,
            BreachCause::MaliciousUser,
        );
        assert_eq!(l.respect_rate_for(NodeId(0)), 1.0);
        assert_eq!(l.respect_rate_for(NodeId(1)), 0.0);
        assert_eq!(l.respect_rate_for(NodeId(7)), 1.0, "no data, no violation");
    }

    #[test]
    fn exposure_weights_sensitivity_and_anonymization() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(1),
            DataCategory::Location,
            Purpose::Social,
            false,
        );
        l.record_disclosure(
            t(2),
            NodeId(0),
            NodeId(1),
            DataCategory::Location,
            Purpose::Social,
            true,
        );
        let expected = 1.0 + 0.25;
        assert!((l.exposure_for(NodeId(0)) - expected).abs() < 1e-12);
        assert!((l.total_exposure() - expected).abs() < 1e-12);
    }

    #[test]
    fn purge_enforces_retention() {
        let mut l = DisclosureLedger::new();
        for s in 0..10 {
            l.record_disclosure(
                t(s),
                NodeId(0),
                NodeId(1),
                DataCategory::Content,
                Purpose::Social,
                false,
            );
        }
        let purged = l.purge_before(t(5));
        assert_eq!(purged, 5);
        assert_eq!(l.len(), 5);
        assert!(l.records().iter().all(|r| r.at >= t(5)));
    }

    #[test]
    fn purge_rebuilds_aggregates() {
        let mut l = DisclosureLedger::new();
        l.record_breach(
            t(0),
            NodeId(0),
            NodeId(1),
            DataCategory::Content,
            Purpose::Social,
            BreachCause::System,
        );
        l.record_disclosure(
            t(5),
            NodeId(0),
            NodeId(1),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        assert_eq!(l.respect_rate(), 0.5);
        l.purge_before(t(1));
        assert_eq!(l.respect_rate(), 1.0, "purged breach no longer counted");
        assert_eq!(l.breach_count(None), 0);
        assert_eq!(l.len(), 1);
        assert!(
            (l.exposure_for(NodeId(0)) - DataCategory::Content.sensitivity()).abs() < 1e-12,
            "owner exposure rebuilt from survivors"
        );
    }

    #[test]
    fn records_for_filters_by_owner() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(1),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        l.record_disclosure(
            t(2),
            NodeId(1),
            NodeId(0),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        assert_eq!(l.records_for(NodeId(0)).count(), 1);
        assert_eq!(l.records_for(NodeId(1)).count(), 1);
        assert_eq!(l.records_for(NodeId(2)).count(), 0);
    }

    #[test]
    fn aggregates_match_a_scan_of_the_records() {
        // The counters must agree with recomputing every query from the
        // raw log — the pre-optimization implementation.
        let mut l = DisclosureLedger::new();
        let categories = [
            DataCategory::Content,
            DataCategory::Profile,
            DataCategory::Location,
        ];
        for i in 0..50u64 {
            let owner = NodeId((i % 7) as u32);
            let recipient = NodeId(((i + 1) % 7) as u32);
            let category = categories[(i % 3) as usize];
            match i % 5 {
                0 => l.record_breach(
                    t(i),
                    owner,
                    recipient,
                    category,
                    Purpose::Social,
                    BreachCause::MaliciousUser,
                ),
                1 => l.record_breach(
                    t(i),
                    owner,
                    recipient,
                    category,
                    Purpose::Reputation,
                    BreachCause::System,
                ),
                _ => l.record_disclosure(
                    t(i),
                    owner,
                    recipient,
                    category,
                    Purpose::Social,
                    i % 2 == 0,
                ),
            }
        }
        let records: Vec<DisclosureRecord> = l.records().iter().copied().collect();
        let scan_compliant = records.iter().filter(|r| r.compliant).count();
        assert_eq!(
            l.respect_rate(),
            scan_compliant as f64 / records.len() as f64
        );
        for owner in (0..7).map(NodeId) {
            let mine: Vec<_> = records.iter().filter(|r| r.owner == owner).collect();
            let scan_rate = mine.iter().filter(|r| r.compliant).count() as f64 / mine.len() as f64;
            assert_eq!(l.respect_rate_for(owner), scan_rate, "owner {owner:?}");
            let scan_exposure: f64 = mine.iter().map(|r| r.exposure()).sum();
            assert!((l.exposure_for(owner) - scan_exposure).abs() < 1e-12);
        }
        let scan_user = records
            .iter()
            .filter(|r| r.breach_cause == Some(BreachCause::MaliciousUser))
            .count();
        assert_eq!(l.breach_count(Some(BreachCause::MaliciousUser)), scan_user);
    }

    #[test]
    fn purge_with_cap_resets_aggregates_to_retained_window() {
        // Records evicted by the cap have no timestamps left; a purge
        // therefore drops them from the aggregates too, even when the
        // retained window itself is entirely newer than the horizon.
        let mut l = DisclosureLedger::with_raw_record_cap(Some(4));
        for s in 0..20 {
            if s % 3 == 0 {
                l.record_breach(
                    t(s),
                    NodeId(0),
                    NodeId(1),
                    DataCategory::Content,
                    Purpose::Social,
                    BreachCause::System,
                );
            } else {
                l.record_disclosure(
                    t(s),
                    NodeId(0),
                    NodeId(1),
                    DataCategory::Content,
                    Purpose::Social,
                    false,
                );
            }
        }
        assert_eq!(l.len(), 20);
        let purged = l.purge_before(t(10));
        assert_eq!(purged, 0, "retained window is t=16..19");
        assert_eq!(l.len(), 4, "evicted history forgotten with the purge");
        assert_eq!(
            l.breach_count(None),
            l.records().iter().filter(|r| !r.compliant).count(),
            "aggregates match the surviving window"
        );
    }

    #[test]
    fn raw_record_cap_keeps_aggregates_exact() {
        let mut capped = DisclosureLedger::with_raw_record_cap(Some(4));
        let mut full = DisclosureLedger::new();
        for s in 0..20 {
            for l in [&mut capped, &mut full] {
                if s % 3 == 0 {
                    l.record_breach(
                        t(s),
                        NodeId(0),
                        NodeId(1),
                        DataCategory::Content,
                        Purpose::Social,
                        BreachCause::System,
                    );
                } else {
                    l.record_disclosure(
                        t(s),
                        NodeId(0),
                        NodeId(1),
                        DataCategory::Content,
                        Purpose::Social,
                        false,
                    );
                }
            }
        }
        assert_eq!(capped.records().len(), 4, "raw window capped");
        assert_eq!(capped.len(), 20, "history length preserved");
        assert_eq!(capped.respect_rate(), full.respect_rate());
        assert_eq!(
            capped.respect_rate_for(NodeId(0)),
            full.respect_rate_for(NodeId(0))
        );
        assert_eq!(capped.breach_count(None), full.breach_count(None));
        assert_eq!(capped.total_exposure(), full.total_exposure());
        assert_eq!(capped.raw_record_cap(), Some(4));
    }
}
