//! The disclosure ledger: accounting for every personal-data flow.
//!
//! The paper's privacy facet is *measured*, not assumed: "privacy concerns
//! the respect of individual PPs". The ledger records every disclosure
//! (and every breach), so per-user and system-wide respect rates are exact
//! counts. Footnote 2 of the paper insists breaches by malicious users
//! and breaches by the system itself "should not be treated in the same
//! manner" — [`BreachCause`] keeps them apart.

use crate::policy::{DataCategory, Purpose};
use tsn_simnet::{NodeId, SimTime};

/// Who is to blame for a breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreachCause {
    /// A malicious *user* leaked data they were granted.
    MaliciousUser,
    /// The *system* violated a policy (bug, misconfiguration, over-sharing
    /// by the reputation pipeline).
    System,
}

/// One recorded data flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisclosureRecord {
    /// When it happened.
    pub at: SimTime,
    /// Whose data flowed.
    pub owner: NodeId,
    /// Who received it.
    pub recipient: NodeId,
    /// What category of data.
    pub category: DataCategory,
    /// Declared purpose of the flow.
    pub purpose: Purpose,
    /// Whether the flow complied with the owner's policy. Non-compliant
    /// flows are *breaches*.
    pub compliant: bool,
    /// Cause, for breaches.
    pub breach_cause: Option<BreachCause>,
    /// Whether the data was anonymized before flowing.
    pub anonymized: bool,
}

/// Append-only ledger of disclosures, with per-owner aggregation.
///
/// ```
/// use tsn_privacy::{BreachCause, DataCategory, DisclosureLedger, Purpose};
/// use tsn_simnet::{NodeId, SimTime};
///
/// let mut ledger = DisclosureLedger::new();
/// ledger.record_disclosure(SimTime::ZERO, NodeId(0), NodeId(1), DataCategory::Content, Purpose::Social, false);
/// ledger.record_breach(SimTime::ZERO, NodeId(0), NodeId(2), DataCategory::Content, Purpose::Social, BreachCause::MaliciousUser);
/// assert_eq!(ledger.respect_rate(), 0.5);
/// assert_eq!(ledger.breach_count(Some(BreachCause::System)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DisclosureLedger {
    records: Vec<DisclosureRecord>,
}

impl DisclosureLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a compliant disclosure.
    pub fn record_disclosure(
        &mut self,
        at: SimTime,
        owner: NodeId,
        recipient: NodeId,
        category: DataCategory,
        purpose: Purpose,
        anonymized: bool,
    ) {
        self.records.push(DisclosureRecord {
            at,
            owner,
            recipient,
            category,
            purpose,
            compliant: true,
            breach_cause: None,
            anonymized,
        });
    }

    /// Records a breach.
    pub fn record_breach(
        &mut self,
        at: SimTime,
        owner: NodeId,
        recipient: NodeId,
        category: DataCategory,
        purpose: Purpose,
        cause: BreachCause,
    ) {
        self.records.push(DisclosureRecord {
            at,
            owner,
            recipient,
            category,
            purpose,
            compliant: false,
            breach_cause: Some(cause),
            anonymized: false,
        });
    }

    /// All records, in order.
    pub fn records(&self) -> &[DisclosureRecord] {
        &self.records
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of breaches, optionally filtered by cause.
    pub fn breach_count(&self, cause: Option<BreachCause>) -> usize {
        self.records
            .iter()
            .filter(|r| !r.compliant && (cause.is_none() || r.breach_cause == cause))
            .count()
    }

    /// System-wide policy-respect rate: compliant / total. An empty
    /// ledger counts as fully respected (no flow, no violation).
    pub fn respect_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        let compliant = self.records.iter().filter(|r| r.compliant).count();
        compliant as f64 / self.records.len() as f64
    }

    /// Policy-respect rate for one owner's data.
    pub fn respect_rate_for(&self, owner: NodeId) -> f64 {
        let mine: Vec<&DisclosureRecord> =
            self.records.iter().filter(|r| r.owner == owner).collect();
        if mine.is_empty() {
            return 1.0;
        }
        mine.iter().filter(|r| r.compliant).count() as f64 / mine.len() as f64
    }

    /// Sensitivity-weighted exposure of one owner: Σ sensitivity(category)
    /// over their non-anonymized disclosed records (anonymized flows count
    /// 25 %). Unnormalized; see [`crate::exposure`] for the facet mapping.
    pub fn exposure_for(&self, owner: NodeId) -> f64 {
        self.records
            .iter()
            .filter(|r| r.owner == owner)
            .map(|r| r.category.sensitivity() * if r.anonymized { 0.25 } else { 1.0 })
            .sum()
    }

    /// Total sensitivity-weighted exposure across all owners.
    pub fn total_exposure(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.category.sensitivity() * if r.anonymized { 0.25 } else { 1.0 })
            .sum()
    }

    /// Records concerning one owner.
    pub fn records_for(&self, owner: NodeId) -> impl Iterator<Item = &DisclosureRecord> {
        self.records.iter().filter(move |r| r.owner == owner)
    }

    /// Drops records older than `horizon` (retention enforcement on the
    /// ledger itself). Returns how many were purged.
    pub fn purge_before(&mut self, horizon: SimTime) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.at >= horizon);
        before - self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_ledger_is_fully_respected() {
        let l = DisclosureLedger::new();
        assert_eq!(l.respect_rate(), 1.0);
        assert_eq!(l.respect_rate_for(NodeId(0)), 1.0);
        assert!(l.is_empty());
        assert_eq!(l.total_exposure(), 0.0);
    }

    #[test]
    fn respect_rate_counts_breaches() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(1),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        l.record_disclosure(
            t(2),
            NodeId(0),
            NodeId(2),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        l.record_breach(
            t(3),
            NodeId(0),
            NodeId(3),
            DataCategory::Content,
            Purpose::Commercial,
            BreachCause::System,
        );
        assert!((l.respect_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(l.breach_count(None), 1);
        assert_eq!(l.breach_count(Some(BreachCause::System)), 1);
        assert_eq!(l.breach_count(Some(BreachCause::MaliciousUser)), 0);
    }

    #[test]
    fn per_owner_rates_are_independent() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(9),
            DataCategory::Profile,
            Purpose::Social,
            false,
        );
        l.record_breach(
            t(2),
            NodeId(1),
            NodeId(9),
            DataCategory::Profile,
            Purpose::Social,
            BreachCause::MaliciousUser,
        );
        assert_eq!(l.respect_rate_for(NodeId(0)), 1.0);
        assert_eq!(l.respect_rate_for(NodeId(1)), 0.0);
        assert_eq!(l.respect_rate_for(NodeId(7)), 1.0, "no data, no violation");
    }

    #[test]
    fn exposure_weights_sensitivity_and_anonymization() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(1),
            DataCategory::Location,
            Purpose::Social,
            false,
        );
        l.record_disclosure(
            t(2),
            NodeId(0),
            NodeId(1),
            DataCategory::Location,
            Purpose::Social,
            true,
        );
        let expected = 1.0 + 0.25;
        assert!((l.exposure_for(NodeId(0)) - expected).abs() < 1e-12);
        assert!((l.total_exposure() - expected).abs() < 1e-12);
    }

    #[test]
    fn purge_enforces_retention() {
        let mut l = DisclosureLedger::new();
        for s in 0..10 {
            l.record_disclosure(
                t(s),
                NodeId(0),
                NodeId(1),
                DataCategory::Content,
                Purpose::Social,
                false,
            );
        }
        let purged = l.purge_before(t(5));
        assert_eq!(purged, 5);
        assert_eq!(l.len(), 5);
        assert!(l.records().iter().all(|r| r.at >= t(5)));
    }

    #[test]
    fn records_for_filters_by_owner() {
        let mut l = DisclosureLedger::new();
        l.record_disclosure(
            t(1),
            NodeId(0),
            NodeId(1),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        l.record_disclosure(
            t(2),
            NodeId(1),
            NodeId(0),
            DataCategory::Content,
            Purpose::Social,
            false,
        );
        assert_eq!(l.records_for(NodeId(0)).count(), 1);
        assert_eq!(l.records_for(NodeId(1)).count(), 1);
        assert_eq!(l.records_for(NodeId(2)).count(), 0);
    }
}
