//! Retention and obligation compliance.
//!
//! A privacy policy's *retention time* and *obligations* (paper §2.3)
//! only matter if someone checks them. [`RetentionTracker`] follows every
//! granted copy of personal data through its lifetime: when it must be
//! deleted (per the owner's retention period) and whether the recipient
//! actually deleted it. The resulting compliance rate feeds the OECD
//! *accountability* and *use limitation* principles with measured — not
//! assumed — values.

use crate::policy::{DataCategory, PrivacyPolicy};
use tsn_simnet::{NodeId, SimTime};

/// One live copy of personal data held by a recipient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeldCopy {
    /// Whose data.
    pub owner: NodeId,
    /// Who holds it.
    pub holder: NodeId,
    /// What category.
    pub category: DataCategory,
    /// When it was granted.
    pub granted_at: SimTime,
    /// When it must be gone (owner's retention period).
    pub expires_at: SimTime,
}

/// Tracks granted copies and deletion compliance.
#[derive(Debug, Clone, Default)]
pub struct RetentionTracker {
    live: Vec<HeldCopy>,
    deleted_on_time: u64,
    deleted_late: u64,
    expired_unhandled: u64,
}

impl RetentionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a grant under the owner's `policy`.
    pub fn grant(
        &mut self,
        owner: NodeId,
        holder: NodeId,
        policy: &PrivacyPolicy,
        now: SimTime,
    ) -> HeldCopy {
        let copy = HeldCopy {
            owner,
            holder,
            category: policy.category,
            granted_at: now,
            expires_at: now.saturating_add(policy.retention),
        };
        self.live.push(copy);
        copy
    }

    /// Number of copies currently held (live, not yet deleted).
    pub fn live_copies(&self) -> usize {
        self.live.len()
    }

    /// Live copies of one owner's data.
    pub fn live_copies_of(&self, owner: NodeId) -> usize {
        self.live.iter().filter(|c| c.owner == owner).count()
    }

    /// The holder deletes every copy of `owner`'s data it holds.
    /// Deletions after expiry count as *late* (non-compliant).
    pub fn delete(&mut self, holder: NodeId, owner: NodeId, now: SimTime) -> usize {
        let mut removed = 0;
        self.live.retain(|c| {
            if c.holder == holder && c.owner == owner {
                removed += 1;
                if now <= c.expires_at {
                    self.deleted_on_time += 1;
                } else {
                    self.deleted_late += 1;
                }
                false
            } else {
                true
            }
        });
        removed
    }

    /// Sweeps expired copies: a compliant deployment calls this as the
    /// clock advances (holders honouring `DeleteAfterRetention` delete
    /// automatically — `holder_honours(copy)` decides per copy). Returns
    /// `(honoured, violated)` counts.
    pub fn sweep_expired(
        &mut self,
        now: SimTime,
        mut holder_honours: impl FnMut(&HeldCopy) -> bool,
    ) -> (u64, u64) {
        let mut honoured = 0;
        let mut violated = 0;
        self.live.retain(|c| {
            if c.expires_at < now {
                if holder_honours(c) {
                    honoured += 1;
                } else {
                    violated += 1;
                }
                false
            } else {
                true
            }
        });
        self.deleted_on_time += honoured;
        self.expired_unhandled += violated;
        (honoured, violated)
    }

    /// Fraction of resolved copies that were handled compliantly
    /// (deleted on time). 1.0 when nothing has resolved yet.
    pub fn compliance_rate(&self) -> f64 {
        let resolved = self.deleted_on_time + self.deleted_late + self.expired_unhandled;
        if resolved == 0 {
            1.0
        } else {
            self.deleted_on_time as f64 / resolved as f64
        }
    }

    /// Copies that outlived their retention without a compliant deletion.
    pub fn violations(&self) -> u64 {
        self.deleted_late + self.expired_unhandled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_simnet::SimDuration;

    fn policy_with_retention(secs: u64) -> PrivacyPolicy {
        PrivacyPolicy::builder(DataCategory::Content)
            .retention(SimDuration::from_secs(secs))
            .build()
            .unwrap()
    }

    #[test]
    fn grants_track_expiry_from_policy() {
        let mut t = RetentionTracker::new();
        let copy = t.grant(
            NodeId(0),
            NodeId(1),
            &policy_with_retention(100),
            SimTime::from_secs(50),
        );
        assert_eq!(copy.expires_at, SimTime::from_secs(150));
        assert_eq!(t.live_copies(), 1);
        assert_eq!(t.live_copies_of(NodeId(0)), 1);
        assert_eq!(t.live_copies_of(NodeId(9)), 0);
    }

    #[test]
    fn timely_deletion_is_compliant() {
        let mut t = RetentionTracker::new();
        t.grant(
            NodeId(0),
            NodeId(1),
            &policy_with_retention(100),
            SimTime::ZERO,
        );
        let removed = t.delete(NodeId(1), NodeId(0), SimTime::from_secs(80));
        assert_eq!(removed, 1);
        assert_eq!(t.compliance_rate(), 1.0);
        assert_eq!(t.violations(), 0);
        assert_eq!(t.live_copies(), 0);
    }

    #[test]
    fn late_deletion_is_a_violation() {
        let mut t = RetentionTracker::new();
        t.grant(
            NodeId(0),
            NodeId(1),
            &policy_with_retention(100),
            SimTime::ZERO,
        );
        t.delete(NodeId(1), NodeId(0), SimTime::from_secs(200));
        assert_eq!(t.compliance_rate(), 0.0);
        assert_eq!(t.violations(), 1);
    }

    #[test]
    fn sweep_distinguishes_honouring_holders() {
        let mut t = RetentionTracker::new();
        let p = policy_with_retention(10);
        t.grant(NodeId(0), NodeId(1), &p, SimTime::ZERO); // holder 1 honours
        t.grant(NodeId(0), NodeId(2), &p, SimTime::ZERO); // holder 2 does not
        let (honoured, violated) =
            t.sweep_expired(SimTime::from_secs(60), |c| c.holder == NodeId(1));
        assert_eq!((honoured, violated), (1, 1));
        assert_eq!(t.compliance_rate(), 0.5);
        assert_eq!(t.live_copies(), 0);
    }

    #[test]
    fn sweep_leaves_unexpired_copies() {
        let mut t = RetentionTracker::new();
        t.grant(
            NodeId(0),
            NodeId(1),
            &policy_with_retention(1000),
            SimTime::ZERO,
        );
        let (honoured, violated) = t.sweep_expired(SimTime::from_secs(10), |_| true);
        assert_eq!((honoured, violated), (0, 0));
        assert_eq!(t.live_copies(), 1);
        assert_eq!(t.compliance_rate(), 1.0, "nothing resolved yet");
    }

    #[test]
    fn delete_only_touches_matching_pairs() {
        let mut t = RetentionTracker::new();
        let p = policy_with_retention(100);
        t.grant(NodeId(0), NodeId(1), &p, SimTime::ZERO);
        t.grant(NodeId(5), NodeId(1), &p, SimTime::ZERO);
        t.grant(NodeId(0), NodeId(2), &p, SimTime::ZERO);
        assert_eq!(t.delete(NodeId(1), NodeId(0), SimTime::from_secs(1)), 1);
        assert_eq!(t.live_copies(), 2);
    }

    #[test]
    fn mixed_history_compliance_rate() {
        let mut t = RetentionTracker::new();
        let p = policy_with_retention(10);
        for holder in 1..=4u32 {
            t.grant(NodeId(0), NodeId(holder), &p, SimTime::ZERO);
        }
        t.delete(NodeId(1), NodeId(0), SimTime::from_secs(5)); // on time
        t.delete(NodeId(2), NodeId(0), SimTime::from_secs(50)); // late
        t.sweep_expired(SimTime::from_secs(60), |c| c.holder == NodeId(3));
        // holder 3 honoured, holder 4 violated.
        assert_eq!(t.deleted_on_time, 2);
        assert_eq!(t.violations(), 2);
        assert_eq!(t.compliance_rate(), 0.5);
    }
}
