//! From ledger + policies + audit to the scalar *privacy facet*.
//!
//! The paper (Section 4) defines the privacy axis as "the satisfaction in
//! terms of privacy guarantees which can be the amount of information that
//! it is not necessary to share within the system or the respect of PPs".
//! [`PrivacyFacetInputs`] carries those two measured quantities plus the
//! OECD audit score; [`ExposureReport::facet`] combines them.

/// The three measured inputs of the privacy facet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyFacetInputs {
    /// Normalized information exposure in `[0, 1]` (0 = nothing shared):
    /// the disclosure policy's `exposure()` or a ledger-derived
    /// equivalent.
    pub exposure: f64,
    /// Measured PP-respect rate in `[0, 1]` from the ledger.
    pub respect_rate: f64,
    /// OECD audit overall score in `[0, 1]`.
    pub oecd_score: f64,
}

/// Weights for the three inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureWeights {
    /// Weight of (1 − exposure) — "information not shared".
    pub non_disclosure: f64,
    /// Weight of the PP-respect rate.
    pub respect: f64,
    /// Weight of the OECD audit.
    pub audit: f64,
}

impl Default for ExposureWeights {
    fn default() -> Self {
        // The paper names non-disclosure and PP respect as the two primary
        // readings; the audit is a structural backstop.
        ExposureWeights {
            non_disclosure: 0.4,
            respect: 0.4,
            audit: 0.2,
        }
    }
}

/// The privacy facet and its decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureReport {
    /// The inputs that produced this report.
    pub inputs: PrivacyFacetInputs,
    /// The combined facet in `[0, 1]`.
    pub facet: f64,
}

impl PrivacyFacetInputs {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("exposure", self.exposure),
            ("respect_rate", self.respect_rate),
            ("oecd_score", self.oecd_score),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        Ok(())
    }

    /// Computes the facet under `weights`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are invalid or weights are all zero.
    pub fn facet_with(&self, weights: &ExposureWeights) -> ExposureReport {
        if let Err(e) = self.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on inputs that validate() rejects; fallible callers validate first")
            panic!("invalid privacy facet inputs: {e}");
        }
        let total = weights.non_disclosure + weights.respect + weights.audit;
        assert!(total > 0.0, "weights must not all be zero");
        let facet = (weights.non_disclosure * (1.0 - self.exposure)
            + weights.respect * self.respect_rate
            + weights.audit * self.oecd_score)
            / total;
        ExposureReport {
            inputs: *self,
            facet,
        }
    }

    /// Computes the facet under default weights.
    pub fn facet(&self) -> ExposureReport {
        self.facet_with(&ExposureWeights::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_privacy_scores_one() {
        let r = PrivacyFacetInputs {
            exposure: 0.0,
            respect_rate: 1.0,
            oecd_score: 1.0,
        }
        .facet();
        assert_eq!(r.facet, 1.0);
    }

    #[test]
    fn total_exposure_with_breaches_scores_zero() {
        let r = PrivacyFacetInputs {
            exposure: 1.0,
            respect_rate: 0.0,
            oecd_score: 0.0,
        }
        .facet();
        assert_eq!(r.facet, 0.0);
    }

    #[test]
    fn facet_decreases_with_exposure() {
        let f = |e: f64| {
            PrivacyFacetInputs {
                exposure: e,
                respect_rate: 0.9,
                oecd_score: 0.8,
            }
            .facet()
            .facet
        };
        assert!(f(0.0) > f(0.5));
        assert!(f(0.5) > f(1.0));
    }

    #[test]
    fn facet_increases_with_respect() {
        let f = |r: f64| {
            PrivacyFacetInputs {
                exposure: 0.5,
                respect_rate: r,
                oecd_score: 0.8,
            }
            .facet()
            .facet
        };
        assert!(f(1.0) > f(0.5));
    }

    #[test]
    fn custom_weights_reweight() {
        let inputs = PrivacyFacetInputs {
            exposure: 1.0,
            respect_rate: 1.0,
            oecd_score: 0.0,
        };
        let only_respect = ExposureWeights {
            non_disclosure: 0.0,
            respect: 1.0,
            audit: 0.0,
        };
        assert_eq!(inputs.facet_with(&only_respect).facet, 1.0);
        let only_disclosure = ExposureWeights {
            non_disclosure: 1.0,
            respect: 0.0,
            audit: 0.0,
        };
        assert_eq!(inputs.facet_with(&only_disclosure).facet, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid privacy facet inputs")]
    fn invalid_inputs_panic() {
        let _ = PrivacyFacetInputs {
            exposure: 2.0,
            respect_rate: 0.5,
            oecd_score: 0.5,
        }
        .facet();
    }

    #[test]
    fn validation_messages_name_the_field() {
        let e = PrivacyFacetInputs {
            exposure: 0.5,
            respect_rate: 1.5,
            oecd_score: 0.5,
        }
        .validate()
        .unwrap_err();
        assert!(e.contains("respect_rate"));
    }
}
