//! # tsn-privacy — privacy policies, enforcement and accounting
//!
//! The privacy facet of the `tsn` reproduction. The paper (Section 2.3)
//! grounds privacy in three sources, all implemented here:
//!
//! * **Privacy policies** ([`policy`]) in the style of P3P (ref \[9\]) and
//!   PriServ (ref \[12\]): authorized users, allowed operations, access
//!   purposes, access conditions, retention time, obligations and the
//!   *minimal trust level* required for access;
//! * **The OECD guidelines** (ref \[16\]; [`oecd`]): an auditable checklist
//!   of the eight principles (collection limitation, purpose
//!   specification, use limitation, data quality, security safeguards,
//!   openness, individual participation, accountability) evaluated
//!   against a system configuration;
//! * **Disclosure accounting** ([`ledger`]): every flow of personal data
//!   is recorded — what, whose, to whom, for which purpose, under which
//!   policy — so "privacy respect" is a measured rate, not an assumption,
//!   and breaches are classified as *user-caused* vs *system-caused*
//!   (the paper's footnote 2 insists on that distinction).
//!
//! [`enforcement`] is the PriServ-like decision engine gluing these
//! together: a request is granted only when the requester, operation,
//! purpose, conditions and trust level all satisfy the owner's policy.
//! [`exposure`] turns the ledger into the scalar *privacy facet* used by
//! `tsn-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enforcement;
pub mod exposure;
pub mod ledger;
pub mod oecd;
pub mod policy;
pub mod retention;

pub use enforcement::{AccessDecision, AccessRequest, DenialReason, Enforcer};
pub use exposure::{ExposureReport, PrivacyFacetInputs};
pub use ledger::{BreachCause, DisclosureLedger, DisclosureRecord};
pub use oecd::{OecdAudit, OecdPrinciple, SystemPrivacyProfile};
pub use policy::{
    AccessCondition, DataCategory, Obligation, Operation, PolicyError, PrivacyPolicy, Purpose,
};
pub use retention::{HeldCopy, RetentionTracker};
pub use tsn_simnet::NodeId;
