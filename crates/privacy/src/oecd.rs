//! The OECD privacy-guideline audit (paper ref \[16\]).
//!
//! The paper lists the eight OECD principles a system "should consider".
//! [`OecdAudit`] evaluates a [`SystemPrivacyProfile`] — a structural
//! description of how a configuration handles personal data — against
//! each principle, yielding a per-principle score and an overall `\[0, 1\]`
//! audit score that feeds the privacy facet.

use std::fmt;

/// The eight OECD privacy principles (1980 guidelines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OecdPrinciple {
    /// Data collection is limited to what is needed.
    CollectionLimitation,
    /// Purposes are specified before collection.
    PurposeSpecification,
    /// Use is limited to the specified purposes.
    UseLimitation,
    /// Data kept accurate, complete, up to date.
    DataQuality,
    /// Reasonable security safeguards exist.
    SecuritySafeguards,
    /// Practices and policies are open/visible.
    Openness,
    /// Individuals can access and correct their data.
    IndividualParticipation,
    /// Someone is accountable for compliance.
    Accountability,
}

impl OecdPrinciple {
    /// All eight principles in the guideline's order.
    pub const ALL: [OecdPrinciple; 8] = [
        OecdPrinciple::CollectionLimitation,
        OecdPrinciple::PurposeSpecification,
        OecdPrinciple::UseLimitation,
        OecdPrinciple::DataQuality,
        OecdPrinciple::SecuritySafeguards,
        OecdPrinciple::Openness,
        OecdPrinciple::IndividualParticipation,
        OecdPrinciple::Accountability,
    ];
}

impl fmt::Display for OecdPrinciple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OecdPrinciple::CollectionLimitation => "collection limitation",
            OecdPrinciple::PurposeSpecification => "purpose specification",
            OecdPrinciple::UseLimitation => "use limitation",
            OecdPrinciple::DataQuality => "data quality",
            OecdPrinciple::SecuritySafeguards => "security safeguards",
            OecdPrinciple::Openness => "openness",
            OecdPrinciple::IndividualParticipation => "individual participation",
            OecdPrinciple::Accountability => "accountability",
        };
        f.write_str(s)
    }
}

/// Structural facts about how a system configuration treats personal
/// data; the audit's input. All fractions/levels are in `\[0, 1\]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemPrivacyProfile {
    /// Fraction of *potentially collectable* fields the system actually
    /// collects (lower = better collection limitation). The disclosure
    /// policy's exposure maps directly here.
    pub collection_fraction: f64,
    /// Whether every data flow carries a declared purpose.
    pub purposes_declared: bool,
    /// Measured fraction of flows that honoured their declared purpose
    /// (from the ledger; use limitation).
    pub purpose_respect_rate: f64,
    /// Freshness of reputation inputs (aging / retention applied?).
    pub data_quality_controls: bool,
    /// Whether anonymization / noise safeguards are active.
    pub safeguards_active: bool,
    /// Whether policies are user-visible (always true for published PPs).
    pub policies_published: bool,
    /// Whether users can read and update their own policies and data.
    pub user_controls: bool,
    /// Whether breaches are attributed (ledger with causes = yes).
    pub breaches_attributed: bool,
}

impl SystemPrivacyProfile {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.collection_fraction) {
            return Err("collection_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.purpose_respect_rate) {
            return Err("purpose_respect_rate must be in [0,1]".into());
        }
        Ok(())
    }
}

/// The audit result.
#[derive(Debug, Clone, PartialEq)]
pub struct OecdAudit {
    scores: Vec<(OecdPrinciple, f64)>,
}

impl OecdAudit {
    /// Audits a profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid; call
    /// [`SystemPrivacyProfile::validate`] first to handle errors.
    pub fn evaluate(profile: &SystemPrivacyProfile) -> Self {
        if let Err(e) = profile.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a profile that validate() rejects; fallible callers validate first")
            panic!("invalid privacy profile: {e}");
        }
        let b = |x: bool| if x { 1.0 } else { 0.0 };
        let scores = vec![
            (
                OecdPrinciple::CollectionLimitation,
                1.0 - profile.collection_fraction,
            ),
            (
                OecdPrinciple::PurposeSpecification,
                b(profile.purposes_declared),
            ),
            (OecdPrinciple::UseLimitation, profile.purpose_respect_rate),
            (OecdPrinciple::DataQuality, b(profile.data_quality_controls)),
            (
                OecdPrinciple::SecuritySafeguards,
                b(profile.safeguards_active),
            ),
            (OecdPrinciple::Openness, b(profile.policies_published)),
            (
                OecdPrinciple::IndividualParticipation,
                b(profile.user_controls),
            ),
            (
                OecdPrinciple::Accountability,
                b(profile.breaches_attributed),
            ),
        ];
        OecdAudit { scores }
    }

    /// Score of one principle, in `\[0, 1\]`.
    pub fn score(&self, principle: OecdPrinciple) -> f64 {
        self.scores
            .iter()
            .find(|(p, _)| *p == principle)
            .map(|(_, s)| *s)
            // tsn-lint: allow(no-unwrap, "the constructor scores all eight principles in order; the audit table is total")
            .expect("all principles are scored")
    }

    /// The overall audit score: unweighted mean over the eight principles
    /// (the guidelines present them as co-equal).
    pub fn overall(&self) -> f64 {
        self.scores.iter().map(|(_, s)| s).sum::<f64>() / self.scores.len() as f64
    }

    /// Principles scoring below `threshold`, for audit reports.
    pub fn failing(&self, threshold: f64) -> Vec<OecdPrinciple> {
        self.scores
            .iter()
            .filter(|(_, s)| *s < threshold)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Iterates `(principle, score)` in guideline order.
    pub fn iter(&self) -> impl Iterator<Item = (OecdPrinciple, f64)> + '_ {
        self.scores.iter().copied()
    }
}

/// A fully compliant baseline profile (used in tests and as a reference
/// point in experiments).
pub fn best_practice_profile() -> SystemPrivacyProfile {
    SystemPrivacyProfile {
        collection_fraction: 0.0,
        purposes_declared: true,
        purpose_respect_rate: 1.0,
        data_quality_controls: true,
        safeguards_active: true,
        policies_published: true,
        user_controls: true,
        breaches_attributed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_practice_scores_one() {
        let audit = OecdAudit::evaluate(&best_practice_profile());
        assert_eq!(audit.overall(), 1.0);
        assert!(audit.failing(0.5).is_empty());
        for p in OecdPrinciple::ALL {
            assert_eq!(audit.score(p), 1.0, "{p}");
        }
    }

    #[test]
    fn worst_case_scores_zero() {
        let profile = SystemPrivacyProfile {
            collection_fraction: 1.0,
            purposes_declared: false,
            purpose_respect_rate: 0.0,
            data_quality_controls: false,
            safeguards_active: false,
            policies_published: false,
            user_controls: false,
            breaches_attributed: false,
        };
        let audit = OecdAudit::evaluate(&profile);
        assert_eq!(audit.overall(), 0.0);
        assert_eq!(audit.failing(0.5).len(), 8);
    }

    #[test]
    fn collection_limitation_tracks_exposure() {
        let mut profile = best_practice_profile();
        profile.collection_fraction = 0.6;
        let audit = OecdAudit::evaluate(&profile);
        assert!((audit.score(OecdPrinciple::CollectionLimitation) - 0.4).abs() < 1e-12);
        assert!(audit.overall() < 1.0);
    }

    #[test]
    fn failing_threshold_filters() {
        let mut profile = best_practice_profile();
        profile.safeguards_active = false;
        profile.purpose_respect_rate = 0.3;
        let audit = OecdAudit::evaluate(&profile);
        let failing = audit.failing(0.5);
        assert_eq!(
            failing,
            vec![
                OecdPrinciple::UseLimitation,
                OecdPrinciple::SecuritySafeguards
            ]
        );
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mut profile = best_practice_profile();
        profile.collection_fraction = 1.2;
        assert!(profile.validate().is_err());
        profile.collection_fraction = 0.5;
        profile.purpose_respect_rate = -0.1;
        assert!(profile.validate().is_err());
    }

    #[test]
    fn iter_covers_all_in_order() {
        let audit = OecdAudit::evaluate(&best_practice_profile());
        let principles: Vec<OecdPrinciple> = audit.iter().map(|(p, _)| p).collect();
        assert_eq!(principles, OecdPrinciple::ALL.to_vec());
    }

    #[test]
    fn display_names() {
        assert_eq!(OecdPrinciple::UseLimitation.to_string(), "use limitation");
    }
}
