//! The PriServ-like access-decision engine (paper ref \[12\]).
//!
//! PriServ exposes *publish* / *request* functions that honour the data
//! owner's PPs — in particular access purpose, operations and authorized
//! users. [`Enforcer::decide`] evaluates an [`AccessRequest`] against the
//! owner's [`PrivacyPolicy`] plus ambient context (social distance, the
//! requester's trust level) and returns a fully explained decision.

use crate::policy::{AccessCondition, Operation, PrivacyPolicy, Purpose};
use std::fmt;
use tsn_simnet::NodeId;

/// A request to access one item of personal data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRequest {
    /// Who asks.
    pub requester: NodeId,
    /// Whose data.
    pub owner: NodeId,
    /// What they want to do.
    pub operation: Operation,
    /// Why.
    pub purpose: Purpose,
}

/// Why a request was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenialReason {
    /// Requester not in the authorized set.
    NotAuthorized,
    /// Operation not allowed by the policy.
    OperationNotAllowed,
    /// Purpose not allowed by the policy.
    PurposeNotAllowed,
    /// A condition failed (friends-only / hop limit).
    ConditionFailed,
    /// Requester's trust level below the policy minimum.
    InsufficientTrust,
}

impl fmt::Display for DenialReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DenialReason::NotAuthorized => "requester not authorized",
            DenialReason::OperationNotAllowed => "operation not allowed",
            DenialReason::PurposeNotAllowed => "purpose not allowed",
            DenialReason::ConditionFailed => "access condition failed",
            DenialReason::InsufficientTrust => "insufficient trust level",
        };
        f.write_str(s)
    }
}

/// The outcome of evaluating a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessDecision {
    /// Access granted as requested.
    Grant,
    /// Access granted but the data must be anonymized first
    /// (the `AnonymizedOnly` condition).
    GrantAnonymized,
    /// Denied, with the first failing check.
    Deny(DenialReason),
}

impl AccessDecision {
    /// Whether any form of access was granted.
    pub fn is_granted(&self) -> bool {
        matches!(
            self,
            AccessDecision::Grant | AccessDecision::GrantAnonymized
        )
    }
}

/// Ambient context the enforcer needs beyond the request itself.
///
/// Kept as a struct of closures' results rather than trait objects so the
/// engine stays trivially testable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestContext {
    /// Social-graph distance between requester and owner (`None` =
    /// unreachable).
    pub social_distance: Option<u32>,
    /// The owner's trust toward the requester, in `\[0, 1\]`.
    pub requester_trust: f64,
}

/// The decision engine. Stateless; per-decision statistics live in the
/// caller's [`crate::ledger::DisclosureLedger`].
///
/// ```
/// use tsn_privacy::enforcement::RequestContext;
/// use tsn_privacy::{AccessRequest, DataCategory, Enforcer, Operation, PrivacyPolicy, Purpose};
/// use tsn_simnet::NodeId;
///
/// let policy = PrivacyPolicy::strict(DataCategory::Content);
/// let request = AccessRequest {
///     requester: NodeId(1),
///     owner: NodeId(0),
///     operation: Operation::Read,
///     purpose: Purpose::Social,
/// };
/// let friend = RequestContext { social_distance: Some(1), requester_trust: 0.9 };
/// assert!(Enforcer::new().decide(&request, &policy, &friend).is_granted());
/// let stranger = RequestContext { social_distance: Some(3), requester_trust: 0.9 };
/// assert!(!Enforcer::new().decide(&request, &policy, &stranger).is_granted());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Enforcer;

impl Enforcer {
    /// Creates an enforcer.
    pub fn new() -> Self {
        Enforcer
    }

    /// Evaluates `request` against `policy` in `context`.
    ///
    /// Checks run in a fixed order (authorization, operation, purpose,
    /// conditions, trust) and report the *first* failure, matching how
    /// PriServ's lookup pipeline short-circuits.
    pub fn decide(
        &self,
        request: &AccessRequest,
        policy: &PrivacyPolicy,
        context: &RequestContext,
    ) -> AccessDecision {
        // Owners always access their own data.
        if request.requester == request.owner {
            return AccessDecision::Grant;
        }
        if let Some(authorized) = &policy.authorized_users {
            if !authorized.contains(&request.requester) {
                return AccessDecision::Deny(DenialReason::NotAuthorized);
            }
        }
        if !policy.operations.contains(&request.operation) {
            return AccessDecision::Deny(DenialReason::OperationNotAllowed);
        }
        if !policy.purposes.contains(&request.purpose) {
            return AccessDecision::Deny(DenialReason::PurposeNotAllowed);
        }
        let mut anonymize = false;
        for condition in &policy.conditions {
            match condition {
                AccessCondition::FriendsOnly => {
                    if context.social_distance != Some(1) {
                        return AccessDecision::Deny(DenialReason::ConditionFailed);
                    }
                }
                AccessCondition::WithinHops(h) => match context.social_distance {
                    Some(d) if d <= *h => {}
                    _ => return AccessDecision::Deny(DenialReason::ConditionFailed),
                },
                AccessCondition::AnonymizedOnly => anonymize = true,
            }
        }
        if context.requester_trust < policy.min_trust_level {
            return AccessDecision::Deny(DenialReason::InsufficientTrust);
        }
        if anonymize {
            AccessDecision::GrantAnonymized
        } else {
            AccessDecision::Grant
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DataCategory, PrivacyPolicy};
    use tsn_simnet::SimDuration;

    fn request(op: Operation, purpose: Purpose) -> AccessRequest {
        AccessRequest {
            requester: NodeId(1),
            owner: NodeId(0),
            operation: op,
            purpose,
        }
    }

    fn ctx(distance: Option<u32>, trust: f64) -> RequestContext {
        RequestContext {
            social_distance: distance,
            requester_trust: trust,
        }
    }

    #[test]
    fn permissive_policy_grants_read() {
        let policy = PrivacyPolicy::permissive(DataCategory::Content);
        let d = Enforcer::new().decide(
            &request(Operation::Read, Purpose::Social),
            &policy,
            &ctx(Some(3), 0.0),
        );
        assert_eq!(d, AccessDecision::Grant);
        assert!(d.is_granted());
    }

    #[test]
    fn owner_always_accesses_own_data() {
        let policy = PrivacyPolicy::strict(DataCategory::Location);
        let own = AccessRequest {
            requester: NodeId(0),
            owner: NodeId(0),
            operation: Operation::Share,
            purpose: Purpose::Commercial,
        };
        assert_eq!(
            Enforcer::new().decide(&own, &policy, &ctx(None, 0.0)),
            AccessDecision::Grant
        );
    }

    #[test]
    fn unauthorized_user_denied_first() {
        let policy = PrivacyPolicy::builder(DataCategory::Profile)
            .authorize_users([NodeId(9)])
            .allow_operations([Operation::Read])
            .allow_purposes([Purpose::Social])
            .build()
            .unwrap();
        let d = Enforcer::new().decide(
            &request(Operation::Read, Purpose::Social),
            &policy,
            &ctx(Some(1), 1.0),
        );
        assert_eq!(d, AccessDecision::Deny(DenialReason::NotAuthorized));
    }

    #[test]
    fn operation_and_purpose_checks() {
        let policy = PrivacyPolicy::builder(DataCategory::Content)
            .allow_operations([Operation::Read])
            .allow_purposes([Purpose::Social])
            .build()
            .unwrap();
        let e = Enforcer::new();
        assert_eq!(
            e.decide(
                &request(Operation::Share, Purpose::Social),
                &policy,
                &ctx(Some(1), 1.0)
            ),
            AccessDecision::Deny(DenialReason::OperationNotAllowed)
        );
        assert_eq!(
            e.decide(
                &request(Operation::Read, Purpose::Commercial),
                &policy,
                &ctx(Some(1), 1.0)
            ),
            AccessDecision::Deny(DenialReason::PurposeNotAllowed)
        );
    }

    #[test]
    fn friends_only_requires_distance_one() {
        let policy = PrivacyPolicy::strict(DataCategory::Content);
        let e = Enforcer::new();
        let r = request(Operation::Read, Purpose::Social);
        assert_eq!(
            e.decide(&r, &policy, &ctx(Some(2), 1.0)),
            AccessDecision::Deny(DenialReason::ConditionFailed)
        );
        assert_eq!(
            e.decide(&r, &policy, &ctx(None, 1.0)),
            AccessDecision::Deny(DenialReason::ConditionFailed)
        );
        assert_eq!(
            e.decide(&r, &policy, &ctx(Some(1), 1.0)),
            AccessDecision::Grant
        );
    }

    #[test]
    fn hop_limit_condition() {
        let policy = PrivacyPolicy::builder(DataCategory::Contacts)
            .allow_operations([Operation::Read])
            .allow_purposes([Purpose::Social])
            .condition(AccessCondition::WithinHops(2))
            .build()
            .unwrap();
        let e = Enforcer::new();
        let r = request(Operation::Read, Purpose::Social);
        assert!(e.decide(&r, &policy, &ctx(Some(2), 1.0)).is_granted());
        assert!(!e.decide(&r, &policy, &ctx(Some(3), 1.0)).is_granted());
    }

    #[test]
    fn trust_threshold_enforced() {
        let policy = PrivacyPolicy::strict(DataCategory::Content);
        let e = Enforcer::new();
        let r = request(Operation::Read, Purpose::Social);
        assert_eq!(
            e.decide(&r, &policy, &ctx(Some(1), 0.69)),
            AccessDecision::Deny(DenialReason::InsufficientTrust)
        );
        assert_eq!(
            e.decide(&r, &policy, &ctx(Some(1), 0.71)),
            AccessDecision::Grant
        );
    }

    #[test]
    fn anonymized_only_downgrades_grant() {
        let policy = PrivacyPolicy::builder(DataCategory::Behavior)
            .allow_operations([Operation::Aggregate])
            .allow_purposes([Purpose::Reputation])
            .condition(AccessCondition::AnonymizedOnly)
            .build()
            .unwrap();
        let d = Enforcer::new().decide(
            &request(Operation::Aggregate, Purpose::Reputation),
            &policy,
            &ctx(Some(4), 0.5),
        );
        assert_eq!(d, AccessDecision::GrantAnonymized);
        assert!(d.is_granted());
    }

    #[test]
    fn denial_reasons_display() {
        assert_eq!(
            DenialReason::InsufficientTrust.to_string(),
            "insufficient trust level"
        );
    }

    #[test]
    fn first_failure_wins() {
        // Both operation and trust fail; operation is reported (earlier).
        let policy = PrivacyPolicy::builder(DataCategory::Content)
            .allow_operations([Operation::Read])
            .allow_purposes([Purpose::Social])
            .min_trust_level(0.9)
            .retention(SimDuration::from_secs(60))
            .build()
            .unwrap();
        let d = Enforcer::new().decide(
            &request(Operation::Share, Purpose::Social),
            &policy,
            &ctx(Some(1), 0.0),
        );
        assert_eq!(d, AccessDecision::Deny(DenialReason::OperationNotAllowed));
    }
}
