//! DHT-style score managers — EigenTrust/PowerTrust's distribution
//! strategy as a protocol.
//!
//! Each subject's evidence lives at `k` deterministic *manager replicas*
//! (in a real deployment, the k DHT nodes closest to `hash(subject)`).
//! Raters send reports to all replicas; a consumer queries the replicas
//! and averages the answers it receives. Replication hides individual
//! manager crashes; losing every replica of a subject loses its history.

use crate::host::{ProtocolCosts, RoundDriver};
use std::collections::HashMap;
use tsn_simnet::{Envelope, Network, NodeId, Payload, SimDuration};

/// Manager-protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// Replicas per subject.
    pub replicas: usize,
    /// Length of one protocol round.
    pub round_length: SimDuration,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            replicas: 3,
            round_length: SimDuration::from_millis(100),
        }
    }
}

/// Estimate quality snapshot (see [`ManagerNetwork::report`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerReport {
    /// Mean absolute error of answered queries vs the oracle.
    pub mean_error: f64,
    /// Fraction of queries that received at least one answer.
    pub answer_rate: f64,
    /// Protocol costs so far.
    pub costs: ProtocolCosts,
}

/// Per-manager storage for one subject: evidence accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct Shard {
    sum: f64,
    count: f64,
}

/// The score-manager protocol instance.
#[derive(Debug)]
pub struct ManagerNetwork {
    config: ManagerConfig,
    driver: RoundDriver,
    n: usize,
    /// `stores[manager][subject] -> shard`.
    stores: Vec<HashMap<u32, Shard>>,
    /// Outbound work queued by the application between rounds.
    pending: Vec<(NodeId, NodeId, Payload)>,
    /// Collected answers: (requester, subject) → scores received.
    answers: HashMap<(u32, u32), Vec<f64>>,
    /// Queries issued: (requester, subject).
    queries_issued: u64,
    /// Ground truth totals per subject.
    truth: Vec<(f64, f64)>,
}

impl ManagerNetwork {
    /// Builds the protocol over an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero or exceeds the node count.
    pub fn new(network: Network, config: ManagerConfig) -> Self {
        let n = network.node_count();
        assert!(config.replicas > 0, "replicas must be positive");
        assert!(config.replicas <= n, "more replicas than nodes");
        ManagerNetwork {
            config,
            driver: RoundDriver::new(network, config.round_length),
            n,
            stores: vec![HashMap::new(); n],
            pending: Vec::new(),
            answers: HashMap::new(),
            queries_issued: 0,
            truth: vec![(0.0, 0.0); n],
        }
    }

    /// The deterministic manager replica set of `subject`.
    ///
    /// A splitmix-style hash spreads subjects across the id space; the
    /// `k` replicas are consecutive offsets, matching "k closest nodes"
    /// in a real DHT.
    pub fn managers(&self, subject: NodeId) -> Vec<NodeId> {
        let mut x = (u64::from(subject.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        let base = (x % self.n as u64) as usize;
        (0..self.config.replicas)
            .map(|k| NodeId::from_index((base + k * 7 + k) % self.n))
            .collect()
    }

    /// Queues a report from `rater` about `subject`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 1]`.
    pub fn submit_report(&mut self, rater: NodeId, subject: NodeId, value: f64) {
        assert!((0.0..=1.0).contains(&value), "value must be in [0,1]");
        self.truth[subject.index()].0 += value;
        self.truth[subject.index()].1 += 1.0;
        for manager in self.managers(subject) {
            self.pending.push((
                rater,
                manager,
                Payload::record("mgr.report", vec![f64::from(subject.0), value]),
            ));
        }
    }

    /// Queues a score query from `requester` about `subject`.
    pub fn submit_query(&mut self, requester: NodeId, subject: NodeId) {
        self.queries_issued += 1;
        for manager in self.managers(subject) {
            self.pending.push((
                requester,
                manager,
                Payload::record("mgr.query", vec![f64::from(subject.0)]),
            ));
        }
    }

    /// Executes one protocol round: flushes queued application traffic,
    /// then processes whatever arrived (reports stored, queries answered,
    /// answers collected).
    pub fn round(&mut self) {
        let ManagerNetwork {
            driver,
            stores,
            pending,
            answers,
            ..
        } = self;
        let mut outbox: HashMap<NodeId, Vec<(NodeId, Payload)>> = HashMap::new();
        for (from, to, payload) in pending.drain(..) {
            outbox.entry(from).or_default().push((to, payload));
        }
        driver.round(|node, inbox| {
            let mut sends = outbox.remove(&node).unwrap_or_default();
            for envelope in inbox {
                match classify(&envelope) {
                    Some(Msg::Report { subject, value }) => {
                        let shard = stores[node.index()].entry(subject).or_default();
                        shard.sum += value;
                        shard.count += 1.0;
                    }
                    Some(Msg::Query { subject }) => {
                        let shard = stores[node.index()]
                            .get(&subject)
                            .copied()
                            .unwrap_or_default();
                        let score = (shard.sum + 1.0) / (shard.count + 2.0);
                        sends.push((
                            envelope.from,
                            Payload::record("mgr.answer", vec![f64::from(subject), score]),
                        ));
                    }
                    Some(Msg::Answer { subject, score }) => {
                        answers.entry((node.0, subject)).or_default().push(score);
                    }
                    None => {}
                }
            }
            sends
        });
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// The answer `requester` holds about `subject`: the mean of replica
    /// answers, or `None` if nothing arrived (yet).
    pub fn answer(&self, requester: NodeId, subject: NodeId) -> Option<f64> {
        self.answers
            .get(&(requester.0, subject.0))
            .map(|scores| scores.iter().sum::<f64>() / scores.len() as f64)
    }

    /// The oracle score a centralized aggregator would hold.
    pub fn oracle(&self, subject: NodeId) -> f64 {
        let (sum, count) = self.truth[subject.index()];
        (sum + 1.0) / (count + 2.0)
    }

    /// Quality snapshot across all collected answers.
    pub fn report(&self) -> ManagerReport {
        let mut total_error = 0.0;
        let mut answered_subjects = 0u64;
        for (&(_, subject), scores) in &self.answers {
            let mean_answer = scores.iter().sum::<f64>() / scores.len() as f64;
            total_error += (mean_answer - self.oracle(NodeId(subject))).abs();
            answered_subjects += 1;
        }
        ManagerReport {
            mean_error: if answered_subjects == 0 {
                0.0
            } else {
                total_error / answered_subjects as f64
            },
            answer_rate: if self.queries_issued == 0 {
                0.0
            } else {
                answered_subjects as f64 / self.queries_issued as f64
            },
            costs: self.driver.costs(),
        }
    }

    /// Mutable network access (crash injection).
    pub fn network_mut(&mut self) -> &mut Network {
        self.driver.network_mut()
    }
}

enum Msg {
    Report { subject: u32, value: f64 },
    Query { subject: u32 },
    Answer { subject: u32, score: f64 },
}

fn classify(envelope: &Envelope) -> Option<Msg> {
    match &envelope.payload {
        Payload::Record { tag, fields } => match (tag.as_str(), fields.as_slice()) {
            ("mgr.report", [subject, value]) => Some(Msg::Report {
                subject: *subject as u32,
                value: *value,
            }),
            ("mgr.query", [subject]) => Some(Msg::Query {
                subject: *subject as u32,
            }),
            ("mgr.answer", [subject, score]) => Some(Msg::Answer {
                subject: *subject as u32,
                score: *score,
            }),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_simnet::{latency::ConstantLatency, BernoulliLoss, NetworkConfig, NoLoss, SimRng};

    fn build(n: usize, replicas: usize, loss: f64, seed: u64) -> ManagerNetwork {
        let config = NetworkConfig {
            latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
            loss: if loss > 0.0 {
                Box::new(BernoulliLoss::new(loss))
            } else {
                Box::new(NoLoss)
            },
        };
        let mut network = Network::new(config, SimRng::seed_from_u64(seed));
        for _ in 0..n {
            network.add_node();
        }
        ManagerNetwork::new(
            network,
            ManagerConfig {
                replicas,
                ..Default::default()
            },
        )
    }

    #[test]
    fn managers_are_deterministic_distinct_and_replicated() {
        let m = build(20, 3, 0.0, 0);
        for subject in 0..20u32 {
            let a = m.managers(NodeId(subject));
            let b = m.managers(NodeId(subject));
            assert_eq!(a, b);
            assert_eq!(a.len(), 3);
            let mut dedup = a.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct: {a:?}");
        }
    }

    #[test]
    fn report_query_answer_matches_oracle() {
        let mut m = build(20, 3, 0.0, 1);
        for _ in 0..5 {
            m.submit_report(NodeId(1), NodeId(7), 0.8);
        }
        m.round(); // reports travel
        m.round(); // reports stored
        m.submit_query(NodeId(2), NodeId(7));
        m.run(3); // query travels, is answered, answer returns
        let answer = m.answer(NodeId(2), NodeId(7)).expect("answer arrived");
        let oracle = m.oracle(NodeId(7));
        assert!(
            (answer - oracle).abs() < 1e-9,
            "answer {answer} vs oracle {oracle}"
        );
        assert!((oracle - (0.8 * 5.0 + 1.0) / 7.0).abs() < 1e-12);
    }

    #[test]
    fn unanswered_query_returns_none_then_some() {
        let mut m = build(10, 2, 0.0, 2);
        m.submit_query(NodeId(0), NodeId(5));
        assert_eq!(m.answer(NodeId(0), NodeId(5)), None);
        m.run(3);
        assert!(m.answer(NodeId(0), NodeId(5)).is_some());
    }

    #[test]
    fn replica_crash_is_tolerated() {
        let mut m = build(20, 3, 0.0, 3);
        for _ in 0..4 {
            m.submit_report(NodeId(0), NodeId(9), 1.0);
        }
        m.run(2);
        // Kill one replica of subject 9.
        let victim = m.managers(NodeId(9))[0];
        m.network_mut().set_alive(victim, false);
        m.submit_query(NodeId(1), NodeId(9));
        m.run(3);
        let answer = m
            .answer(NodeId(1), NodeId(9))
            .expect("remaining replicas answer");
        assert!(answer > 0.5, "evidence survives a replica crash: {answer}");
    }

    #[test]
    fn losing_all_replicas_loses_history() {
        let mut m = build(20, 2, 0.0, 4);
        for _ in 0..6 {
            m.submit_report(NodeId(0), NodeId(3), 1.0);
        }
        m.run(2);
        for replica in m.managers(NodeId(3)) {
            m.network_mut().set_alive(replica, false);
        }
        m.submit_query(NodeId(1), NodeId(3));
        m.run(4);
        assert_eq!(
            m.answer(NodeId(1), NodeId(3)),
            None,
            "no replica left to answer"
        );
        let report = m.report();
        assert!(report.answer_rate < 1.0);
    }

    #[test]
    fn loss_reduces_answer_rate() {
        let run = |loss: f64| {
            let mut m = build(30, 2, loss, 5);
            for s in 0..30u32 {
                m.submit_report(NodeId((s + 1) % 30), NodeId(s), 0.7);
            }
            m.run(2);
            for s in 0..30u32 {
                m.submit_query(NodeId((s + 2) % 30), NodeId(s));
            }
            m.run(4);
            m.report().answer_rate
        };
        assert!(run(0.5) < run(0.0), "loss must cost answers");
        assert_eq!(run(0.0), 1.0);
    }

    #[test]
    fn costs_count_replica_fanout() {
        let mut m = build(10, 3, 0.0, 6);
        m.submit_report(NodeId(0), NodeId(1), 0.5);
        m.round();
        assert_eq!(
            m.report().costs.messages,
            3,
            "one report → replicas messages"
        );
    }

    #[test]
    #[should_panic(expected = "more replicas than nodes")]
    fn too_many_replicas_panics() {
        let _ = build(2, 3, 0.0, 7);
    }
}
