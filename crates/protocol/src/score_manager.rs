//! DHT-style score managers — EigenTrust/PowerTrust's distribution
//! strategy as a protocol.
//!
//! Each subject's evidence lives at `k` deterministic *manager replicas*
//! (in a real deployment, the k DHT nodes closest to `hash(subject)`).
//! Raters send reports to all replicas; a consumer queries the replicas
//! and averages the answers it receives. Replication hides individual
//! manager crashes; losing every replica of a subject loses its history.
//!
//! Storage is sparse and sorted: shards and collected answers live in
//! per-owner rows of subject-sorted entries (binary search + in-place
//! insert, the same idiom as the reputation crate's `LocalMatrix`) —
//! memory proportional to traffic, no hashing, and (unlike the
//! `HashMap` layout it replaced) a fixed iteration order, so reports
//! are bit-identical across processes. Queued application traffic is
//! flushed through a sender-sorted cursor instead of a per-round
//! `HashMap` outbox.

use crate::host::{ProtocolCosts, RoundDriver};
use tsn_simnet::{
    DynamicsEvent, DynamicsPlan, DynamicsRuntime, Envelope, MembershipConfig, MembershipRuntime,
    Network, NodeId, Payload, SimDuration, SimRng, Tag,
};

/// Message tags of the manager protocol.
const MGR_REPORT: Tag = Tag::new("mgr.report");
const MGR_QUERY: Tag = Tag::new("mgr.query");
const MGR_ANSWER: Tag = Tag::new("mgr.answer");

/// Manager-protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// Replicas per subject.
    pub replicas: usize,
    /// Length of one protocol round.
    pub round_length: SimDuration,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            replicas: 3,
            round_length: SimDuration::from_millis(100),
        }
    }
}

/// Estimate quality snapshot (see [`ManagerNetwork::report`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerReport {
    /// Mean absolute error of answered queries vs the oracle.
    pub mean_error: f64,
    /// Fraction of queries that received at least one answer.
    pub answer_rate: f64,
    /// Protocol costs so far.
    pub costs: ProtocolCosts,
}

/// Per-manager storage for one subject: evidence accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct Shard {
    sum: f64,
    count: f64,
}

/// Sparse row-major storage: one subject-sorted row per owner.
/// Lookups are a binary search, iteration is ascending
/// `(owner, subject)` — deterministic — and memory tracks the number
/// of distinct `(owner, subject)` pairs actually touched, never `n²`.
#[derive(Debug)]
struct SparseRows<T> {
    rows: Vec<Vec<(u32, T)>>,
}

impl<T: Default> SparseRows<T> {
    fn new(owners: usize) -> Self {
        let mut rows = Vec::new();
        rows.resize_with(owners, Vec::new);
        SparseRows { rows }
    }

    /// The entry for `(owner, key)`, created at its sorted position on
    /// first touch.
    fn entry(&mut self, owner: usize, key: u32) -> &mut T {
        let row = &mut self.rows[owner];
        let at = match row.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(at) => at,
            Err(at) => {
                row.insert(at, (key, T::default()));
                at
            }
        };
        &mut row[at].1
    }

    fn get(&self, owner: usize, key: u32) -> Option<&T> {
        // `None` for unknown owners too, matching the HashMap lookup
        // this replaced (public queries may probe arbitrary ids).
        let row = self.rows.get(owner)?;
        row.binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|at| &row[at].1)
    }

    /// All entries in ascending `(owner, key)` order.
    fn iter(&self) -> impl Iterator<Item = (u32, &T)> + '_ {
        self.rows
            .iter()
            .flat_map(|row| row.iter().map(|(k, v)| (*k, v)))
    }

    /// Removes `key` from every owner's row (whitewash forgetting).
    fn remove_key(&mut self, key: u32) {
        for row in &mut self.rows {
            if let Ok(at) = row.binary_search_by_key(&key, |(k, _)| *k) {
                row.remove(at);
            }
        }
    }
}

/// The score-manager protocol instance.
#[derive(Debug)]
pub struct ManagerNetwork {
    config: ManagerConfig,
    driver: RoundDriver,
    n: usize,
    /// Evidence shards, one subject-sorted row per manager.
    stores: SparseRows<Shard>,
    /// Outbound work queued by the application between rounds. Flushed
    /// once per round through a stable sender sort; `None` marks an
    /// entry already handed to the network.
    pending: Vec<(NodeId, NodeId, Option<Payload>)>,
    /// Collected answers, one subject-sorted row per requester: running
    /// (sum, count) — the mean is all the protocol ever reads.
    answers: SparseRows<(f64, f64)>,
    /// Queries issued: (requester, subject).
    queries_issued: u64,
    /// Ground truth totals per subject.
    truth: Vec<(f64, f64)>,
    /// Peer-sampling overlay; when attached, a subject's replicas are
    /// placed on peers of its bounded partial view (a node can only
    /// address peers it knows about).
    membership: Option<MembershipRuntime>,
}

impl ManagerNetwork {
    /// Builds the protocol over an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero or exceeds the node count.
    pub fn new(network: Network, config: ManagerConfig) -> Self {
        let n = network.node_count();
        assert!(config.replicas > 0, "replicas must be positive");
        assert!(config.replicas <= n, "more replicas than nodes");
        ManagerNetwork {
            config,
            driver: RoundDriver::new(network, config.round_length),
            n,
            stores: SparseRows::new(n),
            pending: Vec::new(),
            answers: SparseRows::new(n),
            queries_issued: 0,
            truth: vec![(0.0, 0.0); n],
            membership: None,
        }
    }

    /// Attaches the peer-sampling membership overlay: replica
    /// placement for a subject is then constrained to the subject's
    /// bounded partial view (shuffled once per round) instead of the
    /// global id space. An empty view degrades to self-management —
    /// the subject stores its own evidence until the overlay heals.
    /// Placement drift across shuffles is the measurable price of
    /// partial knowledge; the report/answer statistics quantify it.
    ///
    /// # Errors
    ///
    /// Returns the config's validation error, or an error when the
    /// population is too small for the relay count.
    pub fn attach_membership(&mut self, config: MembershipConfig, seed: u64) -> Result<(), String> {
        self.membership = Some(MembershipRuntime::new(self.n, config, seed)?);
        Ok(())
    }

    /// The attached membership overlay, if any.
    pub fn membership(&self) -> Option<&MembershipRuntime> {
        self.membership.as_ref()
    }

    /// The single source of replica placement: a splitmix-style hash
    /// spreads subjects across the id space, then the `k` replicas are
    /// consecutive offsets — matching "k closest nodes" in a real DHT.
    /// With the membership overlay attached the hashed offsets index
    /// into the subject's current partial view instead (consecutive
    /// view entries are distinct, so replicas stay distinct); an empty
    /// view degrades to self-management. Returns owned values so
    /// callers may keep mutating `self` while iterating.
    fn replica_ids(&self, subject: NodeId) -> ReplicaIter {
        let mut x = (u64::from(subject.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        let base = (x % self.n as u64) as usize;
        let n = self.n;
        let k = self.config.replicas;
        match self.membership.as_ref().map(|m| m.view(subject)) {
            Some(view) if view.is_empty() => ReplicaIter::View {
                peers: vec![subject],
                next: 0,
            },
            Some(view) => {
                let len = view.len();
                let peers = (0..k.min(len))
                    .map(|i| view.entries()[(base + i) % len].peer)
                    .collect();
                ReplicaIter::View { peers, next: 0 }
            }
            None => ReplicaIter::Global {
                base,
                n,
                k,
                next: 0,
            },
        }
    }

    /// The deterministic manager replica set of `subject`.
    pub fn managers(&self, subject: NodeId) -> Vec<NodeId> {
        self.replica_ids(subject).collect()
    }

    /// Queues a report from `rater` about `subject`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 1]`.
    pub fn submit_report(&mut self, rater: NodeId, subject: NodeId, value: f64) {
        assert!((0.0..=1.0).contains(&value), "value must be in [0,1]");
        self.truth[subject.index()].0 += value;
        self.truth[subject.index()].1 += 1.0;
        for manager in self.replica_ids(subject) {
            let mut fields = self.driver.network_mut().pool_mut().acquire();
            fields.extend([f64::from(subject.0), value]);
            self.pending.push((
                rater,
                manager,
                Some(Payload::Record {
                    tag: MGR_REPORT,
                    fields,
                }),
            ));
        }
    }

    /// Queues a score query from `requester` about `subject`.
    pub fn submit_query(&mut self, requester: NodeId, subject: NodeId) {
        self.queries_issued += 1;
        for manager in self.replica_ids(subject) {
            let mut fields = self.driver.network_mut().pool_mut().acquire();
            fields.push(f64::from(subject.0));
            self.pending.push((
                requester,
                manager,
                Some(Payload::Record {
                    tag: MGR_QUERY,
                    fields,
                }),
            ));
        }
    }

    /// Attaches a dynamics plan (churn, partitions, regional latency)
    /// executed on the driver's clock between rounds.
    ///
    /// Manager *state* survives crash/rejoin cycles (a real node keeps
    /// its disk across restarts); only traffic is affected while a
    /// replica is down. A *whitewash* instead resets the re-entering
    /// identity's reputation: every shard and collected answer about the
    /// whitewashed subject is forgotten, so its next queries answer from
    /// the prior — reset, not inherited.
    ///
    /// # Errors
    ///
    /// Returns the plan's validation error, if any.
    pub fn attach_dynamics(&mut self, plan: DynamicsPlan, rng: SimRng) -> Result<(), String> {
        let runtime = DynamicsRuntime::new(plan, self.n, rng)?;
        self.driver.attach_dynamics(runtime);
        Ok(())
    }

    /// The attached dynamics runtime, if any.
    pub fn dynamics(&self) -> Option<&DynamicsRuntime> {
        self.driver.dynamics()
    }

    /// Forgets every stored shard, collected answer and ground-truth
    /// entry about `subject` — the whitewash semantics: a fresh identity
    /// starts from the prior.
    pub fn forget_subject(&mut self, subject: NodeId) {
        forget_subject_in(
            &mut self.stores,
            &mut self.answers,
            &mut self.truth,
            subject,
        );
    }

    /// Executes one protocol round: flushes queued application traffic,
    /// then processes whatever arrived (reports stored, queries answered,
    /// answers collected).
    pub fn round(&mut self) {
        let ManagerNetwork {
            driver,
            stores,
            pending,
            answers,
            n,
            membership,
            ..
        } = self;
        let n = *n;
        // One view shuffle per protocol round, against current
        // liveness (placement for traffic queued this round already
        // used the pre-shuffle views — consistent with "the view the
        // sender knew when it addressed the message").
        if let Some(m) = membership.as_mut() {
            let network = driver.network();
            m.shuffle_round(|p| network.is_alive(p), |_, _| true);
        }
        // Stable sort by sender: the driver steps nodes in index order,
        // so a moving cursor hands each node its queued traffic in
        // submission order — no per-round HashMap.
        pending.sort_by_key(|(from, _, _)| from.index());
        let mut cursor = 0usize;
        driver.round(|node, inbox, _network, out| {
            while cursor < pending.len() {
                let (from, to, ref mut payload) = pending[cursor];
                if from.index() > node.index() {
                    break;
                }
                cursor += 1;
                let Some(payload) = payload.take() else {
                    continue;
                };
                if from == node {
                    out.send(to, payload);
                } else {
                    // Queued by a node the driver skipped (crashed
                    // before the flush): dropped, buffer recycled.
                    out.recycle(payload);
                }
            }
            for envelope in inbox {
                match classify(envelope, n) {
                    Some(Msg::Report { subject, value }) => {
                        let shard = stores.entry(node.index(), subject);
                        shard.sum += value;
                        shard.count += 1.0;
                    }
                    Some(Msg::Query { subject }) => {
                        let shard = stores
                            .get(node.index(), subject)
                            .copied()
                            .unwrap_or_default();
                        let score = (shard.sum + 1.0) / (shard.count + 2.0);
                        let mut fields = out.fields();
                        fields.extend([f64::from(subject), score]);
                        out.send_record(envelope.from, MGR_ANSWER, fields);
                    }
                    Some(Msg::Answer { subject, score }) => {
                        let (sum, count) = answers.entry(node.index(), subject);
                        *sum += score;
                        *count += 1.0;
                    }
                    None => out.mark_malformed(),
                }
            }
        });
        // Whatever the cursor never reached was queued by trailing dead
        // nodes: drop it (matching the HashMap outbox, which discarded
        // those entries at end of round) and recycle the buffers.
        let pool = self.driver.network_mut().pool_mut();
        for (_, _, payload) in self.pending.drain(..) {
            if let Some(payload) = payload {
                pool.recycle(payload);
            }
        }
        // Whitewashed identities shed their history. Events are
        // borrowed (the driver clears them next round) and the fields
        // destructured, so no buffer is drained or allocated.
        let ManagerNetwork {
            driver,
            stores,
            answers,
            truth,
            ..
        } = self;
        if let Some(dynamics) = driver.dynamics() {
            for &(_, event) in dynamics.events() {
                if let DynamicsEvent::Whitewash { slot, .. } = event {
                    forget_subject_in(stores, answers, truth, slot);
                }
            }
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// The answer `requester` holds about `subject`: the mean of replica
    /// answers, or `None` if nothing arrived (yet).
    pub fn answer(&self, requester: NodeId, subject: NodeId) -> Option<f64> {
        self.answers
            .get(requester.index(), subject.0)
            .map(|(sum, count)| sum / count)
    }

    /// The oracle score a centralized aggregator would hold.
    pub fn oracle(&self, subject: NodeId) -> f64 {
        let (sum, count) = self.truth[subject.index()];
        (sum + 1.0) / (count + 2.0)
    }

    /// Quality snapshot across all collected answers, accumulated in
    /// fixed `(requester, subject)` order (deterministic floats).
    pub fn report(&self) -> ManagerReport {
        let mut total_error = 0.0;
        let mut answered_subjects = 0u64;
        for (subject, (sum, count)) in self.answers.iter() {
            let mean_answer = sum / count;
            total_error += (mean_answer - self.oracle(NodeId(subject))).abs();
            answered_subjects += 1;
        }
        let costs = self.driver.costs();
        ManagerReport {
            mean_error: if answered_subjects == 0 {
                0.0
            } else {
                total_error / answered_subjects as f64
            },
            answer_rate: if self.queries_issued == 0 {
                0.0
            } else {
                answered_subjects as f64 / self.queries_issued as f64
            },
            costs,
        }
    }

    /// Mutable network access (crash injection).
    pub fn network_mut(&mut self) -> &mut Network {
        self.driver.network_mut()
    }
}

/// The single source of the whitewash-forget semantics, shared by the
/// public [`ManagerNetwork::forget_subject`] and the dynamics-event
/// path inside `round()` (which works over destructured fields).
/// Owned replica-placement iterator (see [`ManagerNetwork::replica_ids`]):
/// hashed offsets over the global id space, or a snapshot of hashed
/// picks from the subject's partial view when the membership overlay is
/// attached. Owning the picks lets callers mutate the network while
/// iterating.
enum ReplicaIter {
    Global {
        base: usize,
        n: usize,
        k: usize,
        next: usize,
    },
    View {
        peers: Vec<NodeId>,
        next: usize,
    },
}

impl Iterator for ReplicaIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match self {
            ReplicaIter::Global { base, n, k, next } => {
                if *next >= *k {
                    return None;
                }
                let j = *next;
                *next += 1;
                Some(NodeId::from_index((*base + j * 7 + j) % *n))
            }
            ReplicaIter::View { peers, next } => {
                let peer = peers.get(*next).copied();
                *next += 1;
                peer
            }
        }
    }
}

fn forget_subject_in(
    stores: &mut SparseRows<Shard>,
    answers: &mut SparseRows<(f64, f64)>,
    truth: &mut [(f64, f64)],
    subject: NodeId,
) {
    stores.remove_key(subject.0);
    answers.remove_key(subject.0);
    truth[subject.index()] = (0.0, 0.0);
}

enum Msg {
    Report { subject: u32, value: f64 },
    Query { subject: u32 },
    Answer { subject: u32, score: f64 },
}

/// Parses a manager envelope; `None` (malformed) covers unknown tags,
/// wrong arity, subject ids outside `0..n`, and values/scores outside
/// `[0, 1]` (including NaN) — junk must never reach an accumulator.
fn classify(envelope: &Envelope, n: usize) -> Option<Msg> {
    let Payload::Record { tag, fields } = &envelope.payload else {
        return None;
    };
    let subject_in_range = |s: f64| s >= 0.0 && (s as usize) < n && s.fract() == 0.0;
    let unit_range = |v: f64| (0.0..=1.0).contains(&v);
    match fields.as_slice() {
        [subject, value]
            if *tag == MGR_REPORT && subject_in_range(*subject) && unit_range(*value) =>
        {
            Some(Msg::Report {
                subject: *subject as u32,
                value: *value,
            })
        }
        [subject] if *tag == MGR_QUERY && subject_in_range(*subject) => Some(Msg::Query {
            subject: *subject as u32,
        }),
        [subject, score]
            if *tag == MGR_ANSWER && subject_in_range(*subject) && unit_range(*score) =>
        {
            Some(Msg::Answer {
                subject: *subject as u32,
                score: *score,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_simnet::{latency::ConstantLatency, BernoulliLoss, NetworkConfig, NoLoss, SimRng};

    fn build(n: usize, replicas: usize, loss: f64, seed: u64) -> ManagerNetwork {
        let config = NetworkConfig {
            latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
            loss: if loss > 0.0 {
                Box::new(BernoulliLoss::new(loss))
            } else {
                Box::new(NoLoss)
            },
        };
        let mut network = Network::new(config, SimRng::seed_from_u64(seed));
        for _ in 0..n {
            network.add_node();
        }
        ManagerNetwork::new(
            network,
            ManagerConfig {
                replicas,
                ..Default::default()
            },
        )
    }

    #[test]
    fn managers_are_deterministic_distinct_and_replicated() {
        let m = build(20, 3, 0.0, 0);
        for subject in 0..20u32 {
            let a = m.managers(NodeId(subject));
            let b = m.managers(NodeId(subject));
            assert_eq!(a, b);
            assert_eq!(a.len(), 3);
            let mut dedup = a.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct: {a:?}");
        }
    }

    #[test]
    fn membership_constrains_managers_to_the_view() {
        let mut m = build(20, 3, 0.0, 4);
        m.attach_membership(MembershipConfig::default(), 0xBEEF)
            .expect("valid overlay");
        m.round(); // one shuffle populates post-bootstrap views
        for subject in 0..20u32 {
            let subject = NodeId(subject);
            let managers = m.managers(subject);
            assert!(!managers.is_empty());
            assert!(managers.len() <= 3);
            let view = m.membership().expect("attached").view(subject);
            for manager in &managers {
                assert!(
                    view.contains(*manager),
                    "manager {manager} of {subject} must come from its view"
                );
            }
            let mut dedup = managers.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), managers.len(), "replicas must be distinct");
        }
    }

    #[test]
    fn membership_answers_still_flow() {
        let mut m = build(20, 3, 0.0, 5);
        m.attach_membership(MembershipConfig::default(), 7)
            .expect("valid overlay");
        for _ in 0..5 {
            m.submit_report(NodeId(1), NodeId(7), 0.8);
        }
        m.round();
        m.round();
        // Views may have drifted between store and query; with full
        // liveness and no loss the view only grows fresher entries, so
        // placement is stable and the answer matches the oracle.
        m.submit_query(NodeId(2), NodeId(7));
        m.run(3);
        let answer = m.answer(NodeId(2), NodeId(7));
        assert!(answer.is_some(), "view-placed replicas still answer");
    }

    #[test]
    fn report_query_answer_matches_oracle() {
        let mut m = build(20, 3, 0.0, 1);
        for _ in 0..5 {
            m.submit_report(NodeId(1), NodeId(7), 0.8);
        }
        m.round(); // reports travel
        m.round(); // reports stored
        m.submit_query(NodeId(2), NodeId(7));
        m.run(3); // query travels, is answered, answer returns
        let answer = m.answer(NodeId(2), NodeId(7)).expect("answer arrived");
        let oracle = m.oracle(NodeId(7));
        assert!(
            (answer - oracle).abs() < 1e-9,
            "answer {answer} vs oracle {oracle}"
        );
        assert!((oracle - (0.8 * 5.0 + 1.0) / 7.0).abs() < 1e-12);
        assert_eq!(m.report().costs.malformed, 0, "clean network, clean parse");
    }

    #[test]
    fn unanswered_query_returns_none_then_some() {
        let mut m = build(10, 2, 0.0, 2);
        m.submit_query(NodeId(0), NodeId(5));
        assert_eq!(m.answer(NodeId(0), NodeId(5)), None);
        m.run(3);
        assert!(m.answer(NodeId(0), NodeId(5)).is_some());
        assert_eq!(
            m.answer(NodeId(99), NodeId(5)),
            None,
            "unknown requesters answer None, they do not panic"
        );
    }

    #[test]
    fn replica_crash_is_tolerated() {
        let mut m = build(20, 3, 0.0, 3);
        for _ in 0..4 {
            m.submit_report(NodeId(0), NodeId(9), 1.0);
        }
        m.run(2);
        // Kill one replica of subject 9.
        let victim = m.managers(NodeId(9))[0];
        m.network_mut().set_alive(victim, false);
        m.submit_query(NodeId(1), NodeId(9));
        m.run(3);
        let answer = m
            .answer(NodeId(1), NodeId(9))
            .expect("remaining replicas answer");
        assert!(answer > 0.5, "evidence survives a replica crash: {answer}");
    }

    #[test]
    fn losing_all_replicas_loses_history() {
        let mut m = build(20, 2, 0.0, 4);
        for _ in 0..6 {
            m.submit_report(NodeId(0), NodeId(3), 1.0);
        }
        m.run(2);
        for replica in m.managers(NodeId(3)) {
            m.network_mut().set_alive(replica, false);
        }
        m.submit_query(NodeId(1), NodeId(3));
        m.run(4);
        assert_eq!(
            m.answer(NodeId(1), NodeId(3)),
            None,
            "no replica left to answer"
        );
        let report = m.report();
        assert!(report.answer_rate < 1.0);
    }

    #[test]
    fn loss_reduces_answer_rate() {
        let run = |loss: f64| {
            let mut m = build(30, 2, loss, 5);
            for s in 0..30u32 {
                m.submit_report(NodeId((s + 1) % 30), NodeId(s), 0.7);
            }
            m.run(2);
            for s in 0..30u32 {
                m.submit_query(NodeId((s + 2) % 30), NodeId(s));
            }
            m.run(4);
            m.report().answer_rate
        };
        assert!(run(0.5) < run(0.0), "loss must cost answers");
        assert_eq!(run(0.0), 1.0);
    }

    #[test]
    fn costs_count_replica_fanout() {
        let mut m = build(10, 3, 0.0, 6);
        m.submit_report(NodeId(0), NodeId(1), 0.5);
        m.round();
        assert_eq!(
            m.report().costs.messages,
            3,
            "one report → replicas messages"
        );
    }

    #[test]
    fn malformed_manager_traffic_is_counted_and_ignored() {
        let mut m = build(10, 2, 0.0, 8);
        let network = m.network_mut();
        // Unknown tag, out-of-range subject, fractional subject, text,
        // NaN report value, out-of-range answer score.
        network.send(
            NodeId(1),
            NodeId(0),
            Payload::record("mgr.bogus", vec![1.0]),
        );
        network.send(
            NodeId(1),
            NodeId(0),
            Payload::record("mgr.query", vec![99.0]),
        );
        network.send(
            NodeId(1),
            NodeId(0),
            Payload::record("mgr.report", vec![1.5, 0.5]),
        );
        network.send(NodeId(1), NodeId(0), Payload::from("noise"));
        network.send(
            NodeId(1),
            NodeId(0),
            Payload::record("mgr.report", vec![2.0, f64::NAN]),
        );
        network.send(
            NodeId(1),
            NodeId(0),
            Payload::record("mgr.answer", vec![2.0, 7.5]),
        );
        m.run(2);
        let report = m.report();
        assert_eq!(report.costs.malformed, 6);
        assert_eq!(report.answer_rate, 0.0, "junk produced no answers");
        assert_eq!(
            m.answer(NodeId(0), NodeId(2)),
            None,
            "NaN and out-of-range values never reach an accumulator"
        );
    }

    #[test]
    fn pending_traffic_of_a_crashed_sender_is_dropped() {
        let mut m = build(10, 2, 0.0, 9);
        m.submit_report(NodeId(3), NodeId(1), 0.9);
        m.network_mut().set_alive(NodeId(3), false);
        m.run(3);
        let sent = m.report().costs.messages;
        assert_eq!(sent, 0, "a dead sender's queued traffic never flows");
    }

    #[test]
    #[should_panic(expected = "more replicas than nodes")]
    fn too_many_replicas_panics() {
        let _ = build(2, 3, 0.0, 7);
    }

    #[test]
    fn forget_subject_resets_to_the_prior() {
        let n = 10;
        let mut m = build(n, 2, 0.0, 12);
        for _ in 0..5 {
            m.submit_report(NodeId(1), NodeId(4), 0.9);
        }
        m.run(2);
        m.submit_query(NodeId(2), NodeId(4));
        m.run(3);
        assert!(m.answer(NodeId(2), NodeId(4)).expect("answered") > 0.7);
        m.forget_subject(NodeId(4));
        assert_eq!(m.answer(NodeId(2), NodeId(4)), None, "answers cleared");
        assert_eq!(m.oracle(NodeId(4)), 0.5, "truth reset to the prior");
        m.submit_query(NodeId(2), NodeId(4));
        m.run(3);
        let fresh = m.answer(NodeId(2), NodeId(4)).expect("re-answered");
        assert!(
            (fresh - 0.5).abs() < 1e-9,
            "shards cleared too; replicas answer the prior: {fresh}"
        );
    }

    #[test]
    fn whitewashed_identities_reenter_with_reset_reputation() {
        use tsn_simnet::ChurnConfig;
        let n = 12;
        let mut m = build(n, 2, 0.0, 10);
        // Build a strong positive history for every subject.
        for subject in 0..n as u32 {
            for _ in 0..5 {
                m.submit_report(NodeId((subject + 1) % n as u32), NodeId(subject), 0.95);
            }
        }
        m.run(3);
        m.submit_query(NodeId(0), NodeId(5));
        m.run(3);
        let before = m.answer(NodeId(0), NodeId(5)).expect("answered");
        assert!(before > 0.8, "history built: {before}");

        // Everyone whitewashes: short sessions, certain whitewash.
        let plan = DynamicsPlan {
            churn: Some(ChurnConfig {
                mean_session: SimDuration::from_millis(300),
                mean_downtime: SimDuration::from_millis(100),
                whitewash_probability: 1.0,
                crash_fraction: 0.0,
            }),
            ..Default::default()
        };
        m.attach_dynamics(plan, SimRng::seed_from_u64(11)).unwrap();
        let mut whitewashed: Option<NodeId> = None;
        for _ in 0..60 {
            m.round();
            let d = m.dynamics().expect("attached");
            if let Some(slot) = (0..n).map(NodeId::from_index).find(|&s| d.identity(s) != s) {
                whitewashed = Some(slot);
                break;
            }
        }
        let slot = whitewashed.expect("certain whitewash fired within 6s");
        // The old identity's evidence is gone everywhere: a fresh query
        // answers from the prior, not the inherited 0.95 history.
        m.submit_query(NodeId((slot.0 + 1) % n as u32), slot);
        // The requester must be online for the query to flow and the
        // answer to land; run enough rounds for a full cycle.
        for _ in 0..30 {
            m.round();
            if let Some(answer) = m.answer(NodeId((slot.0 + 1) % n as u32), slot) {
                assert!(
                    (answer - 0.5).abs() < 1e-9,
                    "whitewashed identity re-enters at the prior, got {answer}"
                );
                assert_eq!(m.oracle(slot), 0.5, "truth reset alongside");
                return;
            }
        }
        // Churn can keep the requester or replicas offline long enough
        // that no answer lands; the stored-state reset still holds.
        assert_eq!(m.oracle(slot), 0.5, "truth reset even if no answer landed");
    }
}
