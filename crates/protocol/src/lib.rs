//! # tsn-protocol — decentralized reputation as real message passing
//!
//! The paper's objective is "to allow the deployment of **fully
//! decentralized architectures**" (Section 1). The `tsn-reputation`
//! mechanisms compute scores as algorithms; this crate realizes the two
//! canonical *distribution strategies* for those computations as actual
//! protocols over the [`tsn_simnet`] message-passing simulator — paying
//! for latency, loss and churn like a deployment would:
//!
//! * [`gossip`] — **push-sum gossip aggregation** (Kempe et al. style):
//!   every node holds only its own observations; periodic pairwise
//!   exchanges converge to the global average of report values per
//!   subject, with no central aggregator at all. Message loss leaks
//!   "mass" and visibly degrades accuracy — a measurable cost of full
//!   decentralization.
//! * [`score_manager`] — **DHT-style score managers** (the distribution
//!   strategy of EigenTrust's CAN deployment and PowerTrust's overlay):
//!   each subject's reports are routed to `k` deterministic manager
//!   replicas; queries fan out to the replicas and answers are averaged.
//!   Managers can crash; replication covers the gap.
//!
//! [`host`] provides the round-driver harness both protocols run on, and
//! the `exp_decentralized` binary in `tsn-bench` compares either protocol
//! against the centralized oracle on accuracy and message cost (the A4
//! extension experiment of DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gossip;
pub mod host;
pub mod score_manager;

pub use gossip::{GossipConfig, GossipNetwork, GossipReport};
pub use host::{ProtocolCosts, RoundDriver};
pub use score_manager::{ManagerConfig, ManagerNetwork, ManagerReport};
pub use tsn_simnet::NodeId;
