//! The round-driver harness shared by the protocols.
//!
//! Protocols in this crate are *synchronous-round* algorithms executed
//! over an asynchronous network: a round consists of (1) delivering
//! everything the network has in flight up to the round boundary,
//! (2) letting every alive node consume its inbox and emit new messages.
//! Messages delayed past a round boundary are simply consumed next round
//! — exactly the behaviour a periodic-timer implementation has.
//!
//! The driver is allocation-free in steady state: inboxes are swapped
//! into a resident scratch vector (never re-allocated per round), sends
//! are staged in a resident outbox, and every consumed record payload
//! returns its field buffer to the network's
//! [`BufferPool`] for the next sender.

use tsn_simnet::{
    BufferPool, DynamicsEvent, DynamicsRuntime, Envelope, Network, NodeId, Payload, SimDuration,
    SimTime, Tag,
};

/// Aggregate protocol costs, reported by every experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolCosts {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent (simnet wire accounting).
    pub bytes: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Envelopes that were delivered but could not be parsed by the
    /// protocol (wrong tag, wrong arity, out-of-range ids) and were
    /// dropped — flagged via [`Outbox::mark_malformed`], counted by the
    /// driver. Zero on a clean network — the protocol test suites
    /// assert exactly that.
    pub malformed: u64,
}

/// Staging area handed to the per-node step closure: queues outgoing
/// messages and hands out pooled field buffers for building them.
#[derive(Debug)]
pub struct Outbox<'a> {
    pool: &'a mut BufferPool,
    sends: &'a mut Vec<(NodeId, Payload)>,
    malformed: &'a mut u64,
}

impl Outbox<'_> {
    /// An empty field buffer with recycled capacity, for building a
    /// record payload. Hand it back via [`Outbox::send_record`] (or
    /// [`Outbox::release`] if the message is abandoned).
    pub fn fields(&mut self) -> Vec<f64> {
        self.pool.acquire()
    }

    /// Returns an unused buffer to the pool.
    pub fn release(&mut self, buf: Vec<f64>) {
        self.pool.release(buf);
    }

    /// Recycles a payload the protocol consumed outside the inbox path
    /// (e.g. application traffic queued for a node that died).
    pub fn recycle(&mut self, payload: Payload) {
        self.pool.recycle(payload);
    }

    /// Queues an arbitrary payload for sending at the end of the step.
    pub fn send(&mut self, to: NodeId, payload: Payload) {
        self.sends.push((to, payload));
    }

    /// Queues a tagged record built from a (typically pooled) buffer.
    pub fn send_record(&mut self, to: NodeId, tag: Tag, fields: Vec<f64>) {
        self.sends.push((to, Payload::Record { tag, fields }));
    }

    /// Flags one delivered envelope as unparseable. The driver owns the
    /// counter and reports it through [`ProtocolCosts::malformed`], so
    /// every protocol on this driver gets accurate accounting for free.
    pub fn mark_malformed(&mut self) {
        *self.malformed += 1;
    }
}

/// Drives a protocol in fixed-length rounds over a [`Network`].
#[derive(Debug)]
pub struct RoundDriver {
    network: Network,
    now: SimTime,
    round_length: SimDuration,
    rounds_run: u64,
    /// Envelopes the protocol flagged via [`Outbox::mark_malformed`].
    malformed: u64,
    /// Resident inbox scratch: ping-pongs with each node's mailbox.
    inbox: Vec<Envelope>,
    /// Resident send staging, drained into the network after each step.
    sends: Vec<(NodeId, Payload)>,
    /// Optional dynamics executor, stepped between rounds.
    dynamics: Option<DynamicsRuntime>,
}

impl RoundDriver {
    /// Wraps a network; `round_length` must exceed the typical one-way
    /// latency or most traffic arrives a round late (allowed, but slow).
    pub fn new(network: Network, round_length: SimDuration) -> Self {
        RoundDriver {
            network,
            now: SimTime::ZERO,
            round_length,
            rounds_run: 0,
            malformed: 0,
            inbox: Vec::new(),
            sends: Vec::new(),
            dynamics: None,
        }
    }

    /// Attaches a dynamics runtime: its initial state (initially-offline
    /// nodes, regional latency) is installed immediately, and every
    /// subsequent [`RoundDriver::round`] executes the scheduled churn
    /// transitions and partition swaps *before* delivering the round's
    /// traffic — transitions interleave with deliveries at their exact
    /// event times. Read the applied transitions after each round via
    /// [`RoundDriver::dynamics`]`.events()` (borrowed) or
    /// [`RoundDriver::take_dynamics_events`]; the next round clears
    /// them, so the buffer never outgrows one round.
    ///
    /// # Panics
    ///
    /// Panics if the runtime's node count differs from the network's.
    pub fn attach_dynamics(&mut self, mut dynamics: DynamicsRuntime) {
        dynamics.install(&mut self.network);
        self.dynamics = Some(dynamics);
    }

    /// The attached dynamics runtime, if any (availability, partition
    /// health, identity mapping).
    pub fn dynamics(&self) -> Option<&DynamicsRuntime> {
        self.dynamics.as_ref()
    }

    /// Drains the dynamics events of the most recent round (empty when
    /// no runtime is attached). The borrowed spelling —
    /// `driver.dynamics().map(|d| d.events())` — avoids handing the
    /// buffer away on hot paths.
    pub fn take_dynamics_events(&mut self) -> Vec<(SimTime, DynamicsEvent)> {
        self.dynamics
            .as_mut()
            .map(DynamicsRuntime::take_events)
            .unwrap_or_default()
    }

    /// The simulated clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the network (stats, liveness).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access (e.g. to kill nodes between rounds).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Executes one round: advances the clock by the round length,
    /// delivers in-flight traffic, then calls `step` once per *alive*
    /// node with its drained inbox (borrowed, not owned — the driver
    /// recycles the envelopes afterwards), a read-only network view
    /// (liveness checks), and an [`Outbox`] for the messages to send.
    pub fn round<F>(&mut self, mut step: F)
    where
        F: FnMut(NodeId, &[Envelope], &Network, &mut Outbox<'_>),
    {
        self.now += self.round_length;
        if let Some(dynamics) = self.dynamics.as_mut() {
            // Last round's events expire here, so the buffer stays
            // bounded by one round even when nobody reads it.
            dynamics.clear_events();
            dynamics.advance(&mut self.network, self.now);
        }
        self.network.advance_to(self.now);
        let n = self.network.node_count();
        for i in 0..n {
            let node = NodeId::from_index(i);
            if !self.network.is_alive(node) {
                continue;
            }
            self.network.swap_inbox(node, &mut self.inbox);
            // The pool steps out of the network for the duration of the
            // step so the closure can hold `&Network` alongside it.
            let mut pool = std::mem::take(self.network.pool_mut());
            {
                let mut outbox = Outbox {
                    pool: &mut pool,
                    sends: &mut self.sends,
                    malformed: &mut self.malformed,
                };
                step(node, &self.inbox, &self.network, &mut outbox);
            }
            *self.network.pool_mut() = pool;
            for (to, payload) in self.sends.drain(..) {
                self.network.send(node, to, payload);
            }
            let pool = self.network.pool_mut();
            for envelope in self.inbox.drain(..) {
                pool.recycle(envelope.payload);
            }
        }
        self.rounds_run += 1;
    }

    /// Cost summary from the network counters plus the driver-owned
    /// malformed count.
    pub fn costs(&self) -> ProtocolCosts {
        let stats = self.network.stats();
        ProtocolCosts {
            messages: stats.sent.value(),
            bytes: stats.bytes_sent.value(),
            rounds: self.rounds_run,
            malformed: self.malformed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_simnet::{latency::ConstantLatency, NetworkConfig, Payload, SimRng};

    fn driver(nodes: usize) -> RoundDriver {
        let config = NetworkConfig {
            latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
            loss: Box::new(tsn_simnet::NoLoss),
        };
        let mut network = Network::new(config, SimRng::seed_from_u64(0));
        for _ in 0..nodes {
            network.add_node();
        }
        RoundDriver::new(network, SimDuration::from_millis(100))
    }

    #[test]
    fn round_delivers_previous_round_traffic() {
        let mut d = driver(2);
        let mut received = Vec::new();
        // Round 1: node 0 sends to node 1; nothing delivered yet.
        d.round(|node, inbox, _, out| {
            received.extend(inbox.iter().map(|e| (node, e.from)));
            if node == NodeId(0) {
                out.send(NodeId(1), Payload::from("ping"));
            }
        });
        assert!(received.is_empty());
        // Round 2: the ping arrives.
        d.round(|node, inbox, _, _| {
            received.extend(inbox.iter().map(|e| (node, e.from)));
        });
        assert_eq!(received, vec![(NodeId(1), NodeId(0))]);
        assert_eq!(d.rounds_run(), 2);
    }

    #[test]
    fn dead_nodes_do_not_step() {
        let mut d = driver(3);
        d.network_mut().set_alive(NodeId(1), false);
        let mut stepped = Vec::new();
        d.round(|node, _, _, _| stepped.push(node));
        assert_eq!(stepped, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn costs_track_network_counters() {
        let mut d = driver(2);
        d.round(|node, _, _, out| {
            if node == NodeId(0) {
                out.send(NodeId(1), Payload::from("x"));
            }
        });
        let costs = d.costs();
        assert_eq!(costs.messages, 1);
        assert!(costs.bytes > 0);
        assert_eq!(costs.rounds, 1);
        assert_eq!(costs.malformed, 0);
    }

    #[test]
    fn clock_advances_per_round() {
        let mut d = driver(1);
        d.round(|_, _, _, _| {});
        d.round(|_, _, _, _| {});
        assert_eq!(d.now(), SimTime::from_millis(200));
    }

    #[test]
    fn consumed_record_buffers_return_to_the_pool() {
        let mut d = driver(2);
        const T: Tag = Tag::new("test.ping");
        for _ in 0..4 {
            d.round(|node, _, _, out| {
                if node == NodeId(0) {
                    let mut fields = out.fields();
                    fields.extend([1.0, 2.0, 3.0]);
                    out.send_record(NodeId(1), T, fields);
                }
            });
        }
        // The first round allocates the one buffer in flight; every
        // later round reuses it after the receiver's inbox is drained.
        let pool = d.network().pool();
        assert!(pool.reuses() >= 2, "reuses: {}", pool.reuses());
        assert!(
            pool.fresh_allocations() <= 2,
            "fresh: {}",
            pool.fresh_allocations()
        );
    }

    #[test]
    fn dynamics_kill_and_revive_nodes_between_rounds() {
        use tsn_simnet::{dynamics::DynamicsPlan, ChurnConfig, SimRng};
        let mut d = driver(10);
        let plan = DynamicsPlan {
            churn: Some(ChurnConfig {
                mean_session: SimDuration::from_millis(300),
                mean_downtime: SimDuration::from_millis(200),
                whitewash_probability: 0.0,
                crash_fraction: 0.5,
            }),
            ..Default::default()
        };
        let runtime = tsn_simnet::DynamicsRuntime::new(plan, 10, SimRng::seed_from_u64(42))
            .expect("valid plan");
        d.attach_dynamics(runtime);
        let mut stepped_dead = 0u64;
        let mut transitions = 0usize;
        for _ in 0..50 {
            d.round(|node, _, network, _| {
                // The driver only steps alive nodes.
                if !network.is_alive(node) {
                    stepped_dead += 1;
                }
            });
            transitions += d.take_dynamics_events().len();
        }
        assert_eq!(stepped_dead, 0);
        assert!(transitions > 0, "300ms sessions churn over 5s");
        let availability = d.dynamics().expect("attached").availability();
        assert!((0.0..=1.0).contains(&availability));
    }

    #[test]
    fn dynamics_partition_window_drops_cross_traffic_mid_run() {
        use tsn_simnet::dynamics::DynamicsPlan;
        use tsn_simnet::SimRng;
        let mut d = driver(4);
        // Rounds are 100ms; the split covers rounds 3..=5.
        let plan =
            DynamicsPlan::split_then_heal(SimTime::from_millis(250), SimTime::from_millis(550));
        let runtime =
            tsn_simnet::DynamicsRuntime::new(plan, 4, SimRng::seed_from_u64(1)).expect("valid");
        d.attach_dynamics(runtime);
        let mut received_from_0 = Vec::new();
        for round in 0..10 {
            d.round(|node, inbox, _, out| {
                if node == NodeId(3) {
                    received_from_0
                        .extend(inbox.iter().filter(|e| e.from == NodeId(0)).map(|_| round));
                }
                if node == NodeId(0) {
                    out.send(NodeId(3), Payload::from("tick"));
                }
            });
        }
        // Sends from rounds 0,1 arrive in rounds 1,2; sends from rounds
        // 2..=4 fall in the window and are lost; the heal lets sends
        // from round 5 on arrive again one round later.
        assert_eq!(received_from_0, vec![1, 2, 6, 7, 8, 9]);
    }

    #[test]
    fn network_liveness_is_visible_inside_the_step() {
        let mut d = driver(3);
        d.network_mut().set_alive(NodeId(2), false);
        let mut seen = Vec::new();
        d.round(|node, _, network, _| {
            seen.push((node, network.is_alive(NodeId(2))));
        });
        assert_eq!(seen, vec![(NodeId(0), false), (NodeId(1), false)]);
    }
}
