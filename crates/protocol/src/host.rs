//! The round-driver harness shared by the protocols.
//!
//! Protocols in this crate are *synchronous-round* algorithms executed
//! over an asynchronous network: a round consists of (1) delivering
//! everything the network has in flight up to the round boundary,
//! (2) letting every alive node consume its inbox and emit new messages.
//! Messages delayed past a round boundary are simply consumed next round
//! — exactly the behaviour a periodic-timer implementation has.

use tsn_simnet::{Envelope, Network, NodeId, SimDuration, SimTime};

/// Aggregate protocol costs, reported by every experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolCosts {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent (simnet wire accounting).
    pub bytes: u64,
    /// Rounds executed.
    pub rounds: u64,
}

/// Drives a protocol in fixed-length rounds over a [`Network`].
#[derive(Debug)]
pub struct RoundDriver {
    network: Network,
    now: SimTime,
    round_length: SimDuration,
    rounds_run: u64,
}

impl RoundDriver {
    /// Wraps a network; `round_length` must exceed the typical one-way
    /// latency or most traffic arrives a round late (allowed, but slow).
    pub fn new(network: Network, round_length: SimDuration) -> Self {
        RoundDriver {
            network,
            now: SimTime::ZERO,
            round_length,
            rounds_run: 0,
        }
    }

    /// The simulated clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the network (stats, liveness).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access (e.g. to kill nodes between rounds).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Executes one round: advances the clock by the round length,
    /// delivers in-flight traffic, then calls `step` once per *alive*
    /// node with its drained inbox. `step` returns the messages to send
    /// as `(to, payload)` pairs.
    pub fn round<F>(&mut self, mut step: F)
    where
        F: FnMut(NodeId, Vec<Envelope>) -> Vec<(NodeId, tsn_simnet::Payload)>,
    {
        self.now += self.round_length;
        self.network.advance_to(self.now);
        let n = self.network.node_count();
        for i in 0..n {
            let node = NodeId::from_index(i);
            if !self.network.is_alive(node) {
                continue;
            }
            let inbox = self.network.take_inbox(node);
            for (to, payload) in step(node, inbox) {
                self.network.send(node, to, payload);
            }
        }
        self.rounds_run += 1;
    }

    /// Cost summary from the network counters.
    pub fn costs(&self) -> ProtocolCosts {
        let stats = self.network.stats();
        ProtocolCosts {
            messages: stats.sent.value(),
            bytes: stats.bytes_sent.value(),
            rounds: self.rounds_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_simnet::{latency::ConstantLatency, NetworkConfig, Payload, SimRng};

    fn driver(nodes: usize) -> RoundDriver {
        let config = NetworkConfig {
            latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
            loss: Box::new(tsn_simnet::NoLoss),
        };
        let mut network = Network::new(config, SimRng::seed_from_u64(0));
        for _ in 0..nodes {
            network.add_node();
        }
        RoundDriver::new(network, SimDuration::from_millis(100))
    }

    #[test]
    fn round_delivers_previous_round_traffic() {
        let mut d = driver(2);
        let received = std::cell::RefCell::new(Vec::new());
        // Round 1: node 0 sends to node 1; nothing delivered yet.
        d.round(|node, inbox| {
            received
                .borrow_mut()
                .extend(inbox.iter().map(|e| (node, e.from)));
            if node == NodeId(0) {
                vec![(NodeId(1), Payload::from("ping"))]
            } else {
                vec![]
            }
        });
        assert!(received.borrow().is_empty());
        // Round 2: the ping arrives.
        d.round(|node, inbox| {
            received
                .borrow_mut()
                .extend(inbox.iter().map(|e| (node, e.from)));
            vec![]
        });
        assert_eq!(*received.borrow(), vec![(NodeId(1), NodeId(0))]);
        assert_eq!(d.rounds_run(), 2);
    }

    #[test]
    fn dead_nodes_do_not_step() {
        let mut d = driver(3);
        d.network_mut().set_alive(NodeId(1), false);
        let stepped = std::cell::RefCell::new(Vec::new());
        d.round(|node, _| {
            stepped.borrow_mut().push(node);
            vec![]
        });
        assert_eq!(*stepped.borrow(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn costs_track_network_counters() {
        let mut d = driver(2);
        d.round(|node, _| {
            if node == NodeId(0) {
                vec![(NodeId(1), Payload::from("x"))]
            } else {
                vec![]
            }
        });
        let costs = d.costs();
        assert_eq!(costs.messages, 1);
        assert!(costs.bytes > 0);
        assert_eq!(costs.rounds, 1);
    }

    #[test]
    fn clock_advances_per_round() {
        let mut d = driver(1);
        d.round(|_, _| vec![]);
        d.round(|_, _| vec![]);
        assert_eq!(d.now(), SimTime::from_millis(200));
    }
}
