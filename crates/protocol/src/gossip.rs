//! Push-sum gossip aggregation of reputation evidence.
//!
//! Every node starts with only its *own* observations (value sum and
//! count per subject) and a push-sum weight of 1. Each round every node
//! halves its state, keeps one half and sends the other to a random
//! neighbour. All three quantities are *mass-conserved* (absent
//! message loss), so each node's ratio `state / weight` converges to the
//! network-wide average — from which the global Beta-style score of every
//! subject is computed locally, with no aggregator anywhere.
//!
//! Under message loss, mass leaks and estimates bias toward the prior —
//! the measurable accuracy price of full decentralization that the A4
//! experiment quantifies.
//!
//! The implementation is built for scale: per-node state lives in one
//! flat `n × 2·subjects` matrix whose row layout mirrors the wire
//! format, so incoming halves are absorbed from *borrowed* envelope
//! fields in a single contiguous add pass (no decode copies) and
//! outgoing halves are a halve-in-place plus `extend_from_slice` into
//! a pooled buffer — steady-state rounds allocate nothing
//! (`tests/equivalence.rs` pins both the bit-identical outcomes and
//! the zero-growth pool behaviour).

use crate::host::{ProtocolCosts, RoundDriver};
use tsn_graph::Graph;
use tsn_simnet::{
    DynamicsEvent, DynamicsPlan, DynamicsRuntime, Envelope, MembershipConfig, MembershipRuntime,
    Network, NodeId, Payload, SimDuration, SimRng, Tag,
};

/// The push-sum message tag.
const PUSHSUM: Tag = Tag::new("pushsum");

/// Gossip parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// Number of subjects being scored (usually the node count).
    pub subjects: usize,
    /// Length of one gossip round.
    pub round_length: SimDuration,
    /// When `true`, the random push target is drawn only from *alive*
    /// neighbours, so no mass is pushed at crashed peers. Default
    /// `false`: nodes do not know who crashed, the draw covers every
    /// neighbour and a push to a dead peer dead-letters — a bounded
    /// mass leak that the crash tests quantify. (The default also
    /// preserves the pre-flag RNG draw sequence, keeping the golden
    /// fixtures bit-identical.)
    pub skip_dead_neighbors: bool,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            subjects: 0,
            round_length: SimDuration::from_millis(100),
            skip_dead_neighbors: false,
        }
    }
}

/// A snapshot of one node's estimate quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipReport {
    /// Max absolute error of local score estimates vs the oracle.
    pub max_error: f64,
    /// Mean absolute error.
    pub mean_error: f64,
    /// Protocol costs so far.
    pub costs: ProtocolCosts,
}

/// The gossip protocol instance.
#[derive(Debug)]
pub struct GossipNetwork {
    config: GossipConfig,
    driver: RoundDriver,
    graph: Graph,
    rng: SimRng,
    /// Push-sum weight per node.
    weight: Vec<f64>,
    /// Per-node running (half-able) state, row-major with stride
    /// `2 × subjects`: a node's row is `[sums… | counts…]` — exactly
    /// the wire layout of a push-sum message after its weight field,
    /// so absorbing and emitting are single contiguous slice passes.
    state: Vec<f64>,
    /// Ground-truth totals (for oracle comparison): (sum, count).
    truth: Vec<(f64, f64)>,
    /// Scratch for the alive-neighbour filter (only used when
    /// `skip_dead_neighbors` is on).
    alive_scratch: Vec<NodeId>,
    /// Peer-sampling overlay; when attached, push targets come from
    /// each node's bounded partial view instead of the graph
    /// neighborhood.
    membership: Option<MembershipRuntime>,
}

impl GossipNetwork {
    /// Builds the protocol over `graph` with a fresh network.
    ///
    /// # Panics
    ///
    /// Panics if `config.subjects` is zero.
    pub fn new(graph: Graph, network: Network, config: GossipConfig, rng: SimRng) -> Self {
        assert!(config.subjects > 0, "subjects must be positive");
        let n = graph.node_count();
        assert_eq!(
            n,
            network.node_count(),
            "graph and network must agree on node count"
        );
        GossipNetwork {
            driver: RoundDriver::new(network, config.round_length),
            graph,
            rng,
            weight: vec![1.0; n],
            state: vec![0.0; n * 2 * config.subjects],
            truth: vec![(0.0, 0.0); config.subjects],
            alive_scratch: Vec::new(),
            membership: None,
            config,
        }
    }

    /// Records a local observation at `observer` about `subject`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `value` is not in `[0, 1]`.
    pub fn observe(&mut self, observer: NodeId, subject: usize, value: f64) {
        assert!((0.0..=1.0).contains(&value), "value must be in [0,1]");
        assert!(subject < self.config.subjects, "subject out of range");
        let subjects = self.config.subjects;
        let row = observer.index() * 2 * subjects;
        self.state[row + subject] += value;
        self.state[row + subjects + subject] += 1.0;
        self.truth[subject].0 += value;
        self.truth[subject].1 += 1.0;
    }

    /// Attaches a dynamics plan: churn transitions, partition swaps and
    /// regional latency execute on the driver's clock between rounds.
    ///
    /// The protocol tolerates every transition: crashed nodes freeze
    /// (their mass leaks only through pushes addressed at them), revived
    /// nodes resume from their frozen state, and a *whitewashed* slot
    /// re-enters with reset push-sum state (weight 1, no observations) —
    /// the fresh identity inherits nothing. The mass the old identity
    /// already pushed into the network stays there, so whitewashing
    /// perturbs (never poisons) the aggregate.
    ///
    /// # Errors
    ///
    /// Returns the plan's validation error, if any.
    pub fn attach_dynamics(&mut self, plan: DynamicsPlan, rng: SimRng) -> Result<(), String> {
        let runtime = DynamicsRuntime::new(plan, self.graph.node_count(), rng)?;
        self.driver.attach_dynamics(runtime);
        Ok(())
    }

    /// The attached dynamics runtime, if any.
    pub fn dynamics(&self) -> Option<&DynamicsRuntime> {
        self.driver.dynamics()
    }

    /// Attaches the peer-sampling membership overlay: each node keeps
    /// a bounded partial view refreshed by one shuffle per gossip
    /// round, and push targets are drawn from the view instead of the
    /// full graph neighborhood. The overlay runs on its own RNG
    /// stream (derived from `seed`), so attaching it never shifts the
    /// push-target draw sequence of membership-off runs.
    ///
    /// # Errors
    ///
    /// Returns the config's validation error, or an error when the
    /// population is too small for the relay count.
    pub fn attach_membership(&mut self, config: MembershipConfig, seed: u64) -> Result<(), String> {
        self.membership = Some(MembershipRuntime::new(
            self.graph.node_count(),
            config,
            seed,
        )?);
        Ok(())
    }

    /// The attached membership overlay, if any.
    pub fn membership(&self) -> Option<&MembershipRuntime> {
        self.membership.as_ref()
    }

    /// Executes one push-sum round.
    pub fn round(&mut self) {
        let GossipNetwork {
            driver,
            graph,
            rng,
            weight,
            state,
            config,
            alive_scratch,
            membership,
            ..
        } = self;
        let subjects = config.subjects;
        let stride = 2 * subjects;
        let skip_dead = config.skip_dead_neighbors;
        // One view shuffle per gossip round, against current liveness
        // (no partition model at this layer — the network's loss model
        // handles partitions in transit).
        if let Some(m) = membership.as_mut() {
            let network = driver.network();
            m.shuffle_round(|p| network.is_alive(p), |_, _| true);
        }
        let membership = membership.as_ref();
        driver.round(|node, inbox, network, out| {
            let i = node.index();
            let row = &mut state[i * stride..(i + 1) * stride];
            // Absorb incoming halves straight from the borrowed fields:
            // the wire layout after the weight matches the state row,
            // so each envelope is one contiguous fused-add pass.
            for envelope in inbox {
                let Some((w, halves)) = decode(envelope, subjects) else {
                    out.mark_malformed();
                    continue;
                };
                weight[i] += w;
                for (dst, src) in row.iter_mut().zip(halves) {
                    *dst += *src;
                }
            }
            // Halve and push to one random neighbour (all of them by
            // default — dead targets dead-letter; see `GossipConfig`).
            // With the membership overlay attached the draw covers the
            // node's bounded partial view instead of the graph.
            let target = match membership {
                Some(m) => {
                    let view = m.view(node);
                    if skip_dead {
                        alive_scratch.clear();
                        alive_scratch.extend(view.peers().filter(|&p| network.is_alive(p)));
                        rng.choose(alive_scratch).copied()
                    } else {
                        view.sample(rng)
                    }
                }
                None => {
                    let neighbors = graph.neighbors(node);
                    if skip_dead {
                        alive_scratch.clear();
                        alive_scratch
                            .extend(neighbors.iter().copied().filter(|&p| network.is_alive(p)));
                        rng.choose(alive_scratch).copied()
                    } else {
                        rng.choose(neighbors).copied()
                    }
                }
            };
            let Some(target) = target else {
                return;
            };
            weight[i] /= 2.0;
            for value in row.iter_mut() {
                *value /= 2.0;
            }
            let mut fields = out.fields();
            fields.reserve(1 + stride);
            fields.push(weight[i]);
            fields.extend_from_slice(row);
            out.send_record(target, PUSHSUM, fields);
        });
        // A whitewashed slot is a fresh identity: it restarts from the
        // push-sum initial state instead of inheriting its predecessor's
        // accumulated evidence. Events are borrowed (the driver clears
        // them next round) — no per-round allocation.
        if let Some(dynamics) = self.driver.dynamics() {
            for &(_, event) in dynamics.events() {
                if let DynamicsEvent::Whitewash { slot, .. } = event {
                    let i = slot.index();
                    self.weight[i] = 1.0;
                    self.state[i * stride..(i + 1) * stride].fill(0.0);
                }
            }
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.round();
        }
    }

    /// `node`'s current local estimate of `subject`'s global Beta score.
    pub fn estimate(&self, node: NodeId, subject: usize) -> f64 {
        let i = node.index();
        let w = self.weight[i];
        if w <= 0.0 {
            return 0.5;
        }
        let n = self.graph.node_count() as f64;
        let subjects = self.config.subjects;
        let row = i * 2 * subjects;
        // Push-sum estimate of the network totals.
        let est_sum = self.state[row + subject] / w * n;
        let est_count = self.state[row + subjects + subject] / w * n;
        (est_sum + 1.0) / (est_count + 2.0)
    }

    /// The oracle: the score a centralized aggregator would compute.
    pub fn oracle(&self, subject: usize) -> f64 {
        let (sum, count) = self.truth[subject];
        (sum + 1.0) / (count + 2.0)
    }

    /// Estimate quality across every alive node and subject.
    pub fn report(&self) -> GossipReport {
        let mut max_error: f64 = 0.0;
        let mut total = 0.0;
        let mut samples = 0u64;
        for i in 0..self.graph.node_count() {
            let node = NodeId::from_index(i);
            if !self.driver.network().is_alive(node) {
                continue;
            }
            for subject in 0..self.config.subjects {
                let err = (self.estimate(node, subject) - self.oracle(subject)).abs();
                max_error = max_error.max(err);
                total += err;
                samples += 1;
            }
        }
        GossipReport {
            max_error,
            mean_error: if samples == 0 {
                0.0
            } else {
                total / samples as f64
            },
            costs: self.driver.costs(),
        }
    }

    /// Total push-sum mass (weight) across nodes — conserved while no
    /// message is lost or in flight.
    pub fn total_weight(&self) -> f64 {
        self.weight.iter().sum()
    }

    /// Mutable network access (to inject crashes between rounds).
    pub fn network_mut(&mut self) -> &mut Network {
        self.driver.network_mut()
    }
}

/// Borrows the weight and the `[sums… | counts…]` halves out of a
/// push-sum envelope — no copies; absorption reads the wire buffer in
/// place.
fn decode(envelope: &Envelope, subjects: usize) -> Option<(f64, &[f64])> {
    match &envelope.payload {
        Payload::Record { tag, fields } if *tag == PUSHSUM && fields.len() == 1 + 2 * subjects => {
            Some((fields[0], &fields[1..]))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_graph::generators;
    use tsn_simnet::{latency::ConstantLatency, BernoulliLoss, NetworkConfig, NoLoss};

    fn build(n: usize, loss: f64, seed: u64) -> GossipNetwork {
        build_with(n, loss, seed, GossipConfig::default())
    }

    fn build_with(n: usize, loss: f64, seed: u64, template: GossipConfig) -> GossipNetwork {
        let mut rng = SimRng::seed_from_u64(seed);
        let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).unwrap();
        let config = NetworkConfig {
            latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
            loss: if loss > 0.0 {
                Box::new(BernoulliLoss::new(loss))
            } else {
                Box::new(NoLoss)
            },
        };
        let mut network = Network::new(config, rng.fork(1));
        for _ in 0..n {
            network.add_node();
        }
        let gossip_config = GossipConfig {
            subjects: n,
            ..template
        };
        GossipNetwork::new(graph, network, gossip_config, rng.fork(2))
    }

    fn seed_observations(g: &mut GossipNetwork, n: usize, seed: u64) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..n * 10 {
            let observer = NodeId(rng.gen_range(0..n as u32));
            let subject = rng.gen_range(0..n);
            // Even subjects are good (0.9), odd are bad (0.2).
            let value = if subject.is_multiple_of(2) { 0.9 } else { 0.2 };
            g.observe(observer, subject, value);
        }
    }

    #[test]
    fn membership_overlay_still_converges() {
        let n = 30;
        let mut g = build(n, 0.0, 9);
        g.attach_membership(MembershipConfig::default(), 0xFACE)
            .expect("valid overlay");
        seed_observations(&mut g, n, 2);
        let before = g.report();
        g.run(40);
        let after = g.report();
        // View-constrained targets reach the whole population through
        // shuffling, so push-sum still converges.
        assert!(
            after.mean_error < before.mean_error / 3.0,
            "{before:?} -> {after:?}"
        );
        assert!(g.membership().expect("attached").rounds() >= 40);
    }

    #[test]
    fn membership_overlay_is_deterministic() {
        let run = || {
            let n = 20;
            let mut g = build(n, 0.0, 11);
            g.attach_membership(MembershipConfig::default(), 13)
                .expect("valid overlay");
            seed_observations(&mut g, n, 3);
            g.run(15);
            let report = g.report();
            (report.mean_error, report.max_error, report.costs.messages)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn estimates_converge_to_oracle() {
        let n = 30;
        let mut g = build(n, 0.0, 1);
        seed_observations(&mut g, n, 2);
        let before = g.report();
        g.run(40);
        let after = g.report();
        assert!(
            after.mean_error < before.mean_error / 3.0,
            "{before:?} -> {after:?}"
        );
        assert!(
            after.mean_error < 0.05,
            "converged error {:.4}",
            after.mean_error
        );
        assert_eq!(after.costs.malformed, 0, "clean network parses everything");
    }

    #[test]
    fn converged_estimates_rank_subjects_correctly() {
        let n = 20;
        let mut g = build(n, 0.0, 3);
        seed_observations(&mut g, n, 4);
        g.run(50);
        // Every node's local estimate separates good from bad subjects.
        for i in 0..n {
            let node = NodeId::from_index(i);
            let good = g.estimate(node, 0);
            let bad = g.estimate(node, 1);
            assert!(good > bad, "node {i}: good {good} vs bad {bad}");
        }
    }

    #[test]
    fn mass_is_conserved_without_loss() {
        let n = 16;
        let mut g = build(n, 0.0, 5);
        seed_observations(&mut g, n, 6);
        let start = g.total_weight();
        g.run(10);
        // In-flight mass + held mass = constant; after a quiet round all
        // mass is back at nodes (one extra round to drain).
        g.run(1);
        let in_flight = g.driver.network().in_flight_len();
        // held weight is start minus whatever is still on the wire.
        assert!(g.total_weight() <= start + 1e-9);
        assert!(in_flight > 0 || (start - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn message_loss_degrades_accuracy() {
        let n = 24;
        let mut clean = build(n, 0.0, 7);
        let mut lossy = build(n, 0.4, 7);
        seed_observations(&mut clean, n, 8);
        seed_observations(&mut lossy, n, 8);
        clean.run(40);
        lossy.run(40);
        assert!(
            lossy.report().mean_error > clean.report().mean_error,
            "loss must hurt: {:?} vs {:?}",
            lossy.report().mean_error,
            clean.report().mean_error
        );
    }

    #[test]
    fn crashed_nodes_freeze_but_do_not_poison() {
        let n = 20;
        let mut g = build(n, 0.0, 9);
        seed_observations(&mut g, n, 10);
        g.run(10);
        for dead in 0..5u32 {
            g.network_mut().set_alive(NodeId(dead), false);
        }
        g.run(30);
        let report = g.report();
        // Alive nodes still converge reasonably (mass sent to dead nodes
        // dead-letters, a bounded leak).
        assert!(report.mean_error < 0.15, "error {:.4}", report.mean_error);
    }

    #[test]
    fn skipping_dead_neighbors_avoids_dead_letters() {
        let n = 30;
        let run = |skip: bool| {
            let mut g = build_with(
                n,
                0.0,
                21,
                GossipConfig {
                    skip_dead_neighbors: skip,
                    ..Default::default()
                },
            );
            seed_observations(&mut g, n, 22);
            // Crash a fifth of the network before any traffic flows, so
            // every dead-letter is attributable to target selection.
            for dead in 0..6u32 {
                g.network_mut().set_alive(NodeId(dead), false);
            }
            g.run(20);
            (
                g.driver.network().stats().dead_letter.value(),
                g.report().mean_error,
            )
        };
        let (dead_letters_default, _) = run(false);
        let (dead_letters_skipping, error_skipping) = run(true);
        assert!(
            dead_letters_default > 0,
            "the default draw hits crashed peers"
        );
        assert_eq!(
            dead_letters_skipping, 0,
            "liveness-filtered draws never dead-letter"
        );
        assert!(error_skipping < 0.15, "still converges: {error_skipping}");
    }

    #[test]
    fn gossip_survives_session_churn() {
        use tsn_simnet::ChurnConfig;
        let n = 30;
        let mut g = build(n, 0.0, 31);
        seed_observations(&mut g, n, 32);
        let plan = DynamicsPlan {
            churn: Some(ChurnConfig {
                // Rounds are 100ms: ~8-round sessions, ~3-round downtimes.
                mean_session: SimDuration::from_millis(800),
                mean_downtime: SimDuration::from_millis(300),
                whitewash_probability: 0.0,
                crash_fraction: 0.5,
            }),
            ..Default::default()
        };
        g.attach_dynamics(plan, SimRng::seed_from_u64(33)).unwrap();
        g.run(60);
        let report = g.report();
        assert!(report.mean_error.is_finite());
        assert!(
            report.mean_error < 0.2,
            "alive nodes still converge through churn: {}",
            report.mean_error
        );
        let dynamics = g.dynamics().expect("attached");
        assert!(dynamics.availability() > 0.0);
        // Weight never goes negative or NaN under kill/revive cycles.
        assert!(g.weight.iter().all(|w| w.is_finite() && *w >= 0.0));
    }

    #[test]
    fn whitewashed_slots_reset_their_push_sum_state() {
        let n = 20;
        let mut g = build(n, 0.0, 41);
        seed_observations(&mut g, n, 42);
        g.run(5);
        let plan = DynamicsPlan::whitewash_attack(
            SimDuration::from_millis(400),
            SimDuration::from_millis(200),
        );
        // Attach mid-run: the plan's schedule starts at time zero, so
        // overdue transitions fire on the next round.
        g.attach_dynamics(plan, SimRng::seed_from_u64(43)).unwrap();
        let mut whitewashed = Vec::new();
        let mut previous: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        for _ in 0..40 {
            g.round();
            // The reset runs last in round(), so a slot whitewashed this
            // round must sit exactly at the fresh-identity initial state:
            // weight 1, empty evidence — nothing inherited.
            let current = g.dynamics().expect("attached").identities().to_vec();
            for slot in 0..n {
                if current[slot] != previous[slot] {
                    whitewashed.push(slot);
                    assert_eq!(g.weight[slot], 1.0, "slot {slot} weight reset");
                    let row = &g.state[slot * 2 * n..(slot + 1) * 2 * n];
                    assert!(
                        row.iter().all(|&v| v == 0.0),
                        "slot {slot} state reset, got {row:?}"
                    );
                }
            }
            previous = current;
        }
        assert!(!whitewashed.is_empty(), "80% whitewash over 40 rounds");
        let report = g.report();
        assert!(
            report.mean_error.is_finite() && report.max_error.is_finite(),
            "whitewashing perturbs but never poisons: {report:?}"
        );
    }

    #[test]
    fn costs_grow_linearly_in_rounds() {
        let n = 10;
        let mut g = build(n, 0.0, 11);
        g.run(5);
        let c5 = g.report().costs;
        g.run(5);
        let c10 = g.report().costs;
        assert_eq!(c5.messages, 5 * n as u64);
        assert_eq!(c10.messages, 10 * n as u64);
        assert!(c10.bytes > c5.bytes);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let n = 12;
            let mut g = build(n, 0.1, 13);
            seed_observations(&mut g, n, 14);
            g.run(20);
            g.report().mean_error
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn malformed_envelopes_are_counted_not_absorbed() {
        let n = 10;
        let mut g = build(n, 0.0, 17);
        seed_observations(&mut g, n, 18);
        // Inject junk addressed to node 0: wrong tag, wrong arity, and a
        // non-record payload.
        let junk_fields = vec![0.25; 1 + 2 * n];
        let network = g.network_mut();
        network.send(
            NodeId(1),
            NodeId(0),
            Payload::record("not-pushsum", junk_fields),
        );
        network.send(NodeId(1), NodeId(0), Payload::record("pushsum", vec![1.0]));
        network.send(NodeId(1), NodeId(0), Payload::from("junk"));
        let weight_before = g.total_weight();
        g.run(2);
        let report = g.report();
        assert_eq!(report.costs.malformed, 3, "every junk envelope counted");
        assert!(
            g.total_weight() <= weight_before + 1e-9,
            "junk mass is never absorbed"
        );
    }

    #[test]
    #[should_panic(expected = "value must be in [0,1]")]
    fn rejects_out_of_range_observation() {
        let mut g = build(10, 0.0, 15);
        g.observe(NodeId(0), 0, 1.5);
    }
}
