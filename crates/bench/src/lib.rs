//! Shared helpers for the experiment binaries that regenerate the
//! paper's figures (see DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured outcomes), plus the
//! dependency-free micro-benchmark harness used by `benches/`.

#![forbid(unsafe_code)]

use tsn_core::report::ExperimentTable;
use tsn_core::runner::ScenarioBuilder;

pub mod harness;

/// The standard experiment-scale scenario base: 100 users, 25 rounds,
/// 25% malicious. Every binary derives from this so results are
/// comparable across experiments.
pub fn experiment_base(seed: u64) -> ScenarioBuilder {
    ScenarioBuilder::experiment(seed)
}

/// Prints a table to stdout in both human and JSON form, the contract
/// EXPERIMENTS.md rows are quoted from.
pub fn emit(table: &ExperimentTable) {
    println!("{}", table.render());
    println!("JSON {}", table.to_json());
    println!();
}

/// Mean of an iterator of f64 (panics on empty input).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    assert!(!v.is_empty(), "mean of empty sequence");
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_valid() {
        assert!(experiment_base(1).build().is_ok());
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_empty_panics() {
        let _ = mean([]);
    }
}
