//! **A1 — mechanism comparison under attack** (ablation): honest-consumer
//! success rate and mechanism power for every implemented mechanism as
//! the malicious fraction grows — the standard evaluation of the
//! reputation literature the paper builds on (EigenTrust §5, PowerTrust
//! §6), run on the tsn substrate.
//!
//! Run: `cargo run --release -p tsn-bench --bin exp_mechanisms`

use tsn_bench::{emit, mean};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_reputation::{
    testbed::run_testbed, MechanismKind, PopulationConfig, SelectionPolicy, TestbedConfig,
};

fn main() {
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let seeds = 3;

    let mut success = ExperimentTable::new(
        "A1a",
        "honest-consumer success rate vs malicious fraction",
        fractions.iter().map(|f| format!("{:.0}%", f * 100.0)),
    );
    let mut power = ExperimentTable::new(
        "A1b",
        "mechanism consistency-with-reality vs malicious fraction",
        fractions.iter().map(|f| format!("{:.0}%", f * 100.0)),
    );

    let mut none_row = Vec::new();
    let mut best_rows: Vec<(MechanismKind, Vec<f64>)> = Vec::new();
    for mechanism in MechanismKind::ALL {
        let mut success_cells = Vec::new();
        let mut power_cells = Vec::new();
        for &malicious in &fractions {
            let mut s = Vec::new();
            let mut p = Vec::new();
            for seed in 0..seeds {
                let config = TestbedConfig {
                    nodes: 100,
                    rounds: 30,
                    population: PopulationConfig::with_malicious(malicious),
                    mechanism,
                    selection: if mechanism == MechanismKind::None {
                        SelectionPolicy::Random
                    } else {
                        SelectionPolicy::Proportional { sharpness: 2.0 }
                    },
                    seed: 4000 + seed,
                    ..Default::default()
                };
                let summary = run_testbed(config).expect("valid config");
                s.push(summary.honest_success_rate);
                p.push(summary.power.consistency);
            }
            success_cells.push(mean(s));
            power_cells.push(mean(p));
        }
        if mechanism == MechanismKind::None {
            none_row = success_cells.clone();
        } else {
            best_rows.push((mechanism, success_cells.clone()));
        }
        success.push(ExperimentRow::new(mechanism.name(), success_cells));
        power.push(ExperimentRow::new(mechanism.name(), power_cells));
    }
    emit(&success);
    emit(&power);

    // Reproduction shape: under heavy attack (>= 30%), every real
    // mechanism must beat the no-reputation baseline on honest success.
    let heavy = [3usize, 4, 5]; // 30%, 40%, 50%
    let mut ok = true;
    for (mechanism, cells) in &best_rows {
        let wins = heavy.iter().filter(|&&i| cells[i] > none_row[i]).count();
        let pass = wins >= 2;
        println!(
            "check {}: beats baseline on {}/3 heavy-attack points -> {}",
            mechanism.name(),
            wins,
            if pass { "PASS" } else { "FAIL" }
        );
        ok &= pass;
    }
    println!("\nA1 reproduction: {}", if ok { "PASS" } else { "FAIL" });
}
