//! **A2 — churn and whitewashing sensitivity** (ablation): whitewashers
//! shed their bad reputation by re-joining under fresh identities; churn
//! takes nodes offline mid-run. Both erode mechanism power — and
//! whitewashing is exactly the attack that *requires* persistent
//! identities, i.e. the privacy-reputation tension in its sharpest form.
//!
//! The experiment keeps a fixed population of behaviour "slots" whose
//! *current identity* changes on whitewash: the mechanism sees a fresh
//! node (prior score), while ground truth knows it is the same adversary.
//!
//! Run: `cargo run --release -p tsn-bench --bin exp_churn`

use tsn_bench::{emit, mean};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_graph::generators;
use tsn_reputation::mechanism::build_mechanism;
use tsn_reputation::{
    DisclosurePolicy, MechanismKind, Population, PopulationConfig, SelectionPolicy,
};
use tsn_simnet::{NodeId, SimRng, SimTime};

/// Runs one whitewashing economy: returns (honest success rate,
/// mean score of adversarial current identities at the end).
fn run_whitewash(
    mechanism_kind: MechanismKind,
    whitewash_every: Option<usize>,
    offline_fraction: f64,
    seed: u64,
) -> (f64, f64) {
    let n = 80;
    let rounds = 30;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut graph_rng = rng.fork(1);
    let graph = generators::watts_strogatz(n, 8, 0.1, &mut graph_rng).expect("valid parameters");
    let mut pop_rng = rng.fork(2);
    let mut population = Population::new(n, PopulationConfig::with_malicious(0.3), &mut pop_rng);

    // identity[slot] = the NodeId the mechanism currently knows this slot as.
    let mut identity: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let mut next_id = n;
    let mut mechanism = build_mechanism(mechanism_kind, n);
    let disclosure = DisclosurePolicy::full();
    let selection = SelectionPolicy::Proportional { sharpness: 2.0 };

    let mut ok = 0u64;
    let mut tried = 0u64;
    for round in 0..rounds {
        // Whitewash: adversarial slots take fresh identities periodically.
        if let Some(every) = whitewash_every {
            if round > 0 && round % every == 0 {
                for (slot, id) in identity.iter_mut().enumerate().take(n) {
                    if population.is_adversarial(NodeId::from_index(slot)) {
                        *id = NodeId::from_index(next_id);
                        next_id += 1;
                        mechanism.resize(next_id);
                    }
                }
            }
        }
        // Churn: a random subset is offline this round.
        let offline: Vec<bool> = (0..n).map(|_| rng.gen_bool(offline_fraction)).collect();
        for consumer_slot in 0..n {
            if offline[consumer_slot] {
                continue;
            }
            let consumer = NodeId::from_index(consumer_slot);
            let candidates: Vec<usize> = graph
                .neighbors(consumer)
                .iter()
                .filter(|p| !offline[p.index()])
                .map(|p| p.index())
                .collect();
            let current_ids: Vec<NodeId> = candidates.iter().map(|&s| identity[s]).collect();
            let mech = &mechanism;
            let Some(chosen_id) = selection.select(&current_ids, |c| mech.score(c), &mut rng)
            else {
                continue;
            };
            let provider_slot = candidates[current_ids
                .iter()
                .position(|&c| c == chosen_id)
                .expect("chosen from list")];
            let provider = NodeId::from_index(provider_slot);
            let outcome = population.interact(provider, consumer, &mut rng);
            tried += 1;
            if outcome.is_success() && !population.is_adversarial(consumer) {
                ok += 1;
            } else if !population.is_adversarial(consumer) {
                // count tried only for honest consumers
            }
            if population.is_adversarial(consumer) {
                tried -= 1; // honest-consumer metric only
            }
            let mut report = population.feedback(consumer, provider, outcome, SimTime::ZERO, None);
            // Reports are filed under *current* identities.
            report.rater = identity[consumer_slot];
            report.ratee = identity[provider_slot];
            mechanism.record(&disclosure.view(&report));
        }
        if (round + 1) % 5 == 0 {
            mechanism.refresh();
        }
    }
    mechanism.refresh();
    let adv_scores: Vec<f64> = (0..n)
        .filter(|&s| population.is_adversarial(NodeId::from_index(s)))
        .map(|s| mechanism.score(identity[s]))
        .collect();
    (
        if tried == 0 {
            0.0
        } else {
            ok as f64 / tried as f64
        },
        mean(adv_scores),
    )
}

fn main() {
    let seeds = 3;
    let mechanisms = [
        MechanismKind::Beta,
        MechanismKind::EigenTrust,
        MechanismKind::PowerTrust,
    ];

    // --- Whitewashing sweep.
    let periods: [(&str, Option<usize>); 4] = [
        ("never", None),
        ("every10", Some(10)),
        ("every5", Some(5)),
        ("every2", Some(2)),
    ];
    let mut t1 = ExperimentTable::new(
        "A2a",
        "honest success rate vs whitewash frequency (30% adversaries)",
        periods.iter().map(|(l, _)| *l),
    );
    let mut t2 = ExperimentTable::new(
        "A2b",
        "mean adversary score (their current identity) vs whitewash frequency",
        periods.iter().map(|(l, _)| *l),
    );
    let mut never_vs_fast = Vec::new();
    for &mechanism in &mechanisms {
        let mut s_cells = Vec::new();
        let mut a_cells = Vec::new();
        for &(_, every) in &periods {
            let results: Vec<(f64, f64)> = (0..seeds)
                .map(|s| run_whitewash(mechanism, every, 0.0, 5000 + s))
                .collect();
            s_cells.push(mean(results.iter().map(|r| r.0)));
            a_cells.push(mean(results.iter().map(|r| r.1)));
        }
        never_vs_fast.push((s_cells[0], s_cells[3], a_cells[0], a_cells[3]));
        t1.push(ExperimentRow::new(mechanism.name(), s_cells));
        t2.push(ExperimentRow::new(mechanism.name(), a_cells));
    }
    emit(&t1);
    emit(&t2);

    // --- Churn sweep (no whitewashing): offline fraction.
    let offline = [0.0, 0.2, 0.4];
    let mut t3 = ExperimentTable::new(
        "A2c",
        "honest success rate vs offline fraction per round",
        offline.iter().map(|f| format!("{:.0}%", f * 100.0)),
    );
    for &mechanism in &mechanisms {
        let cells: Vec<f64> = offline
            .iter()
            .map(|&frac| mean((0..seeds).map(|s| run_whitewash(mechanism, None, frac, 6000 + s).0)))
            .collect();
        t3.push(ExperimentRow::new(mechanism.name(), cells));
    }
    emit(&t3);

    // Reproduction shape: whitewashing must help adversaries — honest
    // success drops as whitewashing accelerates (the adversary-score
    // column is reported for context; evidence-hungry mechanisms show it
    // rising, while fast-converging ones re-learn within a round or two).
    let mut ok = true;
    for (i, &mechanism) in mechanisms.iter().enumerate() {
        let (s_never, s_fast, a_never, a_fast) = never_vs_fast[i];
        let pass = s_fast < s_never - 0.02;
        println!(
            "check {}: honest success {:.3}->{:.3} (adversary score {:.3}->{:.3}) -> {}",
            mechanism.name(),
            s_never,
            s_fast,
            a_never,
            a_fast,
            if pass { "PASS" } else { "FAIL" }
        );
        ok &= pass;
    }
    println!("\nA2 reproduction: {}", if ok { "PASS" } else { "FAIL" });
}
