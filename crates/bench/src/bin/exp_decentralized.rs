//! **A4 — the price of full decentralization** (extension experiment):
//! the paper's objective is fully decentralized deployment; this
//! experiment measures what realizing the reputation facet *as a
//! protocol* costs, compared to the centralized oracle, under increasing
//! message loss.
//!
//! * gossip (push-sum): no aggregator at all; loss leaks mass → bias;
//! * score managers (DHT replicas): loss and crashes cost answers;
//! * the oracle: zero messages, zero error — the centralized upper bound.
//!
//! Run: `cargo run --release -p tsn-bench --bin exp_decentralized`

use tsn_bench::{emit, mean};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_graph::generators;
use tsn_protocol::{GossipConfig, GossipNetwork, ManagerConfig, ManagerNetwork};
use tsn_simnet::{
    latency::ConstantLatency, BernoulliLoss, Network, NetworkConfig, NoLoss, NodeId, SimDuration,
    SimRng,
};

const N: usize = 60;
const ROUNDS: usize = 40;

fn network(n: usize, loss: f64, seed: u64) -> Network {
    let config = NetworkConfig {
        latency: Box::new(ConstantLatency(SimDuration::from_millis(10))),
        loss: if loss > 0.0 {
            Box::new(BernoulliLoss::new(loss))
        } else {
            Box::new(NoLoss)
        },
    };
    let mut net = Network::new(config, SimRng::seed_from_u64(seed));
    for _ in 0..n {
        net.add_node();
    }
    net
}

/// Deterministic workload: per-subject ground truth value, observations
/// spread over observers.
fn observations(seed: u64) -> Vec<(NodeId, usize, f64)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..N * 12)
        .map(|_| {
            let observer = NodeId(rng.gen_range(0..N as u32));
            let subject = rng.gen_range(0..N);
            let truth = if subject.is_multiple_of(3) { 0.2 } else { 0.9 };
            let value = (truth + rng.gen_normal(0.0, 0.05)).clamp(0.0, 1.0);
            (observer, subject, value)
        })
        .collect()
}

fn run_gossip(loss: f64, seed: u64) -> (f64, u64, u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let graph = generators::watts_strogatz(N, 6, 0.1, &mut rng).expect("valid parameters");
    let mut gossip = GossipNetwork::new(
        graph,
        network(N, loss, seed ^ 0xAAAA),
        GossipConfig {
            subjects: N,
            ..Default::default()
        },
        rng.fork(1),
    );
    for (observer, subject, value) in observations(seed ^ 0x55) {
        gossip.observe(observer, subject, value);
    }
    gossip.run(ROUNDS);
    let report = gossip.report();
    (report.mean_error, report.costs.messages, report.costs.bytes)
}

fn run_managers(loss: f64, seed: u64) -> (f64, f64, u64, u64) {
    let mut managers =
        ManagerNetwork::new(network(N, loss, seed ^ 0xBBBB), ManagerConfig::default());
    for (observer, subject, value) in observations(seed ^ 0x55) {
        managers.submit_report(observer, NodeId::from_index(subject), value);
    }
    managers.run(3);
    for requester in 0..N as u32 {
        for subject in 0..N as u32 {
            if requester != subject && (requester + subject) % 7 == 0 {
                managers.submit_query(NodeId(requester), NodeId(subject));
            }
        }
    }
    managers.run(4);
    let report = managers.report();
    (
        report.mean_error,
        report.answer_rate,
        report.costs.messages,
        report.costs.bytes,
    )
}

fn main() {
    let losses = [0.0, 0.1, 0.3, 0.5];
    let seeds = 3;

    let mut error_table = ExperimentTable::new(
        "A4a",
        "mean |estimate − oracle| vs message-loss rate",
        losses.iter().map(|l| format!("loss={l:.1}")),
    );
    let mut cost_table = ExperimentTable::new(
        "A4b",
        "protocol cost (messages, KiB) at loss=0",
        ["messages", "KiB"],
    );

    let mut gossip_err = Vec::new();
    let mut manager_err = Vec::new();
    for &loss in &losses {
        gossip_err.push(mean((0..seeds).map(|s| run_gossip(loss, 800 + s).0)));
        manager_err.push(mean((0..seeds).map(|s| run_managers(loss, 900 + s).0)));
    }
    error_table.push(ExperimentRow::new("gossip(push-sum)", gossip_err.clone()));
    error_table.push(ExperimentRow::new("score-managers", manager_err.clone()));
    error_table.push(ExperimentRow::new(
        "centralized-oracle",
        vec![0.0; losses.len()],
    ));
    emit(&error_table);

    let (_, g_msgs, g_bytes) = run_gossip(0.0, 800);
    let (_, answer_rate, m_msgs, m_bytes) = run_managers(0.0, 900);
    cost_table.push(ExperimentRow::new(
        "gossip(push-sum)",
        vec![g_msgs as f64, g_bytes as f64 / 1024.0],
    ));
    cost_table.push(ExperimentRow::new(
        "score-managers",
        vec![m_msgs as f64, m_bytes as f64 / 1024.0],
    ));
    cost_table.push(ExperimentRow::new("centralized-oracle", vec![0.0, 0.0]));
    emit(&cost_table);

    // Answer-rate degradation for the manager protocol.
    let mut rate_table = ExperimentTable::new(
        "A4c",
        "score-manager query answer rate vs loss",
        losses.iter().map(|l| format!("loss={l:.1}")),
    );
    rate_table.push(ExperimentRow::new(
        "answer_rate",
        losses
            .iter()
            .map(|&l| mean((0..seeds).map(|s| run_managers(l, 900 + s).1)))
            .collect(),
    ));
    emit(&rate_table);

    // Reproduction shape: decentralization works (low error at zero
    // loss), degrades smoothly with loss, and costs real messages.
    let clean_ok = gossip_err[0] < 0.05 && manager_err[0] < 0.02;
    let degrades = gossip_err[3] > gossip_err[0];
    let costly = g_msgs > 0 && m_msgs > 0;
    println!(
        "check clean-network accuracy (gossip {:.4}, managers {:.4}): {}",
        gossip_err[0],
        manager_err[0],
        pass(clean_ok)
    );
    println!(
        "check loss degrades gossip ({:.4} -> {:.4}): {}",
        gossip_err[0],
        gossip_err[3],
        pass(degrades)
    );
    println!(
        "check decentralization costs messages ({g_msgs} / {m_msgs}): {}",
        pass(costly)
    );
    println!("note: manager answer rate at loss=0 is {answer_rate:.3}");
    println!(
        "\nA4 reproduction: {}",
        pass(clean_ok && degrades && costly)
    );
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}
