//! **A3 — trust-metric aggregator ablation**: does the choice of
//! aggregator (arithmetic vs geometric vs minimum vs power means) change
//! which configuration the optimizer recommends? The paper argues the
//! facets are complementary; complementary aggregators (geometric, min)
//! should refuse to trade a collapsed facet for strength elsewhere.
//!
//! Run: `cargo run --release -p tsn-bench --bin exp_aggregators`

use tsn_bench::{emit, experiment_base};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_core::{Aggregator, FacetScores, FacetWeights, Optimizer, TrustMetric};

fn main() {
    let base = experiment_base(0xA3)
        .nodes(48)
        .rounds(10)
        .graph(6, 0.1)
        .build()
        .expect("valid base");

    let aggregators = [
        Aggregator::Arithmetic,
        Aggregator::Geometric,
        Aggregator::Minimum,
        Aggregator::PowerMean(2.0),
        Aggregator::PowerMean(-2.0),
    ];

    let mut table = ExperimentTable::new(
        "A3",
        "optimizer winner per aggregator",
        [
            "disclosure",
            "privacy",
            "reputation",
            "satisfaction",
            "trust",
        ],
    );

    let mut winners = Vec::new();
    for aggregator in aggregators {
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).expect("valid metric");
        let mut optimizer = Optimizer::new(base.clone(), metric).expect("valid base");
        optimizer.seeds_per_point = 1;
        let sweep = optimizer.sweep();
        let best = optimizer.best(&sweep, None).best;
        table.push(ExperimentRow::new(
            format!("{}/{}", aggregator.label(), best.mechanism.name()),
            vec![
                best.disclosure_level as f64,
                best.facets.privacy,
                best.facets.reputation,
                best.facets.satisfaction,
                best.trust,
            ],
        ));
        winners.push((aggregator, best));
    }
    emit(&table);

    // On a FIXED set of facet profiles, complementary aggregators must
    // punish imbalance harder than the arithmetic mean does.
    let balanced = FacetScores::new(0.6, 0.6, 0.6).expect("valid");
    let lopsided = FacetScores::new(0.95, 0.95, 0.05).expect("valid");
    let mut ranks = ExperimentTable::new(
        "A3b",
        "balanced (0.6,0.6,0.6) vs lopsided (0.95,0.95,0.05) per aggregator",
        ["balanced", "lopsided", "prefers_balanced"],
    );
    let mut ok = true;
    for aggregator in aggregators {
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).expect("valid metric");
        let b = metric.trust(&balanced);
        let l = metric.trust(&lopsided);
        let prefers_balanced = b > l;
        ranks.push(ExperimentRow::new(
            aggregator.label(),
            vec![b, l, if prefers_balanced { 1.0 } else { 0.0 }],
        ));
        match aggregator {
            // Complementary aggregators must prefer balance...
            Aggregator::Geometric | Aggregator::Minimum => ok &= prefers_balanced,
            Aggregator::PowerMean(p) if p < 0.0 => ok &= prefers_balanced,
            // ...while the arithmetic mean notoriously does not.
            Aggregator::Arithmetic => ok &= !prefers_balanced,
            _ => {}
        }
    }
    emit(&ranks);

    // The winning configuration's weakest facet should be healthier under
    // complementary aggregation than under arithmetic.
    let weakest = |agg: Aggregator| {
        winners
            .iter()
            .find(|(a, _)| *a == agg)
            .map(|(_, best)| best.facets.weakest().1)
            .expect("aggregator evaluated")
    };
    let arithmetic_weakest = weakest(Aggregator::Arithmetic);
    let geometric_weakest = weakest(Aggregator::Geometric);
    println!(
        "weakest facet of the winner: arithmetic {arithmetic_weakest:.3} vs geometric {geometric_weakest:.3}"
    );
    ok &= geometric_weakest >= arithmetic_weakest - 0.05;

    println!("\nA3 reproduction: {}", if ok { "PASS" } else { "FAIL" });
}
