//! **F1 — Figure 1**: the interaction graph between satisfaction,
//! reputation, privacy and trust toward the system.
//!
//! The paper draws Figure 1 as a diagram of links; we *measure* each
//! drawn edge two ways and print its sign and strength:
//!
//! 1. **across configurations** — Spearman correlation of the two
//!    endpoint quantities over a Monte-Carlo sample of random system
//!    configurations (does tuning the system move the two together?);
//! 2. **analytically** — the coupling derivative of the Section-3
//!    dynamics at the neutral state.
//!
//! Reproduction succeeds iff every edge of Figure 1 carries the paper's
//! sign. Run: `cargo run --release -p tsn-bench --bin fig1_interactions`

use tsn_bench::{emit, experiment_base};
use tsn_core::dynamics::{DynamicsState, InteractionDynamics};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_core::runner::DisclosureLevel;
use tsn_graph::metrics::spearman;
use tsn_reputation::MechanismKind;
use tsn_simnet::SimRng;

fn main() {
    // --- Monte-Carlo over random configurations.
    let runs = 40;
    let mut rng = SimRng::seed_from_u64(0xF16);
    let mut privacy = Vec::new();
    let mut reputation = Vec::new();
    let mut satisfaction = Vec::new();
    let mut trust = Vec::new();
    let mut respect = Vec::new();
    for i in 0..runs {
        let o = experiment_base(9000 + i)
            .nodes(60)
            .rounds(15)
            .disclosure(
                DisclosureLevel::from_index(rng.gen_range(0..5usize)).expect("index in range"),
            )
            .mechanism(
                *rng.choose(&[
                    MechanismKind::Beta,
                    MechanismKind::EigenTrust,
                    MechanismKind::PowerTrust,
                ])
                .expect("non-empty"),
            )
            .malicious_fraction(rng.gen_range(0..35u32) as f64 / 100.0)
            .leak_probability(rng.gen_f64() * 0.5)
            .run()
            .expect("valid config");
        privacy.push(o.facets.privacy);
        reputation.push(o.facets.reputation);
        satisfaction.push(o.facets.satisfaction);
        trust.push(o.global_trust);
        respect.push(o.respect_rate);
    }
    let rho = |a: &[f64], b: &[f64]| spearman(a, b).unwrap_or(0.0);

    let mut table = ExperimentTable::new(
        "F1",
        "Figure 1 edges: Spearman across random configs + analytic coupling sign",
        ["spearman", "analytic", "paper_sign"],
    );
    let dynamics = InteractionDynamics::default();
    let neutral = DynamicsState::neutral();
    let couple = |src: &str, dst: &str| dynamics.coupling_sign(&neutral, src, dst).signum();

    table.push(ExperimentRow::new(
        "satisfaction<->trust",
        vec![
            rho(&satisfaction, &trust),
            couple("satisfaction", "trust"),
            1.0,
        ],
    ));
    table.push(ExperimentRow::new(
        "reputation<->trust",
        vec![rho(&reputation, &trust), couple("reputation", "trust"), 1.0],
    ));
    table.push(ExperimentRow::new(
        "reputation<->satisfaction",
        vec![
            rho(&reputation, &satisfaction),
            couple("reputation", "satisfaction"),
            1.0,
        ],
    ));
    table.push(ExperimentRow::new(
        "privacy(respect)<->satisfaction",
        vec![
            rho(&respect, &satisfaction),
            couple("privacy", "satisfaction"),
            1.0,
        ],
    ));
    table.push(ExperimentRow::new(
        "privacy<->trust",
        vec![
            rho(&privacy, &trust),
            couple("privacy", "satisfaction"),
            1.0,
        ],
    ));
    emit(&table);

    // Self-check: every measured Figure-1 edge must carry the paper's sign.
    let checks = [
        ("satisfaction<->trust", rho(&satisfaction, &trust)),
        ("reputation<->trust", rho(&reputation, &trust)),
        (
            "privacy(respect)<->satisfaction",
            rho(&respect, &satisfaction),
        ),
    ];
    let mut ok = true;
    for (name, value) in checks {
        let pass = value > 0.0;
        println!(
            "check {name}: spearman {value:+.3} -> {}",
            if pass { "PASS" } else { "FAIL" }
        );
        ok &= pass;
    }
    println!("\nF1 reproduction: {}", if ok { "PASS" } else { "FAIL" });
}
