//! **E1–E5 — the five Section-3 interaction claims**, each verified by
//! simulation (and E1–E3 also by the analytic dynamics; see
//! `fig1_interactions` for the full analytic edge table).
//!
//! Run: `cargo run --release -p tsn-bench --bin exp_interactions`

use tsn_bench::{emit, experiment_base, mean};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_core::runner::{DisclosureLevel, SeriesRecorder};
use tsn_graph::metrics::spearman;
use tsn_reputation::MechanismKind;

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

fn main() {
    let mut all_ok = true;

    // ------------------------------------------------------------------
    // E1: trust <-> satisfaction are mutually reinforcing.
    // Within-run evidence: the per-round series of mean trust and mean
    // satisfaction co-move. An observer streams the series as the run
    // progresses — no post-hoc sample mining.
    let mut rhos = Vec::new();
    for seed in 0..5 {
        let mut recorder = SeriesRecorder::new(["trust", "satisfaction"]);
        experiment_base(1100 + seed)
            .nodes(60)
            .rounds(20)
            .run_observed(&mut [&mut recorder])
            .expect("valid config");
        let trust = recorder.series("trust").expect("subscribed");
        let satisfaction = recorder.series("satisfaction").expect("subscribed");
        if let Some(r) = spearman(trust, satisfaction) {
            rhos.push(r);
        }
    }
    let e1 = mean(rhos.clone());
    let mut t1 = ExperimentTable::new(
        "E1",
        "trust<->satisfaction co-movement (per-round series)",
        ["spearman"],
    );
    t1.push(ExperimentRow::new("mean_over_runs", vec![e1]));
    emit(&t1);
    println!("E1 (positive co-movement): {}\n", pass(e1 > 0.3));
    all_ok &= e1 > 0.3;

    // ------------------------------------------------------------------
    // E2: the more efficient the mechanism, the more users trust the
    // system. Vary mechanism quality (None -> TrustMe -> Beta/EigenTrust)
    // under attack and compare trust.
    let mut t2 = ExperimentTable::new(
        "E2",
        "mechanism power -> trust (30% malicious)",
        ["reputation_facet", "global_trust"],
    );
    let mut by_power: Vec<(f64, f64)> = Vec::new();
    for mechanism in MechanismKind::ALL {
        let mut reps = Vec::new();
        let mut trusts = Vec::new();
        for seed in 0..4 {
            let o = experiment_base(1200 + seed)
                .nodes(60)
                .rounds(15)
                .mechanism(mechanism)
                .malicious_fraction(0.3)
                .run()
                .expect("valid config");
            reps.push(o.facets.reputation);
            trusts.push(o.global_trust);
        }
        let (r, t) = (mean(reps), mean(trusts));
        by_power.push((r, t));
        t2.push(ExperimentRow::new(mechanism.name(), vec![r, t]));
    }
    emit(&t2);
    // The claim: more mechanism power → more trust. Checked two ways:
    // positive rank correlation over the mechanism sweep, and every real
    // mechanism (power > none) beating the powerless baseline on trust.
    let e2_rho = spearman(
        &by_power.iter().map(|x| x.0).collect::<Vec<_>>(),
        &by_power.iter().map(|x| x.1).collect::<Vec<_>>(),
    )
    .unwrap_or(0.0);
    let none_trust = by_power[0].1; // MechanismKind::ALL starts with None
    let e2 = e2_rho > 0.0 && by_power[1..].iter().all(|&(_, t)| t > none_trust);
    println!(
        "E2 (power->trust: rho {e2_rho:+.3}, all real mechanisms beat baseline): {}\n",
        pass(e2)
    );
    all_ok &= e2;

    // ------------------------------------------------------------------
    // E3: the more efficient the mechanism, the more users are satisfied.
    let sats: Vec<f64> = MechanismKind::ALL
        .iter()
        .map(|&mechanism| {
            mean((0..4).map(|seed| {
                experiment_base(1200 + seed)
                    .nodes(60)
                    .rounds(15)
                    .mechanism(mechanism)
                    .malicious_fraction(0.3)
                    .run()
                    .expect("valid config")
                    .facets
                    .satisfaction
            }))
        })
        .collect();
    let e3_rho = spearman(&by_power.iter().map(|x| x.0).collect::<Vec<_>>(), &sats).unwrap_or(0.0);
    let e3 = e3_rho > 0.0 && sats[1..].iter().all(|&s| s > sats[0]);
    println!(
        "E3 (power->satisfaction: rho {e3_rho:+.3}, all real mechanisms beat baseline): {}\n",
        pass(e3)
    );
    all_ok &= e3;

    // ------------------------------------------------------------------
    // E4: an efficient mechanism that finds the majority untrustworthy
    // leaves the system untrusted even though feedback keeps flowing.
    let mut t4 = ExperimentTable::new(
        "E4",
        "efficient mechanism, hostile majority (70% malicious, full disclosure)",
        ["reputation_facet", "global_trust", "last_round_reports"],
    );
    let mut hostile_trust = Vec::new();
    let mut honest_trust = Vec::new();
    let mut hostile_rep = Vec::new();
    let mut last_reports = Vec::new();
    for seed in 0..4 {
        let o = experiment_base(1400 + seed)
            .nodes(60)
            .rounds(18)
            .disclosure(DisclosureLevel::Full)
            .malicious_fraction(0.7)
            .run()
            .expect("valid config");
        hostile_trust.push(o.global_trust);
        hostile_rep.push(o.facets.reputation);
        last_reports.push(o.samples.last().expect("rounds ran").reports_filed as f64);

        let honest = experiment_base(1400 + seed)
            .nodes(60)
            .rounds(18)
            .disclosure(DisclosureLevel::Full)
            .malicious_fraction(0.0)
            .run()
            .expect("valid config");
        honest_trust.push(honest.global_trust);
    }
    t4.push(ExperimentRow::new(
        "hostile(70%)",
        vec![
            mean(hostile_rep.clone()),
            mean(hostile_trust.clone()),
            mean(last_reports.clone()),
        ],
    ));
    t4.push(ExperimentRow::new(
        "honest(0%)",
        vec![f64::NAN, mean(honest_trust.clone()), f64::NAN],
    ));
    emit(&t4);
    let e4 = mean(hostile_trust) < mean(honest_trust) - 0.05 && mean(last_reports) > 0.0;
    println!("E4 (low trust, feedback persists): {}\n", pass(e4));
    all_ok &= e4;

    // ------------------------------------------------------------------
    // E5a: more information gathered -> more efficient mechanism.
    let rep_at = |level: DisclosureLevel| {
        mean((0..4).map(|seed| {
            experiment_base(1500 + seed)
                .nodes(60)
                .rounds(15)
                .disclosure(level)
                .malicious_fraction(0.3)
                .run()
                .expect("valid config")
                .facets
                .reputation
        }))
    };
    let e5a = rep_at(DisclosureLevel::Full) > rep_at(DisclosureLevel::Minimal) + 0.02;
    // E5b: less trust -> less disclosure (adaptive users under a hostile,
    // leaky system).
    let willingness = |adaptive: bool| {
        mean((0..3).map(|seed| {
            experiment_base(1600 + seed)
                .nodes(60)
                .rounds(20)
                .disclosure(DisclosureLevel::Full)
                .malicious_fraction(0.5)
                .leak_probability(0.8)
                .adaptive_disclosure(adaptive)
                .run()
                .expect("valid config")
                .mean_willingness
        }))
    };
    let e5b = willingness(true) < willingness(false) - 1e-9;
    // E5c: "the more a user's privacy is respected, the more this user
    // is satisfied" — a *per-user* claim: pool (respect, satisfaction)
    // pairs across users of privacy-concerned populations.
    let mut respects = Vec::new();
    let mut user_sats = Vec::new();
    for seed in 0..4 {
        let o = experiment_base(1700 + seed)
            .nodes(60)
            .rounds(15)
            .privacy_concern(0.9)
            .malicious_fraction(0.3)
            .leak_probability(0.6)
            .run()
            .expect("valid config");
        respects.extend(o.per_user_respect.iter().copied());
        user_sats.extend(o.per_user_satisfaction.iter().copied());
    }
    let e5c_rho = spearman(&respects, &user_sats).unwrap_or(0.0);
    let e5c = e5c_rho > 0.1;

    let mut t5 = ExperimentTable::new("E5", "disclosure/trust/privacy loops", ["value"]);
    t5.push(ExperimentRow::new(
        "rep_power(level0)",
        vec![rep_at(DisclosureLevel::Minimal)],
    ));
    t5.push(ExperimentRow::new(
        "rep_power(level4)",
        vec![rep_at(DisclosureLevel::Full)],
    ));
    t5.push(ExperimentRow::new(
        "willingness(open_loop)",
        vec![willingness(false)],
    ));
    t5.push(ExperimentRow::new(
        "willingness(adaptive)",
        vec![willingness(true)],
    ));
    t5.push(ExperimentRow::new("respect<->satisfaction", vec![e5c_rho]));
    emit(&t5);
    println!("E5a (info->power): {}", pass(e5a));
    println!("E5b (distrust->retraction): {}", pass(e5b));
    println!("E5c (respect->satisfaction): {}", pass(e5c));
    all_ok &= e5a && e5b && e5c;

    println!("\nE1-E5 reproduction: {}", pass(all_ok));
}
