//! **F2R — Figure 2 (right)**: the mutual impact of the two settable
//! axes. Sharing more information must (a) lower the privacy facet,
//! (b) raise the reputation-power facet, and (c) leave the same global
//! satisfaction reachable from *different* settings (iso-satisfaction).
//!
//! Run: `cargo run --release -p tsn-bench --bin fig2_right_tradeoff`

use tsn_bench::{emit, experiment_base, mean};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_core::scenario::run_scenario;
use tsn_reputation::{DisclosurePolicy, MechanismKind};

fn main() {
    let seeds = 4;
    let mechanisms =
        [MechanismKind::Beta, MechanismKind::EigenTrust, MechanismKind::PowerTrust];

    let mut table = ExperimentTable::new(
        "F2R",
        "Figure 2 (right): disclosure ladder vs the three facets (mean over mechanisms & seeds)",
        ["shared_info", "privacy", "reputation", "satisfaction", "trust"],
    );

    let mut rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for level in 0..5usize {
        let mut p = Vec::new();
        let mut r = Vec::new();
        let mut s = Vec::new();
        let mut t = Vec::new();
        for &mechanism in &mechanisms {
            for seed in 0..seeds {
                let mut c = experiment_base(7000 + seed);
                c.nodes = 80;
                c.rounds = 20;
                c.disclosure_level = level;
                c.mechanism = mechanism;
                let o = run_scenario(c).expect("valid config");
                p.push(o.facets.privacy);
                r.push(o.facets.reputation);
                s.push(o.facets.satisfaction);
                t.push(o.global_trust);
            }
        }
        let row =
            (level, mean(p.clone()), mean(r.clone()), mean(s.clone()), mean(t.clone()));
        rows.push(row);
        table.push(ExperimentRow::new(
            format!("level={level}"),
            vec![
                DisclosurePolicy::ladder(level).exposure(),
                row.1,
                row.2,
                row.3,
                row.4,
            ],
        ));
    }
    emit(&table);

    // --- Check (a): privacy decreases monotonically along the ladder.
    let privacy_monotone = rows.windows(2).all(|w| w[1].1 < w[0].1 + 1e-9);
    // --- Check (b): reputation power higher at full than at minimal.
    let reputation_rises = rows[4].2 > rows[0].2 + 0.02;
    // --- Check (c): iso-satisfaction — two settings at least two ladder
    //     steps apart with near-equal satisfaction.
    let iso = rows.iter().enumerate().any(|(i, a)| {
        rows.iter()
            .enumerate()
            .any(|(j, b)| i + 2 <= j && (a.3 - b.3).abs() < 0.05)
    });
    // --- The antagonism: no single setting maximizes both facets.
    let best_privacy = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows")
        .0;
    let best_reputation = rows
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("rows")
        .0;

    println!("check (a) privacy monotonically decreasing: {}", pass(privacy_monotone));
    println!("check (b) reputation power rises with disclosure: {}", pass(reputation_rises));
    println!("check (c) iso-satisfaction from distant settings: {}", pass(iso));
    println!(
        "check (d) antagonism: privacy peaks at level {best_privacy}, reputation at level {best_reputation}: {}",
        pass(best_privacy != best_reputation)
    );
    println!(
        "\nF2R reproduction: {}",
        pass(privacy_monotone && reputation_rises && iso && best_privacy != best_reputation)
    );
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}
