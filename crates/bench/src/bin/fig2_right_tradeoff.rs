//! **F2R — Figure 2 (right)**: the mutual impact of the two settable
//! axes. Sharing more information must (a) lower the privacy facet,
//! (b) raise the reputation-power facet, and (c) leave the same global
//! satisfaction reachable from *different* settings (iso-satisfaction).
//!
//! Run: `cargo run --release -p tsn-bench --bin fig2_right_tradeoff`

use tsn_bench::{emit, experiment_base};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_core::runner::{DisclosureLevel, SweepGrid, SweepRunner};
use tsn_reputation::MechanismKind;

fn main() {
    // One declarative grid replaces the hand-rolled triple loop: the
    // full disclosure ladder × three mechanisms × four seeds, executed
    // across all cores with per-cell deterministic seeding.
    let grid = SweepGrid::over(experiment_base(7000).nodes(80).rounds(20))
        .disclosures(DisclosureLevel::ALL)
        .mechanisms([
            MechanismKind::Beta,
            MechanismKind::EigenTrust,
            MechanismKind::PowerTrust,
        ])
        .seeds((0..4).map(|s| 7000 + s));
    println!("sweeping {} cells...", grid.len());
    let report = SweepRunner::parallel().run(&grid).expect("valid grid");

    let mut table = ExperimentTable::new(
        "F2R",
        "Figure 2 (right): disclosure ladder vs the three facets (mean over mechanisms & seeds)",
        [
            "shared_info",
            "privacy",
            "reputation",
            "satisfaction",
            "trust",
        ],
    );

    // (level, privacy, reputation, satisfaction, trust) per ladder rung.
    let rows: Vec<(usize, f64, f64, f64, f64)> = report
        .mean_by(|c| c.cell.disclosure.index())
        .into_iter()
        .map(|(level, facets, trust)| {
            (
                level,
                facets.privacy,
                facets.reputation,
                facets.satisfaction,
                trust,
            )
        })
        .collect();
    for &(level, p, r, s, t) in &rows {
        table.push(ExperimentRow::new(
            format!("level={level}"),
            vec![
                DisclosureLevel::from_index(level)
                    .expect("grid level")
                    .exposure(),
                p,
                r,
                s,
                t,
            ],
        ));
    }
    emit(&table);

    // --- Check (a): privacy decreases monotonically along the ladder.
    let privacy_monotone = rows.windows(2).all(|w| w[1].1 < w[0].1 + 1e-9);
    // --- Check (b): reputation power higher at full than at minimal.
    let reputation_rises = rows[4].2 > rows[0].2 + 0.02;
    // --- Check (c): iso-satisfaction — two settings at least two ladder
    //     steps apart with near-equal satisfaction.
    let iso = rows.iter().enumerate().any(|(i, a)| {
        rows.iter()
            .enumerate()
            .any(|(j, b)| i + 2 <= j && (a.3 - b.3).abs() < 0.05)
    });
    // --- The antagonism: no single setting maximizes both facets.
    let best_privacy = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows")
        .0;
    let best_reputation = rows
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("rows")
        .0;

    println!(
        "check (a) privacy monotonically decreasing: {}",
        pass(privacy_monotone)
    );
    println!(
        "check (b) reputation power rises with disclosure: {}",
        pass(reputation_rises)
    );
    println!(
        "check (c) iso-satisfaction from distant settings: {}",
        pass(iso)
    );
    println!(
        "check (d) antagonism: privacy peaks at level {best_privacy}, reputation at level {best_reputation}: {}",
        pass(best_privacy != best_reputation)
    );
    println!(
        "\nF2R reproduction: {}",
        pass(privacy_monotone && reputation_rises && iso && best_privacy != best_reputation)
    );
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}
