//! **F2L — Figure 2 (left)**: the Venn regions of configurations meeting
//! the privacy / reputation / satisfaction guarantees, and **Area A** —
//! their intersection, the paper's trade-off target.
//!
//! Run: `cargo run --release -p tsn-bench --bin fig2_left_region`

use tsn_bench::{emit, experiment_base};
use tsn_core::report::{ExperimentRow, ExperimentTable};
use tsn_core::{FacetScores, Optimizer, TrustMetric};

fn main() {
    let base = experiment_base(0xF2)
        .nodes(60)
        .rounds(12)
        .build()
        .expect("valid base");
    let mut optimizer = Optimizer::new(base, TrustMetric::default()).expect("valid base");
    optimizer.seeds_per_point = 2;
    println!("sweeping 5 mechanisms x 5 disclosure levels x 3 policy profiles...");
    let sweep = optimizer.sweep();

    let thresholds = FacetScores::new(0.5, 0.55, 0.35).expect("valid thresholds");
    let report = optimizer.area_report(&sweep, thresholds);

    let mut table = ExperimentTable::new(
        "F2L",
        "Figure 2 (left): Venn region sizes over the configuration grid",
        ["configs", "fraction"],
    );
    let total = report.total as f64;
    for (label, count) in [
        ("privacy_region", report.privacy_region),
        ("reputation_region", report.reputation_region),
        ("satisfaction_region", report.satisfaction_region),
        ("privacy&reputation", report.privacy_and_reputation),
        ("privacy&satisfaction", report.privacy_and_satisfaction),
        (
            "reputation&satisfaction",
            report.reputation_and_satisfaction,
        ),
        ("AREA_A(all three)", report.area_a),
        ("total", report.total),
    ] {
        table.push(ExperimentRow::new(
            label,
            vec![count as f64, count as f64 / total],
        ));
    }
    emit(&table);

    // Representative Area-A configurations and the overall winner.
    let mut in_a: Vec<_> = sweep
        .points
        .iter()
        .filter(|p| p.facets.meets(&thresholds))
        .collect();
    in_a.sort_by(|a, b| b.trust.partial_cmp(&a.trust).expect("finite"));
    println!("top Area-A configurations:");
    for p in in_a.iter().take(5) {
        println!(
            "  mechanism={:<11} disclosure={} policies={:<10} {}  trust={:.3}",
            p.mechanism.name(),
            p.disclosure_level,
            p.policy_profile.label(),
            p.facets,
            p.trust
        );
    }

    let best = optimizer.best(&sweep, Some(thresholds));
    println!(
        "\noptimizer winner (constrained): mechanism={} disclosure={} policies={} trust={:.3}",
        best.best.mechanism,
        best.best.disclosure_level,
        best.best.policy_profile.label(),
        best.best.trust
    );
    let refined = optimizer.hill_climb(&best.best);
    println!(
        "hill-climb refinement: disclosure={} policies={} trust={:.3}",
        refined.disclosure_level,
        refined.policy_profile.label(),
        refined.trust
    );

    // Reproduction criteria: Area A non-empty AND a strict subset of each
    // single-facet region.
    let pass = report.area_a > 0
        && report.area_a < report.privacy_region
        && report.area_a < report.reputation_region
        && report.area_a < report.satisfaction_region;
    println!("\nF2L reproduction: {}", if pass { "PASS" } else { "FAIL" });
}
