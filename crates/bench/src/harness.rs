//! A minimal, dependency-free micro-benchmark harness.
//!
//! The container this workspace builds in has no access to crates.io,
//! so `criterion` is not available; this harness keeps the same
//! shape — named benchmarks, warm-up, repeated timed runs, median/p95
//! statistics — at a fraction of the rigor, which is enough to anchor
//! relative performance across PRs. Bench targets set `harness = false`
//! and call [`Bench::run`] from `main`.
//!
//! # The perf trajectory (`BENCH_<suite>.json`)
//!
//! Every bench binary collects its results into a [`BenchSuite`] and
//! calls [`BenchSuite::finish`], which writes a machine-readable
//! `BENCH_<suite>.json` (median/p95/min/max nanoseconds, throughput,
//! config fingerprint) at the workspace root. The committed copies are
//! the repo's performance baseline; CI re-runs the benches with
//! `BENCH_CHECK=1`, which fails the build when a median regresses more
//! than [`DEFAULT_MAX_REGRESSION`] (override with
//! `BENCH_CHECK_MAX_REGRESSION`, e.g. `0.5` for 50 %) against the
//! committed baseline, *before* overwriting it with fresh numbers.
//! Noisy-runner escape hatch: skip the CI job via its PR label.

use std::hint::black_box as std_black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tsn_core::json::JsonValue;

/// Maximum tolerated median regression (fraction of the baseline) when
/// `BENCH_CHECK=1`: 0.25 = fail beyond +25 %.
pub const DEFAULT_MAX_REGRESSION: f64 = 0.25;

/// Re-exported `black_box`, so bench code reads like the criterion
/// idiom.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// A named group of benchmarks sharing warm-up/measurement settings.
pub struct Bench {
    group: String,
    warmup_iters: u32,
    sample_count: u32,
}

impl Bench {
    /// Creates a group with default settings (3 warm-up iterations,
    /// 10 samples).
    pub fn new(group: impl Into<String>) -> Self {
        Bench {
            group: group.into(),
            warmup_iters: 3,
            sample_count: 10,
        }
    }

    /// Overrides the number of measured samples.
    pub fn samples(mut self, count: u32) -> Self {
        self.sample_count = count.max(1);
        self
    }

    /// Overrides the number of warm-up iterations. [`Bench::run`]
    /// clamps to at least one, so a discarded warm-up pass always
    /// precedes the measured samples.
    pub fn warmup(mut self, iters: u32) -> Self {
        self.warmup_iters = iters;
        self
    }

    /// Times `f` (one call = one sample) and prints
    /// `group/name  median  p95  min  max`. At least one discarded
    /// warm-up iteration always precedes the measured samples, so the
    /// first measured call never pays the cold-start cost (lazy page
    /// faults, allocator growth, branch-predictor training) that used
    /// to blow p95 up to several multiples of the median.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        for _ in 0..self.warmup_iters.max(1) {
            std_black_box(f());
        }
        let mut samples: Vec<Duration> = (0..self.sample_count)
            .map(|_| {
                // tsn-lint: allow(wall-clock, "the bench harness times real execution; results feed BENCH_*.json, not replayed state")
                let start = Instant::now();
                std_black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let p95_index = ((samples.len() as f64 * 0.95).ceil() as usize)
            .saturating_sub(1)
            .min(samples.len() - 1);
        let result = BenchResult {
            name: format!("{}/{name}", self.group),
            median: samples[samples.len() / 2],
            p95: samples[p95_index],
            min: samples[0],
            max: *samples.last().expect("at least one sample"),
            samples: samples.len() as u32,
            items: None,
        };
        println!(
            "{:<44} median {:>12?}  p95 {:>12?}  min {:>12?}  max {:>12?}",
            result.name, result.median, result.p95, result.min, result.max
        );
        result
    }

    /// Like [`Bench::run`] for a workload of `items` units (reports,
    /// interactions, cells…), so the suite can report items/second.
    pub fn run_items<T>(&self, name: &str, items: u64, f: impl FnMut() -> T) -> BenchResult {
        let mut result = self.run(name, f);
        result.items = Some(items);
        result
    }
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` label.
    pub name: String,
    /// Median sample.
    pub median: Duration,
    /// 95th-percentile sample.
    pub p95: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of measured samples.
    pub samples: u32,
    /// Workload units per call, when meaningful (enables items/second).
    pub items: Option<u64>,
}

impl BenchResult {
    /// Throughput in units/second: items per call (1 when unset) over
    /// the median sample.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.median.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.items.unwrap_or(1) as f64 / secs
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::str(self.name.as_str())),
            ("median_ns", JsonValue::from(self.median.as_nanos() as u64)),
            ("p95_ns", JsonValue::from(self.p95.as_nanos() as u64)),
            ("min_ns", JsonValue::from(self.min.as_nanos() as u64)),
            ("max_ns", JsonValue::from(self.max.as_nanos() as u64)),
            ("samples", JsonValue::from(self.samples as u64)),
            (
                "items",
                match self.items {
                    Some(i) => JsonValue::from(i),
                    None => JsonValue::Null,
                },
            ),
            (
                "throughput_per_sec",
                JsonValue::from(self.throughput_per_sec()),
            ),
        ])
    }
}

/// Collects every [`BenchResult`] of one bench binary and emits
/// `BENCH_<suite>.json` — the unit of the repo's perf trajectory.
pub struct BenchSuite {
    name: String,
    fingerprint: String,
    results: Vec<BenchResult>,
}

impl BenchSuite {
    /// Starts a suite. `fingerprint` describes the workload
    /// configuration (sizes, seeds, sample counts) so a baseline is
    /// only comparable to runs of the same workload.
    pub fn new(name: impl Into<String>, fingerprint: impl Into<String>) -> Self {
        BenchSuite {
            name: name.into(),
            fingerprint: fingerprint.into(),
            results: Vec::new(),
        }
    }

    /// Records a result (pass-through, so call sites stay one-liners).
    pub fn record(&mut self, result: BenchResult) -> &BenchResult {
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// The output path: `BENCH_<suite>.json` in `BENCH_OUT_DIR` or the
    /// workspace root.
    pub fn output_path(&self) -> PathBuf {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                // crates/bench → workspace root.
                Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
            });
        dir.join(format!("BENCH_{}.json", self.name))
    }

    fn to_json(&self) -> String {
        let mut out = JsonValue::object([
            ("suite", JsonValue::str(self.name.as_str())),
            ("fingerprint", JsonValue::str(self.fingerprint.as_str())),
            (
                "results",
                JsonValue::array(self.results.iter().map(|r| r.to_json())),
            ),
        ])
        .to_string();
        out.push('\n');
        out
    }

    /// Checks this run against a previously written baseline file. A
    /// baseline whose workload fingerprint differs is skipped (the
    /// numbers are not comparable), as is a missing baseline.
    ///
    /// # Errors
    ///
    /// Returns the list of regressions beyond `max_regression`
    /// (fractional, e.g. 0.25 = +25 %).
    pub fn check_against(&self, baseline_path: &Path, max_regression: f64) -> Result<(), String> {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(_) => return Ok(()), // no baseline yet: first run seeds it
        };
        if let Some(baseline_fingerprint) = parse_fingerprint(&baseline) {
            if baseline_fingerprint != self.fingerprint {
                println!(
                    "BENCH_CHECK: baseline fingerprint differs ({baseline_fingerprint:?} vs \
                     {:?}); workload changed, skipping the gate and reseeding",
                    self.fingerprint
                );
                return Ok(());
            }
        }
        let baseline_medians = parse_medians(&baseline);
        let mut regressions = Vec::new();
        for r in &self.results {
            let Some(&old_ns) =
                baseline_medians.iter().find_map(
                    |(n, v)| {
                        if n == &r.name {
                            Some(v)
                        } else {
                            None
                        }
                    },
                )
            else {
                continue; // new benchmark: no baseline to regress from
            };
            let new_ns = r.median.as_nanos() as f64;
            if old_ns > 0.0 && new_ns > old_ns * (1.0 + max_regression) {
                regressions.push(format!(
                    "{}: {:.0}ns -> {:.0}ns (+{:.0}%, limit +{:.0}%)",
                    r.name,
                    old_ns,
                    new_ns,
                    (new_ns / old_ns - 1.0) * 100.0,
                    max_regression * 100.0
                ));
            }
        }
        if regressions.is_empty() {
            Ok(())
        } else {
            Err(regressions.join("\n"))
        }
    }

    /// Writes `BENCH_<suite>.json` and, when `BENCH_CHECK` is set,
    /// first gates this run against the committed baseline (exit 1 on
    /// a median regression beyond the threshold). Call as the last
    /// statement of a bench `main`.
    pub fn finish(self) {
        let path = self.output_path();
        if std::env::var_os("BENCH_CHECK").is_some() {
            let max_regression = std::env::var("BENCH_CHECK_MAX_REGRESSION")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(DEFAULT_MAX_REGRESSION);
            if let Err(report) = self.check_against(&path, max_regression) {
                // Keep the committed baseline intact — overwriting it
                // here would make an immediate re-run pass silently.
                // The regressed numbers land next to it for inspection.
                let fresh = path.with_extension("json.new");
                let _ = std::fs::write(&fresh, self.to_json());
                eprintln!(
                    "BENCH_CHECK failed for suite '{}' vs {} (fresh run written to {}):\n{report}",
                    self.name,
                    path.display(),
                    fresh.display()
                );
                std::process::exit(1);
            }
            println!(
                "BENCH_CHECK ok: no median regression beyond +{:.0}%",
                max_regression * 100.0
            );
        }
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// Extracts `(name, median_ns)` pairs from a suite JSON file. The
/// harness emits that file itself, so a minimal scanner (rather than a
/// full JSON parser) is enough — and keeps the workspace
/// dependency-free.
/// Extracts the suite-level workload fingerprint from a suite JSON
/// file (emitted before the results array).
fn parse_fingerprint(json: &str) -> Option<String> {
    let start = json.find("\"fingerprint\":\"")? + 15;
    let end = json[start..].find('"')?;
    Some(json[start..start + end].to_string())
}

fn parse_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find("\"name\":\"") {
        let after = &rest[start + 8..];
        let Some(name_end) = after.find('"') else {
            break;
        };
        let name = after[..name_end].to_string();
        let Some(median_at) = after.find("\"median_ns\":") else {
            break;
        };
        let digits: String = after[median_at + 12..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse::<f64>() {
            out.push((name, v));
        }
        rest = &after[median_at..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let result = Bench::new("test")
            .samples(3)
            .warmup(1)
            .run("spin", || (0..1000u64).map(black_box).sum::<u64>());
        assert!(result.min <= result.median && result.median <= result.max);
        assert!(result.median <= result.p95 && result.p95 <= result.max);
        assert_eq!(result.name, "test/spin");
        assert_eq!(result.samples, 3);
    }

    #[test]
    fn throughput_uses_items() {
        let result = Bench::new("test")
            .samples(2)
            .warmup(0)
            .run_items("spin", 500, || (0..500u64).map(black_box).sum::<u64>());
        assert_eq!(result.items, Some(500));
        assert!(result.throughput_per_sec() > 0.0);
    }

    #[test]
    fn suite_json_round_trips_medians() {
        let mut suite = BenchSuite::new("unit", "n=1");
        suite.record(Bench::new("g").samples(2).warmup(0).run("a", || 1 + 1));
        suite.record(Bench::new("g").samples(2).warmup(0).run("b", || 2 + 2));
        let json = suite.to_json();
        assert!(json.contains("\"suite\":\"unit\""));
        assert!(json.contains("\"fingerprint\":\"n=1\""));
        let medians = parse_medians(&json);
        assert_eq!(medians.len(), 2);
        assert_eq!(medians[0].0, "g/a");
        assert_eq!(medians[1].0, "g/b");
        assert_eq!(
            medians[0].1,
            suite.results[0].median.as_nanos() as f64,
            "median survives the round trip"
        );
    }

    #[test]
    fn regression_check_flags_only_beyond_threshold() {
        let dir = std::env::temp_dir().join("tsn_bench_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_unit.json");
        // Baseline: 100ns and 1000ns medians.
        std::fs::write(
            &path,
            "{\"suite\":\"unit\",\"results\":[\
             {\"name\":\"g/fast\",\"median_ns\":1000000000},\
             {\"name\":\"g/slow\",\"median_ns\":1}]}",
        )
        .unwrap();
        let mut suite = BenchSuite::new("unit", "n=1");
        // `g/fast` will be far faster than 1s → fine; `g/slow` far slower
        // than 1ns → regression.
        suite.record(Bench::new("g").samples(2).warmup(0).run("fast", || 0));
        suite.record(
            Bench::new("g")
                .samples(2)
                .warmup(0)
                .run("slow", || (0..50_000u64).map(black_box).sum::<u64>()),
        );
        let err = suite
            .check_against(&path, DEFAULT_MAX_REGRESSION)
            .unwrap_err();
        assert!(err.contains("g/slow"), "{err}");
        assert!(!err.contains("g/fast"), "{err}");
        // Missing baseline passes (first run seeds the trajectory).
        assert!(suite
            .check_against(&dir.join("BENCH_missing.json"), 0.25)
            .is_ok());
        // A baseline from a different workload fingerprint skips the
        // gate entirely — the numbers are not comparable.
        std::fs::write(
            &path,
            "{\"suite\":\"unit\",\"fingerprint\":\"n=2\",\"results\":[\
             {\"name\":\"g/slow\",\"median_ns\":1}]}",
        )
        .unwrap();
        assert!(suite.check_against(&path, DEFAULT_MAX_REGRESSION).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
