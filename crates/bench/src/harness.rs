//! A minimal, dependency-free micro-benchmark harness.
//!
//! The container this workspace builds in has no access to crates.io,
//! so `criterion` is not available; this harness keeps the same
//! shape — named benchmarks, warm-up, repeated timed runs, median/min
//! statistics — at a fraction of the rigor, which is enough to anchor
//! relative performance across PRs. Bench targets set `harness = false`
//! and call [`Bench::run`] from `main`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-exported `black_box`, so bench code reads like the criterion
/// idiom.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// A named group of benchmarks sharing warm-up/measurement settings.
pub struct Bench {
    group: String,
    warmup_iters: u32,
    sample_count: u32,
}

impl Bench {
    /// Creates a group with default settings (3 warm-up iterations,
    /// 10 samples).
    pub fn new(group: impl Into<String>) -> Self {
        Bench {
            group: group.into(),
            warmup_iters: 3,
            sample_count: 10,
        }
    }

    /// Overrides the number of measured samples.
    pub fn samples(mut self, count: u32) -> Self {
        self.sample_count = count.max(1);
        self
    }

    /// Overrides the number of warm-up iterations.
    pub fn warmup(mut self, iters: u32) -> Self {
        self.warmup_iters = iters;
        self
    }

    /// Times `f` (one call = one sample) and prints
    /// `group/name  median  min  max`.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        for _ in 0..self.warmup_iters {
            std_black_box(f());
        }
        let mut samples: Vec<Duration> = (0..self.sample_count)
            .map(|_| {
                let start = Instant::now();
                std_black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let result = BenchResult {
            name: format!("{}/{name}", self.group),
            median: samples[samples.len() / 2],
            min: samples[0],
            max: *samples.last().expect("at least one sample"),
        };
        println!(
            "{:<44} median {:>12?}  min {:>12?}  max {:>12?}",
            result.name, result.median, result.min, result.max
        );
        result
    }
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` label.
    pub name: String,
    /// Median sample.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let result = Bench::new("test")
            .samples(3)
            .warmup(1)
            .run("spin", || (0..1000u64).map(black_box).sum::<u64>());
        assert!(result.min <= result.median && result.median <= result.max);
        assert_eq!(result.name, "test/spin");
    }
}
