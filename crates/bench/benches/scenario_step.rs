//! Bench: end-to-end scenario throughput (the engine behind every
//! figure) and the simulator event loop.
//!
//! Run: `cargo bench -p tsn-bench --bench scenario_step`
//! Emits `BENCH_scenario_step.json`; `BENCH_CHECK=1` gates against the
//! committed baseline.

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_core::runner::ScenarioBuilder;
use tsn_simnet::{SimDuration, SimRng, SimTime, Simulation};

fn main() {
    // Perf trajectory, same protocol and machine class — pre-PR2 =
    // per-round allocations + HashMap EigenTrust + scanning ledger:
    // 50 nodes 1.335ms, 100 nodes 3.808ms.
    let mut suite = BenchSuite::new(
        "scenario_step",
        "scenario_run:nodes=50,100 rounds=10; simnet:events=10k,chain=5k; samples=10",
    );

    let bench = Bench::new("scenario_run").samples(10);
    for nodes in [50usize, 100] {
        let rounds = 10;
        // Throughput unit: node-rounds simulated per second.
        suite.record(
            bench.run_items(&format!("{nodes}_nodes"), (nodes * rounds) as u64, || {
                ScenarioBuilder::new()
                    .nodes(nodes)
                    .rounds(rounds)
                    .run()
                    .unwrap()
            }),
        );
    }

    let bench = Bench::new("simnet").samples(10);
    suite.record(bench.run_items("10k_events", 10_000, || {
        let mut sim = Simulation::new(SimRng::seed_from_u64(1));
        let nodes: Vec<_> = (0..100).map(|_| sim.add_node()).collect();
        for i in 0..10_000u64 {
            let from = nodes[(i % 100) as usize];
            let to = nodes[((i + 1) % 100) as usize];
            sim.schedule_at(SimTime::from_micros(i), move |s| {
                s.network_mut().send(from, to, "x".into());
            });
        }
        sim.run_to_idle()
    }));
    suite.record(bench.run_items("self_rescheduling_chain", 5_000, || {
        fn tick(sim: &mut Simulation, remaining: u32) {
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_micros(10), move |s| {
                    tick(s, remaining - 1)
                });
            }
        }
        let mut sim = Simulation::new(SimRng::seed_from_u64(2));
        sim.schedule_at(SimTime::ZERO, |s| tick(s, 5_000));
        sim.run_to_idle()
    }));

    suite.finish();
}
