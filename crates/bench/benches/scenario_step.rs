//! Bench: end-to-end scenario throughput (the engine behind every
//! figure) and the simulator event loop.
//!
//! Run: `cargo bench -p tsn-bench --bench scenario_step`

use tsn_bench::harness::Bench;
use tsn_core::runner::ScenarioBuilder;
use tsn_simnet::{SimDuration, SimRng, SimTime, Simulation};

fn main() {
    let bench = Bench::new("scenario_run").samples(10);
    for nodes in [50usize, 100] {
        bench.run(&format!("{nodes}_nodes"), || {
            ScenarioBuilder::new()
                .nodes(nodes)
                .rounds(10)
                .run()
                .unwrap()
        });
    }

    let bench = Bench::new("simnet").samples(10);
    bench.run("10k_events", || {
        let mut sim = Simulation::new(SimRng::seed_from_u64(1));
        let nodes: Vec<_> = (0..100).map(|_| sim.add_node()).collect();
        for i in 0..10_000u64 {
            let from = nodes[(i % 100) as usize];
            let to = nodes[((i + 1) % 100) as usize];
            sim.schedule_at(SimTime::from_micros(i), move |s| {
                s.network_mut().send(from, to, "x".into());
            });
        }
        sim.run_to_idle()
    });
    bench.run("self_rescheduling_chain", || {
        fn tick(sim: &mut Simulation, remaining: u32) {
            if remaining > 0 {
                sim.schedule_in(SimDuration::from_micros(10), move |s| {
                    tick(s, remaining - 1)
                });
            }
        }
        let mut sim = Simulation::new(SimRng::seed_from_u64(2));
        sim.schedule_at(SimTime::ZERO, |s| tick(s, 5_000));
        sim.run_to_idle()
    });
}
