//! Criterion bench: end-to-end scenario throughput (the engine behind
//! every figure) and the simulator event loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_core::scenario::run_scenario;
use tsn_core::ScenarioConfig;
use tsn_simnet::{SimDuration, SimRng, SimTime, Simulation};

fn bench_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_run");
    group.sample_size(10);
    for &nodes in &[50usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let mut config = ScenarioConfig::default();
                config.nodes = nodes;
                config.rounds = 10;
                run_scenario(config).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simnet_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimRng::seed_from_u64(1));
            let nodes: Vec<_> = (0..100).map(|_| sim.add_node()).collect();
            for i in 0..10_000u64 {
                let from = nodes[(i % 100) as usize];
                let to = nodes[((i + 1) % 100) as usize];
                sim.schedule_at(SimTime::from_micros(i), move |s| {
                    s.network_mut().send(from, to, "x".into());
                });
            }
            sim.run_to_idle()
        });
    });
    c.bench_function("simnet_self_rescheduling_chain", |b| {
        b.iter(|| {
            fn tick(sim: &mut Simulation, remaining: u32) {
                if remaining > 0 {
                    sim.schedule_in(SimDuration::from_micros(10), move |s| tick(s, remaining - 1));
                }
            }
            let mut sim = Simulation::new(SimRng::seed_from_u64(2));
            sim.schedule_at(SimTime::ZERO, |s| tick(s, 5_000));
            sim.run_to_idle()
        });
    });
}

criterion_group!(benches, bench_scenario, bench_simulator);
criterion_main!(benches);
