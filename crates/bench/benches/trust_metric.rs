//! Bench: trust-metric evaluation and dynamics fixed-point cost (both
//! sit on the hot path of the optimizer sweep).
//!
//! Run: `cargo bench -p tsn-bench --bench trust_metric`

use tsn_bench::harness::Bench;
use tsn_core::dynamics::{DynamicsState, InteractionDynamics};
use tsn_core::{Aggregator, FacetScores, FacetWeights, TrustMetric};

fn main() {
    let facets: Vec<FacetScores> = (0..1000)
        .map(|i| {
            let x = (i as f64 * 0.001) % 1.0;
            FacetScores::new(x, (x * 7.0) % 1.0, (x * 13.0) % 1.0).unwrap()
        })
        .collect();
    let bench = Bench::new("trust_1k").samples(20);
    for aggregator in [
        Aggregator::Arithmetic,
        Aggregator::Geometric,
        Aggregator::PowerMean(2.0),
    ] {
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).unwrap();
        bench.run(&aggregator.label(), || {
            facets.iter().map(|f| metric.trust(f)).sum::<f64>()
        });
    }

    let dynamics = InteractionDynamics::default();
    Bench::new("dynamics").samples(20).run("fixed_point", || {
        dynamics.fixed_point(DynamicsState::neutral(), 1e-9, 10_000)
    });
}
