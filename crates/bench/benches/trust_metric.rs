//! Bench: trust-metric evaluation and dynamics fixed-point cost (both
//! sit on the hot path of the optimizer sweep).
//!
//! Run: `cargo bench -p tsn-bench --bench trust_metric`

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_core::dynamics::{DynamicsState, InteractionDynamics};
use tsn_core::{Aggregator, FacetScores, FacetWeights, TrustMetric};

fn main() {
    let facets: Vec<FacetScores> = (0..1000)
        .map(|i| {
            let x = (i as f64 * 0.001) % 1.0;
            FacetScores::new(x, (x * 7.0) % 1.0, (x * 13.0) % 1.0).unwrap()
        })
        .collect();
    let mut suite = BenchSuite::new(
        "trust_metric",
        "trust:facets=1000 aggregators=3; dynamics:fixed_point eps=1e-9; samples=20",
    );
    let bench = Bench::new("trust_1k").samples(20);
    for aggregator in [
        Aggregator::Arithmetic,
        Aggregator::Geometric,
        Aggregator::PowerMean(2.0),
    ] {
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).unwrap();
        suite.record(
            bench.run_items(&aggregator.label(), facets.len() as u64, || {
                facets.iter().map(|f| metric.trust(f)).sum::<f64>()
            }),
        );
    }

    let dynamics = InteractionDynamics::default();
    suite.record(Bench::new("dynamics").samples(20).run("fixed_point", || {
        dynamics.fixed_point(DynamicsState::neutral(), 1e-9, 10_000)
    }));

    suite.finish();
}
