//! Criterion bench: trust-metric evaluation and dynamics fixed-point
//! cost (both sit on the hot path of the optimizer sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use tsn_core::dynamics::{DynamicsState, InteractionDynamics};
use tsn_core::{Aggregator, FacetScores, FacetWeights, TrustMetric};

fn bench_metric(c: &mut Criterion) {
    let facets: Vec<FacetScores> = (0..1000)
        .map(|i| {
            let x = (i as f64 * 0.001) % 1.0;
            FacetScores::new(x, (x * 7.0) % 1.0, (x * 13.0) % 1.0).unwrap()
        })
        .collect();
    for aggregator in [Aggregator::Arithmetic, Aggregator::Geometric, Aggregator::PowerMean(2.0)] {
        let metric = TrustMetric::new(FacetWeights::default(), aggregator).unwrap();
        c.bench_function(&format!("trust_1k_{}", aggregator.label()), |b| {
            b.iter(|| facets.iter().map(|f| metric.trust(f)).sum::<f64>());
        });
    }
}

fn bench_dynamics(c: &mut Criterion) {
    let dynamics = InteractionDynamics::default();
    c.bench_function("dynamics_fixed_point", |b| {
        b.iter(|| dynamics.fixed_point(DynamicsState::neutral(), 1e-9, 10_000));
    });
}

criterion_group!(benches, bench_metric, bench_dynamics);
criterion_main!(benches);
