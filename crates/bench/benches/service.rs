//! Bench: the online TrustService on the 10k-node lane.
//!
//! Run: `cargo bench -p tsn-bench --bench service`
//! Emits `BENCH_service.json`; `BENCH_CHECK=1` gates against the
//! committed baseline.
//!
//! Three lanes:
//!
//! * `epoch_commit/delta_path` vs `epoch_commit/full_rebuild` — the
//!   tentpole claim. The delta path applies one epoch's events to the
//!   resident mechanism (in-place CSR upserts + warm refresh); the
//!   rebuild baseline is what a naive service does instead — replay
//!   the whole event history into a fresh mechanism every epoch. At a
//!   10-epoch history the delta path must be ≥2× faster, and the gap
//!   widens linearly with service age.
//! * `query/trust_committed` — queries/second against the committed
//!   state (the read path never touches staging).
//! * `ingest_visible/p95` — wall-clock from an `ingest` call to the
//!   commit that makes it queryable, measured per event across one
//!   epoch and reported as a hand-built percentile result.

use std::time::{Duration, Instant};
use tsn_bench::harness::{Bench, BenchResult, BenchSuite};
use tsn_reputation::{build_mechanism, DisclosurePolicy, FeedbackReport, ReputationMechanism};
use tsn_service::{
    DriverConfig, ServiceConfig, ServiceDriver, ServiceEvent, ServiceOp, TrustService,
};
use tsn_simnet::{NodeId, SimDuration};

const NODES: usize = 10_000;
const WARM_EPOCHS: u64 = 10;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        nodes: NODES,
        epoch: SimDuration::from_secs(60),
        ..ServiceConfig::default()
    }
}

fn driver() -> ServiceDriver {
    ServiceDriver::new(DriverConfig {
        nodes: NODES,
        arrival_rate: 6.0,
        disclosure_rate: 0.1,
        query_rate: 0.0, // reads are benched separately
        malicious_fraction: 0.1,
        seed: 4242,
        membership: None,
    })
    .expect("valid workload")
}

/// The interaction views of one epoch, in the driver's arrival order.
fn epoch_views(
    driver: &ServiceDriver,
    service: &TrustService,
    policy: &DisclosurePolicy,
    epoch: u64,
) -> Vec<tsn_reputation::ReportView> {
    driver
        .ops_for_epoch(service, epoch)
        .iter()
        .filter_map(|op| match *op {
            ServiceOp::Ingest(ServiceEvent::Interaction {
                rater,
                ratee,
                outcome,
                at,
            }) => Some(policy.view(&FeedbackReport {
                rater,
                ratee,
                outcome,
                topic: None,
                at,
            })),
            _ => None,
        })
        .collect()
}

fn main() {
    let mut suite = BenchSuite::new(
        "service",
        "nodes=10000 epoch=60s arrivals=6.0 seed=4242 warm_epochs=10 samples=5",
    );
    let driver = driver();
    let policy = DisclosurePolicy::ladder(service_config().disclosure_level);

    // ── Lane 1: delta commit vs full rebuild ────────────────────────
    // Warm a service to depth WARM_EPOCHS, then time additional epoch
    // commits on the live instance (the delta path: record_batch of
    // *new* events + warm refresh).
    let mut service = TrustService::new(service_config()).expect("valid config");
    driver
        .drive(&mut service, WARM_EPOCHS)
        .expect("clean warm-up");
    let bench = Bench::new("epoch_commit").samples(5).warmup(1);
    // Pre-generate the sampled epochs' timelines: workload generation
    // is the driver's cost, not the service's.
    let sampled: Vec<Vec<ServiceOp>> = (0..8)
        .map(|i| driver.ops_for_epoch(&service, WARM_EPOCHS + i))
        .collect();
    let delta = {
        let mut call = 0usize;
        let result = bench.run("delta_path", || {
            let ops = &sampled[call];
            call += 1;
            service.apply_all(ops).expect("clean apply");
            service.finish_epoch().expect("clean finish");
            service.epoch_index()
        });
        suite.record(result).clone()
    };

    // The naive baseline at the same depth: every epoch replays the
    // full history into a fresh mechanism. History = the warm epochs'
    // events (what the delta side had already absorbed when sampling
    // started).
    let probe = TrustService::new(service_config()).expect("valid config");
    let mut history: Vec<_> = Vec::new();
    for epoch in 0..WARM_EPOCHS {
        history.extend(epoch_views(&driver, &probe, &policy, epoch));
    }
    let rebuild = {
        let result = bench.run("full_rebuild", || {
            let mut m = build_mechanism(service_config().mechanism, NODES);
            m.record_batch(&history);
            m.refresh();
            m.len()
        });
        suite.record(result).clone()
    };
    let speedup = rebuild.median.as_secs_f64() / delta.median.as_secs_f64();
    println!(
        "delta path vs full rebuild at depth {WARM_EPOCHS}: {speedup:.2}x \
         ({:?} vs {:?} per epoch)",
        delta.median, rebuild.median
    );
    assert!(
        speedup >= 2.0,
        "delta path must be >=2x faster than a full rebuild, got {speedup:.2}x"
    );

    // ── Lane 2: queries/second on committed state ───────────────────
    let queries_per_call: u64 = 100_000;
    let at = service.now();
    let result = Bench::new("query").samples(5).warmup(1).run_items(
        "trust_committed",
        queries_per_call,
        || {
            let mut acc = 0.0f64;
            for i in 0..queries_per_call {
                let node = NodeId((i % NODES as u64) as u32);
                acc += service.query_trust(node, at).expect("valid query").score;
            }
            acc
        },
    );
    println!(
        "committed trust queries: {:.0}/s",
        result.throughput_per_sec()
    );
    suite.record(result);

    // ── Lane 3: p95 ingest→visible wall-clock latency ───────────────
    // For every event of one epoch: stamp the ingest call, collect the
    // elapsed time at the commit that makes the epoch queryable. The
    // distribution is dominated by the remaining batch work between an
    // event's arrival and its boundary — exactly the latency a client
    // observes under epoch-committed visibility.
    let ops = driver.ops_for_epoch(&service, service.epoch_index());
    let mut stamps: Vec<Instant> = Vec::with_capacity(ops.len());
    for op in &ops {
        if let ServiceOp::Ingest(event) = op {
            // tsn-lint: allow(wall-clock, "bench-only: stamps real ingest latency for BENCH_service.json; never inside a replayed run")
            stamps.push(Instant::now());
            service.ingest(*event).expect("clean ingest");
        }
    }
    service.finish_epoch().expect("clean finish");
    // tsn-lint: allow(wall-clock, "bench-only: measures real ingest-to-visible latency; never inside a replayed run")
    let visible_at = Instant::now();
    let mut latencies: Vec<Duration> = stamps.iter().map(|s| visible_at - *s).collect();
    latencies.sort_unstable();
    let pick = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    let p95 = BenchResult {
        name: "ingest_visible/p95".into(),
        median: pick(0.5),
        p95: pick(0.95),
        min: latencies[0],
        max: *latencies.last().expect("non-empty epoch"),
        samples: latencies.len() as u32,
        items: None,
    };
    println!(
        "ingest->visible latency over {} events: median {:?}, p95 {:?}",
        latencies.len(),
        p95.median,
        p95.p95
    );
    suite.record(p95);

    suite.finish();
}
