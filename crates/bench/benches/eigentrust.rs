//! Bench: EigenTrust power-iteration convergence at scale, and the
//! per-report ingestion cost of every mechanism.
//!
//! Run: `cargo bench -p tsn-bench --bench eigentrust`

use tsn_bench::harness::Bench;
use tsn_reputation::mechanism::build_mechanism;
use tsn_reputation::{
    DisclosurePolicy, EigenTrust, EigenTrustConfig, FeedbackReport, InteractionOutcome,
    MechanismKind, ReputationMechanism,
};
use tsn_simnet::{NodeId, SimRng, SimTime};

fn random_reports(n: usize, count: usize, seed: u64) -> Vec<FeedbackReport> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let rater = NodeId(rng.gen_range(0..n as u32));
            let mut ratee = NodeId(rng.gen_range(0..n as u32));
            if ratee == rater {
                ratee = NodeId((ratee.0 + 1) % n as u32);
            }
            FeedbackReport {
                rater,
                ratee,
                outcome: if rng.gen_bool(0.7) {
                    InteractionOutcome::Success {
                        quality: rng.gen_f64(),
                    }
                } else {
                    InteractionOutcome::Failure
                },
                topic: None,
                at: SimTime::ZERO,
            }
        })
        .collect()
}

fn main() {
    let policy = DisclosurePolicy::full();

    let bench = Bench::new("eigentrust_refresh").samples(10);
    for n in [100usize, 500, 1000] {
        let reports = random_reports(n, n * 20, 7);
        let mut base = EigenTrust::new(n, EigenTrustConfig::default());
        for r in &reports {
            base.record(&policy.view(r));
        }
        bench.run(&format!("{n}_nodes"), || {
            let mut m = base.clone();
            m.refresh()
        });
    }

    let bench = Bench::new("record_1k_reports").samples(10);
    let n = 500;
    let reports = random_reports(n, 1000, 8);
    for kind in [
        MechanismKind::Beta,
        MechanismKind::EigenTrust,
        MechanismKind::PowerTrust,
        MechanismKind::TrustMe,
    ] {
        bench.run(kind.name(), || {
            let mut m = build_mechanism(kind, n);
            for r in &reports {
                m.record(&policy.view(r));
            }
            m
        });
    }
}
