//! Criterion bench: EigenTrust power-iteration convergence at scale, and
//! the per-report ingestion cost of every mechanism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_reputation::mechanism::build_mechanism;
use tsn_reputation::{
    DisclosurePolicy, EigenTrust, EigenTrustConfig, FeedbackReport, InteractionOutcome,
    MechanismKind, ReputationMechanism,
};
use tsn_simnet::{NodeId, SimRng, SimTime};

fn random_reports(n: usize, count: usize, seed: u64) -> Vec<FeedbackReport> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let rater = NodeId(rng.gen_range(0..n as u32));
            let mut ratee = NodeId(rng.gen_range(0..n as u32));
            if ratee == rater {
                ratee = NodeId((ratee.0 + 1) % n as u32);
            }
            FeedbackReport {
                rater,
                ratee,
                outcome: if rng.gen_bool(0.7) {
                    InteractionOutcome::Success { quality: rng.gen_f64() }
                } else {
                    InteractionOutcome::Failure
                },
                topic: None,
                at: SimTime::ZERO,
            }
        })
        .collect()
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigentrust_refresh");
    let policy = DisclosurePolicy::full();
    for &n in &[100usize, 500, 1000] {
        let reports = random_reports(n, n * 20, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut base = EigenTrust::new(n, EigenTrustConfig::default());
            for r in &reports {
                base.record(&policy.view(r));
            }
            b.iter_batched(
                || base.clone(),
                |mut m| m.refresh(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_1k_reports");
    let n = 500;
    let policy = DisclosurePolicy::full();
    let reports = random_reports(n, 1000, 8);
    for kind in [MechanismKind::Beta, MechanismKind::EigenTrust, MechanismKind::PowerTrust, MechanismKind::TrustMe] {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || build_mechanism(kind, n),
                |mut m| {
                    for r in &reports {
                        m.record(&policy.view(r));
                    }
                    m
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refresh, bench_record);
criterion_main!(benches);
