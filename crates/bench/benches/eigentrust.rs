//! Bench: EigenTrust power-iteration convergence at scale, and the
//! per-report ingestion cost of every mechanism.
//!
//! Run: `cargo bench -p tsn-bench --bench eigentrust`
//! Emits `BENCH_eigentrust.json`; `BENCH_CHECK=1` gates against the
//! committed baseline.

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_reputation::mechanism::build_mechanism;
use tsn_reputation::{
    DisclosurePolicy, EigenTrust, EigenTrustConfig, FeedbackReport, InteractionOutcome,
    MechanismKind, ReputationMechanism,
};
use tsn_simnet::{NodeId, SimRng, SimTime};

fn random_reports(n: usize, count: usize, seed: u64) -> Vec<FeedbackReport> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let rater = NodeId(rng.gen_range(0..n as u32));
            let mut ratee = NodeId(rng.gen_range(0..n as u32));
            if ratee == rater {
                ratee = NodeId((ratee.0 + 1) % n as u32);
            }
            FeedbackReport {
                rater,
                ratee,
                outcome: if rng.gen_bool(0.7) {
                    InteractionOutcome::Success {
                        quality: rng.gen_f64(),
                    }
                } else {
                    InteractionOutcome::Failure
                },
                topic: None,
                at: SimTime::ZERO,
            }
        })
        .collect()
}

fn main() {
    let policy = DisclosurePolicy::full();
    // Perf trajectory, same protocol (warm incremental refresh), same
    // machine class — pre-PR2 = HashMap local matrix + per-refresh
    // rebuild: 100 nodes 56.0µs, 500 nodes 409µs, 1000 nodes 924µs.
    let mut suite = BenchSuite::new(
        "eigentrust",
        "refresh:warm-incremental nodes=100,500,1000 reports=20n seed=7; record:nodes=500 reports=1000 seed=8; samples=10",
    );

    // Warm incremental refresh: the scenario's steady-state pattern is
    // "a few records, then refresh" on a long-lived mechanism. (The old
    // clone-per-sample protocol mostly measured the allocator: a fresh
    // clone starts with cold buffers and pays the page-fault storm.)
    let bench = Bench::new("eigentrust_refresh").samples(10);
    for n in [100usize, 500, 1000] {
        let reports = random_reports(n, n * 20, 7);
        let mut m = EigenTrust::new(n, EigenTrustConfig::default());
        for r in &reports {
            m.record(&policy.view(r));
        }
        m.refresh();
        let extra = policy.view(&reports[0]);
        // One record + one refresh per call: throughput = refreshes/sec.
        suite.record(bench.run(&format!("{n}_nodes"), || {
            m.record(&extra);
            m.refresh()
        }));
    }

    let bench = Bench::new("record_1k_reports").samples(10);
    let n = 500;
    let reports = random_reports(n, 1000, 8);
    for kind in [
        MechanismKind::Beta,
        MechanismKind::EigenTrust,
        MechanismKind::PowerTrust,
        MechanismKind::TrustMe,
    ] {
        suite.record(bench.run_items(kind.name(), reports.len() as u64, || {
            let mut m = build_mechanism(kind, n);
            for r in &reports {
                m.record(&policy.view(r));
            }
            m
        }));
    }

    suite.finish();
}
