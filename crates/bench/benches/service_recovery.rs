//! Bench: the crash-tolerance tax and the recovery path.
//!
//! Run: `cargo bench -p tsn-bench --bench service_recovery`
//! Emits `BENCH_service_recovery.json`; `BENCH_CHECK=1` gates against
//! the committed baseline.
//!
//! Four lanes:
//!
//! * `journal/append` — per-op cost of the write-ahead journal (frame +
//!   CRC + copy): the tax every acknowledged operation pays when a
//!   [`ServiceHost`] runs with journaling on.
//! * `journal/scan` — records/second of the recovery-side scan
//!   (framing walk + CRC verify + decode), the first half of replay.
//! * `recovery/restore_checkpoint` — decoding a warm service's
//!   checkpoint (per-section CRC verify included).
//! * `recovery/crash_restart` — the whole outage: drop the volatile
//!   service, restore the newest checkpoint, replay the journal
//!   suffix. This is the number a "recovery time objective" budget
//!   would be written against.

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_service::{
    DriverConfig, EventJournal, HostConfig, JournalRecord, RetryPolicy, ServiceConfig,
    ServiceDriver, ServiceHost, ServiceOp, TrustService,
};
use tsn_simnet::{SimDuration, SimTime};

const NODES: usize = 5_000;
const EPOCHS: u64 = 6;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        nodes: NODES,
        epoch: SimDuration::from_secs(60),
        ..ServiceConfig::default()
    }
}

fn main() {
    let mut suite = BenchSuite::new(
        "service_recovery",
        "nodes=5000 epoch=60s arrivals=4.0 seed=77 epochs=6 samples=5",
    );
    let driver = ServiceDriver::new(DriverConfig {
        nodes: NODES,
        arrival_rate: 4.0,
        disclosure_rate: 0.1,
        query_rate: 0.2,
        malicious_fraction: 0.1,
        seed: 77,
        membership: None,
    })
    .expect("valid workload");

    // Warm a journaling host: every acknowledged op is in the journal,
    // checkpoints land at each epoch boundary.
    let mut host = ServiceHost::new(HostConfig {
        service: service_config(),
        ..HostConfig::default()
    })
    .expect("valid host");
    driver
        .drive_host(&mut host, EPOCHS, &RetryPolicy::default())
        .expect("clean warm-up");
    let bench = Bench::new("journal").samples(5).warmup(1);

    // ── Lane 1: journal append tax per acknowledged op ──────────────
    let probe = TrustService::new(service_config()).expect("valid config");
    let ops: Vec<ServiceOp> = driver.ops_for_epoch(&probe, 0);
    let result = bench.run_items("append", ops.len() as u64, || {
        let mut journal = EventJournal::new();
        for op in &ops {
            journal.append(&JournalRecord::Op(*op));
        }
        journal.byte_len()
    });
    println!("journal append: {:.0} ops/s", result.throughput_per_sec());
    suite.record(result);

    // ── Lane 2: recovery-side scan throughput ───────────────────────
    // Only live segments scan (GC already collected what no retained
    // checkpoint needs), so the throughput is per live record.
    let journal_bytes = host.journal().flattened_body();
    let live_records = host.journal().records() - host.journal().gc_records();
    let result = bench.run_items("scan", live_records, || {
        EventJournal::scan(&journal_bytes).records.len()
    });
    println!(
        "journal scan over {live_records} live records: {:.0} records/s",
        result.throughput_per_sec()
    );
    suite.record(result);

    // ── Lane 3: checkpoint restore (section CRCs + decode) ──────────
    let checkpoint = host
        .service()
        .expect("warm host is up")
        .checkpoint()
        .expect("snapshot-capable mechanism");
    let result = Bench::new("recovery")
        .samples(5)
        .warmup(1)
        .run("restore_checkpoint", || {
            TrustService::restore(&checkpoint)
                .expect("clean restore")
                .epoch_index()
        });
    println!("checkpoint restore: median {:?}", result.median);
    suite.record(result);

    // ── Lane 4: the whole outage, crash to serving ──────────────────
    // Stage a suffix past the newest checkpoint first: real crashes
    // rarely land exactly on a checkpoint, so the restart should pay
    // for a journal-tail replay too.
    let suffix = driver.ops_for_epoch_len(SimDuration::from_secs(60), EPOCHS);
    for op in suffix.iter().take(2_000) {
        host.apply(op).expect("clean apply");
    }
    let crash_at = host.service().expect("up").now();
    let result = Bench::new("recovery")
        .samples(5)
        .warmup(1)
        .run("crash_restart", || {
            host.crash(crash_at);
            host.restart(crash_at).expect("recovery succeeds");
            host.stats().recoveries
        });
    println!(
        "crash -> serving again: median {:?} (newest checkpoint + {} replayed records)",
        result.median,
        host.last_recovery().map_or(0, |r| r.replayed),
    );
    suite.record(result);

    // The recovered service must be whole — a bench that silently
    // recovers to the wrong state benchmarks nothing.
    assert!(
        host.service().expect("up").now() >= SimTime::from_secs(60 * EPOCHS),
        "recovery must land back at (or past) the driven horizon"
    );

    suite.finish();
}
