//! Bench: serial vs parallel `SweepRunner` over a fixed grid — the
//! anchor for the experiment pipeline's wall-clock trajectory. The
//! parallel/serial ratio is the headline number: it should approach
//! the core count for CPU-bound grids.
//!
//! Run: `cargo bench -p tsn-bench --bench sweep_runner`
//! Emits `BENCH_sweep_runner.json`; `BENCH_CHECK=1` gates against the
//! committed baseline (the serial lane; the parallel lane's name embeds
//! the thread count, so it only gates on same-shaped runners).

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_core::runner::{ScenarioBuilder, SweepGrid, SweepRunner};

fn grid() -> SweepGrid {
    SweepGrid::over(ScenarioBuilder::new().nodes(40).rounds(8))
        .all_mechanisms()
        .all_profiles()
        .seeds([1, 2])
}

fn main() {
    let grid = grid();
    println!("grid: {} cells\n", grid.len());
    let mut suite = BenchSuite::new(
        "sweep_runner",
        "grid:nodes=40 rounds=8 mechanisms=all profiles=all seeds=2 cells=30; samples=5",
    );

    let bench = Bench::new("sweep_runner").samples(5).warmup(1);
    let cells = grid.len() as u64;
    let serial = suite
        .record(bench.run_items("serial", cells, || {
            SweepRunner::serial().run(&grid).unwrap()
        }))
        .clone();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel = suite
        .record(bench.run_items(&format!("parallel_{threads}t"), cells, || {
            SweepRunner::parallel().run(&grid).unwrap()
        }))
        .clone();

    let speedup = serial.median.as_secs_f64() / parallel.median.as_secs_f64().max(1e-9);
    println!("\nspeedup (serial / parallel median): {speedup:.2}x on {threads} threads");

    // Guard: the two modes must agree bit-for-bit, or the numbers above
    // are comparing different work.
    let a = SweepRunner::serial().run(&grid).unwrap();
    let b = SweepRunner::parallel().run(&grid).unwrap();
    assert_eq!(
        a, b,
        "serial and parallel sweeps must produce identical reports"
    );
    println!("determinism check: serial == parallel report ✓");

    suite.finish();
}
