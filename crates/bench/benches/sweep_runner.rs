//! Bench: serial vs parallel `SweepRunner` over a fixed grid — the
//! anchor for the experiment pipeline's wall-clock trajectory. The
//! parallel/serial ratio is the headline number: it should approach
//! the core count for CPU-bound grids.
//!
//! Run: `cargo bench -p tsn-bench --bench sweep_runner`
//! Emits `BENCH_sweep_runner.json`; `BENCH_CHECK=1` gates against the
//! committed baseline. The parallel lane pins its thread count to 4
//! (`parallel_4t`) so the lane name — and therefore the baseline
//! comparison — is stable across machines; the measured speedup is
//! whatever the hardware actually provides (a 1-core container
//! time-slices the workers and reports parity, not a win).

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_core::runner::{ScenarioBuilder, SweepGrid, SweepRunner};

fn grid() -> SweepGrid {
    SweepGrid::over(ScenarioBuilder::new().nodes(40).rounds(8))
        .all_mechanisms()
        .all_profiles()
        .seeds([1, 2])
}

fn main() {
    let grid = grid();
    println!("grid: {} cells\n", grid.len());
    let mut suite = BenchSuite::new(
        "sweep_runner",
        "grid:nodes=40 rounds=8 mechanisms=all profiles=all seeds=2 cells=30; samples=5",
    );

    let bench = Bench::new("sweep_runner").samples(5).warmup(1);
    let cells = grid.len() as u64;
    let serial = suite
        .record(bench.run_items("serial", cells, || {
            SweepRunner::serial().run(&grid).unwrap()
        }))
        .clone();
    let parallel = suite
        .record(bench.run_items("parallel_4t", cells, || {
            SweepRunner::with_threads(4).run(&grid).unwrap()
        }))
        .clone();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup = serial.median.as_secs_f64() / parallel.median.as_secs_f64().max(1e-9);
    println!("\nspeedup (serial / parallel_4t median): {speedup:.2}x on {cores} core(s)");

    // Guard: the two modes must agree bit-for-bit, or the numbers above
    // are comparing different work.
    let a = SweepRunner::serial().run(&grid).unwrap();
    let b = SweepRunner::with_threads(4).run(&grid).unwrap();
    assert_eq!(
        a, b,
        "serial and parallel sweeps must produce identical reports"
    );
    println!("determinism check: serial == parallel_4t report ✓");

    suite.finish();
}
