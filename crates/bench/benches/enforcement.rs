//! Criterion bench: PriServ-style access-decision latency and ledger
//! accounting cost — the per-request privacy overhead a deployment pays.

use criterion::{criterion_group, criterion_main, Criterion};
use tsn_privacy::enforcement::RequestContext;
use tsn_privacy::{
    AccessRequest, DataCategory, DisclosureLedger, Enforcer, Operation, PrivacyPolicy, Purpose,
};
use tsn_simnet::{NodeId, SimTime};

fn bench_decisions(c: &mut Criterion) {
    let enforcer = Enforcer::new();
    let strict = PrivacyPolicy::strict(DataCategory::Content);
    let permissive = PrivacyPolicy::permissive(DataCategory::Content);
    let request = AccessRequest {
        requester: NodeId(1),
        owner: NodeId(0),
        operation: Operation::Read,
        purpose: Purpose::Social,
    };
    let ctx = RequestContext { social_distance: Some(1), requester_trust: 0.8 };
    c.bench_function("decide_strict_grant", |b| {
        b.iter(|| enforcer.decide(&request, &strict, &ctx));
    });
    let far = RequestContext { social_distance: Some(4), requester_trust: 0.2 };
    c.bench_function("decide_strict_deny", |b| {
        b.iter(|| enforcer.decide(&request, &strict, &far));
    });
    c.bench_function("decide_permissive", |b| {
        b.iter(|| enforcer.decide(&request, &permissive, &ctx));
    });
}

fn bench_ledger(c: &mut Criterion) {
    c.bench_function("ledger_10k_records_respect_rate", |b| {
        b.iter(|| {
            let mut ledger = DisclosureLedger::new();
            for i in 0..10_000u64 {
                ledger.record_disclosure(
                    SimTime::from_secs(i),
                    NodeId((i % 100) as u32),
                    NodeId(((i + 1) % 100) as u32),
                    DataCategory::Content,
                    Purpose::Social,
                    false,
                );
            }
            ledger.respect_rate()
        });
    });
}

criterion_group!(benches, bench_decisions, bench_ledger);
criterion_main!(benches);
