//! Bench: PriServ-style access-decision latency and ledger accounting
//! cost — the per-request privacy overhead a deployment pays.
//!
//! Run: `cargo bench -p tsn-bench --bench enforcement`

use tsn_bench::harness::Bench;
use tsn_privacy::enforcement::RequestContext;
use tsn_privacy::{
    AccessRequest, DataCategory, DisclosureLedger, Enforcer, Operation, PrivacyPolicy, Purpose,
};
use tsn_simnet::{NodeId, SimTime};

fn main() {
    let enforcer = Enforcer::new();
    let strict = PrivacyPolicy::strict(DataCategory::Content);
    let permissive = PrivacyPolicy::permissive(DataCategory::Content);
    let request = AccessRequest {
        requester: NodeId(1),
        owner: NodeId(0),
        operation: Operation::Read,
        purpose: Purpose::Social,
    };
    let near = RequestContext {
        social_distance: Some(1),
        requester_trust: 0.8,
    };
    let far = RequestContext {
        social_distance: Some(4),
        requester_trust: 0.2,
    };

    let bench = Bench::new("decide").samples(20);
    bench.run("strict_grant_x10k", || {
        (0..10_000)
            .filter(|_| enforcer.decide(&request, &strict, &near).is_granted())
            .count()
    });
    bench.run("strict_deny_x10k", || {
        (0..10_000)
            .filter(|_| enforcer.decide(&request, &strict, &far).is_granted())
            .count()
    });
    bench.run("permissive_x10k", || {
        (0..10_000)
            .filter(|_| enforcer.decide(&request, &permissive, &near).is_granted())
            .count()
    });

    Bench::new("ledger")
        .samples(10)
        .run("10k_records_respect_rate", || {
            let mut ledger = DisclosureLedger::new();
            for i in 0..10_000u64 {
                ledger.record_disclosure(
                    SimTime::from_secs(i),
                    NodeId((i % 100) as u32),
                    NodeId(((i + 1) % 100) as u32),
                    DataCategory::Content,
                    Purpose::Social,
                    false,
                );
            }
            ledger.respect_rate()
        });
}
