//! Bench: PriServ-style access-decision latency and ledger accounting
//! cost — the per-request privacy overhead a deployment pays.
//!
//! Run: `cargo bench -p tsn-bench --bench enforcement`

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_privacy::enforcement::RequestContext;
use tsn_privacy::{
    AccessRequest, DataCategory, DisclosureLedger, Enforcer, Operation, PrivacyPolicy, Purpose,
};
use tsn_simnet::{NodeId, SimTime};

fn main() {
    let enforcer = Enforcer::new();
    let strict = PrivacyPolicy::strict(DataCategory::Content);
    let permissive = PrivacyPolicy::permissive(DataCategory::Content);
    let request = AccessRequest {
        requester: NodeId(1),
        owner: NodeId(0),
        operation: Operation::Read,
        purpose: Purpose::Social,
    };
    let near = RequestContext {
        social_distance: Some(1),
        requester_trust: 0.8,
    };
    let far = RequestContext {
        social_distance: Some(4),
        requester_trust: 0.2,
    };

    let mut suite = BenchSuite::new(
        "enforcement",
        "decide:requests=10k contexts=3; ledger:records=10k; samples=20,10",
    );
    let bench = Bench::new("decide").samples(20);
    suite.record(bench.run_items("strict_grant_x10k", 10_000, || {
        (0..10_000)
            .filter(|_| enforcer.decide(&request, &strict, &near).is_granted())
            .count()
    }));
    suite.record(bench.run_items("strict_deny_x10k", 10_000, || {
        (0..10_000)
            .filter(|_| enforcer.decide(&request, &strict, &far).is_granted())
            .count()
    }));
    suite.record(bench.run_items("permissive_x10k", 10_000, || {
        (0..10_000)
            .filter(|_| enforcer.decide(&request, &permissive, &near).is_granted())
            .count()
    }));

    suite.record(Bench::new("ledger").samples(10).run_items(
        "10k_records_respect_rate",
        10_000,
        || {
            let mut ledger = DisclosureLedger::new();
            for i in 0..10_000u64 {
                ledger.record_disclosure(
                    SimTime::from_secs(i),
                    NodeId((i % 100) as u32),
                    NodeId(((i + 1) % 100) as u32),
                    DataCategory::Content,
                    Purpose::Social,
                    false,
                );
            }
            ledger.respect_rate()
        },
    ));

    suite.finish();
}
