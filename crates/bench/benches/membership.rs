//! Bench: the peer-sampling membership overlay (DESIGN.md §15).
//!
//! Run: `cargo bench -p tsn-bench --bench membership`
//! Emits `BENCH_membership.json`; `BENCH_CHECK=1` gates against the
//! committed baseline.
//!
//! Two questions, each at 10k and 100k nodes:
//!
//! * `shuffle/round_*` — throughput of one full shuffle round
//!   (every live node ages its view, picks its oldest partner and
//!   push-pulls `shuffle_len` entries). Items = nodes, so the
//!   number reads as node-shuffles/second.
//! * `dissemination/full_*` — wall-clock until a rumor started at
//!   node 0 reaches the whole population, when every informed node
//!   pushes it to one view-sampled target per round. This is the
//!   service-level payoff of uniform peer sampling: the informed set
//!   doubles per round, so the round count (printed alongside) grows
//!   as O(log n) even though no node knows more than 16 peers.

use tsn_bench::harness::{black_box, Bench, BenchSuite};
use tsn_simnet::{MembershipConfig, MembershipRuntime, NodeId, SimRng};

const SEED: u64 = 4242;

fn overlay(n: usize) -> MembershipRuntime {
    MembershipRuntime::new(n, MembershipConfig::default(), SEED).expect("valid overlay")
}

/// Push a rumor from node 0 over the shuffled overlay — one
/// view-sampled target per informed node per round — and return the
/// rounds until everyone is informed.
fn rounds_to_full_dissemination(n: usize) -> u64 {
    let mut runtime = overlay(n);
    let mut rng = SimRng::seed_from_u64(SEED ^ 0x9E37_79B9);
    let mut informed = vec![false; n];
    informed[0] = true;
    let mut remaining = n - 1;
    let mut rounds = 0u64;
    while remaining > 0 {
        runtime.shuffle_round(|_| true, |_, _| true);
        rounds += 1;
        // Synchronous-round push: targets informed this round start
        // pushing next round.
        let mut next = informed.clone();
        for (holder, _) in informed.iter().enumerate().filter(|(_, i)| **i) {
            if let Some(peer) = runtime.view(NodeId::from_index(holder)).sample(&mut rng) {
                if !next[peer.index()] {
                    next[peer.index()] = true;
                    remaining -= 1;
                }
            }
        }
        informed = next;
        assert!(rounds < 1_000, "dissemination stalled at {remaining} nodes");
    }
    rounds
}

fn main() {
    let mut suite = BenchSuite::new(
        "membership",
        "view=16 shuffle=8 relays=3 seed=4242 nodes=10k/100k samples=3",
    );

    let bench = Bench::new("shuffle").samples(3).warmup(1);
    for &n in &[10_000usize, 100_000] {
        let mut runtime = overlay(n);
        let label = format!("round_{}k", n / 1000);
        let result = bench.run_items(&label, n as u64, || {
            runtime.shuffle_round(|_| true, |_, _| true);
            black_box(runtime.rounds())
        });
        println!(
            "shuffle round at n={n}: {:.0} node-shuffles/s (median {:?})",
            result.throughput_per_sec(),
            result.median
        );
        suite.record(result);
    }

    let bench = Bench::new("dissemination").samples(3).warmup(0);
    for &n in &[10_000usize, 100_000] {
        let label = format!("full_{}k", n / 1000);
        let rounds = rounds_to_full_dissemination(n);
        let result = bench.run(&label, || black_box(rounds_to_full_dissemination(n)));
        println!(
            "full dissemination at n={n}: {rounds} rounds, median {:?}",
            result.median
        );
        suite.record(result);
    }

    suite.finish();
}
