//! Bench: decentralized-protocol round throughput.
//!
//! Run: `cargo bench -p tsn-bench --bench protocols`

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_graph::generators;
use tsn_protocol::{GossipConfig, GossipNetwork, ManagerConfig, ManagerNetwork};
use tsn_simnet::{
    ChurnConfig, DynamicsPlan, Network, NetworkConfig, NodeId, SimDuration, SimRng, SimTime,
};

fn gossip_instance(n: usize) -> GossipNetwork {
    let mut rng = SimRng::seed_from_u64(1);
    let graph = generators::watts_strogatz(n, 6, 0.1, &mut rng).unwrap();
    let mut network = Network::new(NetworkConfig::default(), rng.fork(1));
    for _ in 0..n {
        network.add_node();
    }
    let mut gossip = GossipNetwork::new(
        graph,
        network,
        GossipConfig {
            subjects: n,
            ..Default::default()
        },
        rng.fork(2),
    );
    for i in 0..n {
        gossip.observe(NodeId::from_index(i), (i * 7) % n, 0.8);
    }
    gossip
}

/// Session churn at protocol timescale: ~8-round sessions, ~3-round
/// downtimes, a fifth of the re-joins whitewashing.
fn churn_plan() -> DynamicsPlan {
    DynamicsPlan {
        churn: Some(ChurnConfig {
            mean_session: SimDuration::from_millis(800),
            mean_downtime: SimDuration::from_millis(300),
            whitewash_probability: 0.2,
            crash_fraction: 0.5,
        }),
        ..Default::default()
    }
}

fn main() {
    let mut suite = BenchSuite::new(
        "protocols",
        "gossip:nodes=50,100,200,1000 rounds=20; gossip_churn/partitioned:nodes=100,200 \
         rounds=20; manager:nodes=50,100; samples=10",
    );
    let bench = Bench::new("gossip_20_rounds").samples(10);
    for n in [50usize, 100, 200, 1000] {
        suite.record(bench.run(&format!("{n}_nodes"), || {
            let mut gossip = gossip_instance(n);
            gossip.run(20);
            gossip.report().mean_error
        }));
    }

    // Dynamics lanes: the same gossip workload under session churn and
    // under a mid-run split-then-heal — the cost of executing the
    // dynamics layer (heap-scheduled transitions, set_alive sweeps,
    // loss-model swaps) rides on top of the clean-gossip baseline.
    let bench = Bench::new("gossip_churn").samples(10);
    for n in [100usize, 200] {
        suite.record(bench.run(&format!("{n}_nodes"), || {
            let mut gossip = gossip_instance(n);
            gossip
                .attach_dynamics(churn_plan(), SimRng::seed_from_u64(3))
                .expect("valid plan");
            gossip.run(20);
            gossip.report().mean_error
        }));
    }

    let bench = Bench::new("gossip_partitioned").samples(10);
    for n in [100usize, 200] {
        suite.record(bench.run(&format!("{n}_nodes"), || {
            let mut gossip = gossip_instance(n);
            // Split for rounds 0..10, healed for rounds 10..20.
            gossip
                .attach_dynamics(
                    DynamicsPlan::split_then_heal(SimTime::ZERO, SimTime::from_millis(1_050)),
                    SimRng::seed_from_u64(4),
                )
                .expect("valid plan");
            gossip.run(20);
            gossip.report().mean_error
        }));
    }

    let bench = Bench::new("manager_report_query_cycle").samples(10);
    for n in [50usize, 100] {
        suite.record(bench.run(&format!("{n}_nodes"), || {
            let mut network = Network::new(NetworkConfig::default(), SimRng::seed_from_u64(2));
            for _ in 0..n {
                network.add_node();
            }
            let mut managers = ManagerNetwork::new(network, ManagerConfig::default());
            for i in 0..n as u32 {
                managers.submit_report(NodeId(i), NodeId((i + 1) % n as u32), 0.7);
            }
            managers.run(2);
            for i in 0..n as u32 {
                managers.submit_query(NodeId(i), NodeId((i + 2) % n as u32));
            }
            managers.run(3);
            managers.report().answer_rate
        }));
    }

    suite.finish();
}
