//! Bench: the sharded round engine at mega scale — one scenario, 100k
//! nodes (the ROADMAP's "heavy traffic" lane), plus the 10k auto-shard
//! boundary for the trend line.
//!
//! Run: `cargo bench -p tsn-bench --bench scenario_100k`
//! Emits `BENCH_scenario_100k.json`; `BENCH_CHECK=1` gates against the
//! committed baseline.
//!
//! The lane pins the PR-5 acceptance bar: a 100k-node scenario completes
//! a 20-round run. Before the sharded engine (and the O(1) ledger
//! eviction plus the summed-dangling-mass walk iteration that landed
//! with it), a single scenario was effectively capped around the
//! 1000-node `scenario_step` lane — a 100k-node round took minutes, not
//! milliseconds.

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_core::runner::ScenarioBuilder;

fn main() {
    let mut suite = BenchSuite::new(
        "scenario_100k",
        "mega:nodes=10k,100k rounds=20 shards=auto; samples=3",
    );

    // Throughput unit: node-rounds simulated per second.
    let bench = Bench::new("mega_scenario").samples(3).warmup(1);
    for nodes in [10_000usize, 100_000] {
        let rounds = 20;
        let label = format!("{}k_nodes", nodes / 1000);
        suite.record(bench.run_items(&label, (nodes * rounds) as u64, || {
            ScenarioBuilder::mega(nodes)
                .rounds(rounds)
                .seed(42)
                .run()
                .expect("mega preset is valid")
        }));
    }

    // The shard-count axis on one fixed workload: identical outcomes by
    // contract (tests/sharding.rs pins the bits), so any spread here is
    // pure scheduling cost. On a single-core runner expect parity.
    let bench = Bench::new("shard_count").samples(3).warmup(1);
    for shards in [1usize, 4, 16] {
        let nodes = 20_000;
        let rounds = 10;
        suite.record(
            bench.run_items(&format!("{shards}_shards"), (nodes * rounds) as u64, || {
                ScenarioBuilder::mega(nodes)
                    .rounds(rounds)
                    .seed(42)
                    .build_scenario()
                    .expect("valid config")
                    .run_sharded(shards)
            }),
        );
    }

    suite.finish();
}
