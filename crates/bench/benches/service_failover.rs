//! Bench: the replication tax and the failover path.
//!
//! Run: `cargo bench -p tsn-bench --bench service_failover`
//! Emits `BENCH_service_failover.json`; `BENCH_CHECK=1` gates against
//! the committed baseline.
//!
//! Three lanes:
//!
//! * `replication/apply` — per-op cost of feeding an acknowledged op
//!   through a 3-member [`ReplicaSet`] (primary + sequencer + two
//!   follower applies + journal copies). Compare against the single-host
//!   apply lanes in `BENCH_service.json` for the replication tax.
//! * `failover/kill_promote_serve` — the outage a client of the set can
//!   observe: primary killed mid-journal-append, the next `apply` pays
//!   for promotion (healthiest-follower election + log catch-up) and is
//!   served by the new primary.
//! * `failover/epoch_after_failover` — a whole epoch of ops plus the
//!   boundary commit on a freshly promoted set: the steady state after
//!   the outage, confirming the promoted member serves at full speed.
//!
//! Sets are pre-warmed outside the timed region and consumed one per
//! sample, so every sample measures the same cold failover.

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_service::{
    DriverConfig, HostConfig, ReplicaConfig, ReplicaSet, RetryPolicy, ServiceConfig, ServiceDriver,
    ServiceOp,
};
use tsn_simnet::{SimDuration, SimTime};

const NODES: usize = 1_000;
const REPLICAS: usize = 3;
const WARM_EPOCHS: u64 = 2;
const SAMPLES: u32 = 5;
const WARMUP: u32 = 1;

fn replica_config() -> ReplicaConfig {
    ReplicaConfig {
        host: HostConfig {
            service: ServiceConfig {
                nodes: NODES,
                epoch: SimDuration::from_secs(60),
                ..ServiceConfig::default()
            },
            journal: true,
            checkpoint_every_epochs: 1,
            retain_checkpoints: 2,
            recovery_grace: SimDuration::ZERO,
            ..HostConfig::default()
        },
        replicas: REPLICAS,
    }
}

/// A set already serving at the start of epoch `WARM_EPOCHS`.
fn warmed_set(driver: &ServiceDriver) -> ReplicaSet {
    let mut set = ReplicaSet::new(replica_config()).expect("valid set");
    driver
        .drive_replicas(&mut set, WARM_EPOCHS, &RetryPolicy::default())
        .expect("clean warm-up");
    set
}

fn main() {
    let mut suite = BenchSuite::new(
        "service_failover",
        "nodes=1000 replicas=3 epoch=60s arrivals=2.0 seed=77 warm_epochs=2 samples=5",
    );
    let driver = ServiceDriver::new(DriverConfig {
        nodes: NODES,
        arrival_rate: 2.0,
        disclosure_rate: 0.1,
        query_rate: 0.2,
        malicious_fraction: 0.1,
        seed: 77,
        membership: None,
    })
    .expect("valid workload");
    // The epoch the timed lanes will serve (the one right past warm-up).
    let epoch = SimDuration::from_secs(60);
    let ops: Vec<ServiceOp> = driver.ops_for_epoch_len(epoch, WARM_EPOCHS);
    let epoch_end = SimTime::from_secs(60 * (WARM_EPOCHS + 1));
    let pool_size = (SAMPLES + WARMUP.max(1)) as usize;
    let bench = Bench::new("replication").samples(SAMPLES).warmup(WARMUP);

    // ── Lane 1: the replication tax per acknowledged op ─────────────
    let mut pool: Vec<ReplicaSet> = (0..pool_size).map(|_| warmed_set(&driver)).collect();
    let result = bench.run_items("apply", ops.len() as u64, || {
        let mut set = pool.pop().expect("one warmed set per sample");
        for op in &ops {
            set.apply(op).expect("a live set acknowledges every op");
        }
        set.sequenced()
    });
    println!(
        "replicated apply: {:.0} ops/s across {REPLICAS} members",
        result.throughput_per_sec()
    );
    suite.record(result);

    let bench = Bench::new("failover").samples(SAMPLES).warmup(WARMUP);

    // ── Lane 2: kill → promote → first op served ────────────────────
    let first_op = *ops.first().expect("the driven epoch has ops");
    let mut pool: Vec<ReplicaSet> = (0..pool_size).map(|_| warmed_set(&driver)).collect();
    let result = bench.run("kill_promote_serve", || {
        let mut set = pool.pop().expect("one warmed set per sample");
        set.crash_primary_torn(first_op.at());
        set.apply(&first_op).expect("the promoted member serves");
        assert_eq!(set.failovers().len(), 1, "the kill promoted exactly once");
        set.primary()
    });
    println!(
        "kill -> promote -> first op served: median {:?}",
        result.median
    );
    suite.record(result);

    // ── Lane 3: the epoch after the failover, at full speed ─────────
    let mut pool: Vec<ReplicaSet> = (0..pool_size).map(|_| warmed_set(&driver)).collect();
    let result = bench.run_items("epoch_after_failover", ops.len() as u64, || {
        let mut set = pool.pop().expect("one warmed set per sample");
        set.crash_primary_torn(first_op.at());
        for op in &ops {
            set.apply(op)
                .expect("the promoted set acknowledges every op");
        }
        set.advance_to(epoch_end).expect("the boundary commits");
        set.primary_service().expect("serving").epoch_index()
    });
    println!(
        "first post-failover epoch: {:.0} ops/s",
        result.throughput_per_sec()
    );
    suite.record(result);

    suite.finish();
}
