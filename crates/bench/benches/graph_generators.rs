//! Criterion bench: social-graph generator throughput and metric cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_graph::{generators, metrics};
use tsn_simnet::SimRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for &n in &[100usize, 500, 1000] {
        group.bench_with_input(BenchmarkId::new("watts_strogatz", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SimRng::seed_from_u64(1);
                generators::watts_strogatz(n, 8, 0.1, &mut rng).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SimRng::seed_from_u64(1);
                generators::barabasi_albert(n, 3, &mut rng).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(2);
    let g = generators::watts_strogatz(500, 8, 0.1, &mut rng).unwrap();
    c.bench_function("average_clustering_500", |b| {
        b.iter(|| metrics::average_clustering(&g));
    });
    c.bench_function("average_path_length_500_s20", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            metrics::average_path_length(&g, 20, &mut rng)
        });
    });
}

criterion_group!(benches, bench_generators, bench_metrics);
criterion_main!(benches);
