//! Bench: social-graph generator throughput and metric cost.
//!
//! Run: `cargo bench -p tsn-bench --bench graph_generators`

use tsn_bench::harness::{Bench, BenchSuite};
use tsn_graph::{generators, metrics};
use tsn_simnet::SimRng;

fn main() {
    let mut suite = BenchSuite::new(
        "graph_generators",
        "generators:nodes=100,500,1000; metrics:nodes=500 samples_paths=20; samples=10",
    );
    let bench = Bench::new("generators").samples(10);
    for n in [100usize, 500, 1000] {
        suite.record(bench.run(&format!("watts_strogatz_{n}"), || {
            let mut rng = SimRng::seed_from_u64(1);
            generators::watts_strogatz(n, 8, 0.1, &mut rng).unwrap()
        }));
        suite.record(bench.run(&format!("barabasi_albert_{n}"), || {
            let mut rng = SimRng::seed_from_u64(1);
            generators::barabasi_albert(n, 3, &mut rng).unwrap()
        }));
    }

    let mut rng = SimRng::seed_from_u64(2);
    let g = generators::watts_strogatz(500, 8, 0.1, &mut rng).unwrap();
    let bench = Bench::new("metrics").samples(10);
    suite.record(bench.run("average_clustering_500", || metrics::average_clustering(&g)));
    suite.record(bench.run("average_path_length_500_s20", || {
        let mut rng = SimRng::seed_from_u64(3);
        metrics::average_path_length(&g, 20, &mut rng)
    }));

    suite.finish();
}
