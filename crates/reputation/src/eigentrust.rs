//! EigenTrust (Kamvar, Schlosser, Garcia-Molina — WWW 2003), the paper's
//! reference \[13\].
//!
//! Each peer `i` accumulates a local trust value `s_ij` for every partner
//! `j` (satisfactory minus unsatisfactory transactions). Normalized local
//! trust `c_ij = max(s_ij, 0) / Σ_j max(s_ij, 0)` forms a stochastic
//! matrix; the global trust vector is the stationary distribution of a
//! random walk that teleports to *pre-trusted peers* with probability
//! `alpha`:
//!
//! ```text
//! t ← (1 − α) Cᵀ t + α p
//! ```
//!
//! **Anonymized degradation.** When the disclosure policy hides rater
//! identities, `C` cannot be built; such reports fall into a per-ratee
//! anonymous pool and the final score blends the eigenvector with the
//! pool average, weighted by the share of identified reports. Hiding
//! identities therefore smoothly reduces EigenTrust toward a plain mean —
//! precisely the reputation-power loss the paper's Figure 2 plots.
//!
//! **Performance.** The local-trust matrix is a `LocalMatrix`: a
//! CSR-style adjacency `record()` updates in place, iterated in
//! deterministic (rater, ratee) order. `power_iterate` reuses the row
//! storage and ping-pongs two resident `t`/`next` buffers, so a refresh
//! allocates nothing — the former `HashMap` version rebuilt row storage
//! and allocated a fresh `next` vector per iteration, and its random
//! iteration order made low-order float bits vary between runs.

use crate::gathering::ReportView;
use crate::local_matrix::{LocalMatrix, UpsertMemo};
use crate::mechanism::{MechanismKind, ReputationMechanism};
use crate::walk::WalkMatrix;
use tsn_simnet::NodeId;

/// EigenTrust parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenTrustConfig {
    /// Teleport probability toward pre-trusted peers (the paper's `a`).
    pub alpha: f64,
    /// Convergence threshold on the L1 change between iterations.
    pub epsilon: f64,
    /// Iteration cap per [`ReputationMechanism::refresh`].
    pub max_iterations: usize,
    /// Pre-trusted peers. Empty means "uniform prior over all peers",
    /// which is the paper's fallback when no pre-trust exists.
    pub pretrusted: Vec<NodeId>,
}

impl Default for EigenTrustConfig {
    fn default() -> Self {
        EigenTrustConfig {
            alpha: 0.15,
            epsilon: 1e-9,
            max_iterations: 200,
            pretrusted: Vec::new(),
        }
    }
}

impl EigenTrustConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err("alpha must be in [0,1]".into());
        }
        if self.epsilon <= 0.0 {
            return Err("epsilon must be positive".into());
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be positive".into());
        }
        Ok(())
    }
}

/// One (rater, ratee) cell: `s_ij` (satisfactory − unsatisfactory) feeds
/// the C matrix; the value mean feeds the trust-weighted opinion
/// aggregation.
#[derive(Debug, Clone, Copy, Default)]
struct LocalCell {
    s: f64,
    value_sum: f64,
    count: u64,
}

/// The EigenTrust mechanism.
#[derive(Debug, Clone)]
pub struct EigenTrust {
    config: EigenTrustConfig,
    n: usize,
    /// Sparse local trust, updated in place by `record`.
    local: LocalMatrix<LocalCell>,
    /// Per-ratee anonymous pool: (sum of values, count).
    anon: Vec<(f64, u64)>,
    /// Count of identified vs anonymous reports, for blending.
    identified_reports: u64,
    anonymous_reports: u64,
    /// Cached global trust vector (a distribution over nodes).
    global: Vec<f64>,
    /// Cached trust-weighted opinion per node: (weighted value sum, weight).
    opinion: Vec<(f64, f64)>,
    dirty: bool,
    last_iterations: usize,
    /// Teleport distribution (recomputed only when the population grows).
    prior: Vec<f64>,
    /// The shared power-iteration engine (flat normalized matrix +
    /// ping-pong buffers, all resident across refreshes).
    walk: WalkMatrix,
    /// Flat (rater, ratee, value mean) image of the rated cells,
    /// captured during the walk rebuild for the opinion pass.
    opinion_src: Vec<(u32, u32, f64)>,
}

impl EigenTrust {
    /// Creates an instance for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(n: usize, config: EigenTrustConfig) -> Self {
        if let Err(e) = config.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a config that validate() rejects; fallible callers validate first")
            panic!("invalid EigenTrust config: {e}");
        }
        let prior = Self::compute_prior(&config.pretrusted, n);
        EigenTrust {
            config,
            n,
            local: LocalMatrix::new(n),
            anon: vec![(0.0, 0); n],
            identified_reports: 0,
            anonymous_reports: 0,
            global: vec![1.0 / n.max(1) as f64; n],
            opinion: vec![(0.0, 0.0); n],
            dirty: true,
            last_iterations: 0,
            prior,
            walk: WalkMatrix::default(),
            opinion_src: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EigenTrustConfig {
        &self.config
    }

    /// The raw global trust distribution (sums to 1). Prefer
    /// [`ReputationMechanism::score`] for `\[0, 1\]`-comparable values.
    pub fn global_trust(&mut self) -> &[f64] {
        if self.dirty {
            self.power_iterate();
        }
        &self.global
    }

    /// Iterations used by the most recent refresh.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    fn compute_prior(pretrusted: &[NodeId], n: usize) -> Vec<f64> {
        if pretrusted.is_empty() {
            vec![1.0 / n.max(1) as f64; n]
        } else {
            let mut p = vec![0.0; n];
            let share = 1.0 / pretrusted.len() as f64;
            for &node in pretrusted {
                if node.index() < n {
                    p[node.index()] += share;
                }
            }
            p
        }
    }

    fn power_iterate(&mut self) {
        let n = self.n;
        if n == 0 {
            self.dirty = false;
            self.last_iterations = 0;
            return;
        }
        // Row-normalize the positive local trust (`c_ij = max(s,0) /
        // Σ max(s,0)`) into the walk engine; raters with no positive
        // trust are dangling — their mass teleports to the prior. The
        // same traversal flattens each rated cell's value mean for the
        // opinion pass below.
        let opinion_src = &mut self.opinion_src;
        opinion_src.clear();
        self.walk.rebuild(
            n,
            &self.local,
            |cell| cell.s,
            |i, j, cell| {
                if cell.count > 0 {
                    opinion_src.push((i, j, cell.value_sum / cell.count as f64));
                }
            },
        );
        let iterations = self.walk.stationary(
            &self.prior,
            self.config.alpha,
            self.config.epsilon,
            self.config.max_iterations,
        );
        self.global.clear();
        self.global.extend_from_slice(self.walk.solution());
        // Cache the trust-weighted opinion aggregation for O(1) scoring,
        // over the flat (rater, ratee) image in deterministic order.
        self.opinion.clear();
        self.opinion.resize(n, (0.0, 0.0));
        for &(i, j, mean) in &self.opinion_src {
            // Floor on rater weight so fresh raters are heard faintly.
            let w = self.global[i as usize].max(1e-6);
            let slot = &mut self.opinion[j as usize];
            slot.0 += w * mean;
            slot.1 += w;
        }
        self.dirty = false;
        self.last_iterations = iterations;
    }

    fn blend_weight(&self) -> f64 {
        let total = self.identified_reports + self.anonymous_reports;
        if total == 0 {
            1.0
        } else {
            self.identified_reports as f64 / total as f64
        }
    }

    fn record_memo(&mut self, report: &ReportView, memo: &mut UpsertMemo) {
        let ratee = report.ratee.0;
        debug_assert!((ratee as usize) < self.n, "ratee out of range");
        match report.rater {
            Some(rater) if rater != report.ratee => {
                // s_ij += value for success, −1 for failure (paper: sat − unsat).
                let delta = if report.success { report.value() } else { -1.0 };
                let cell = self.local.upsert_memo(rater.0, ratee, memo);
                cell.s += delta;
                cell.value_sum += report.value();
                cell.count += 1;
                self.identified_reports += 1;
            }
            Some(_) => { /* self-rating is ignored */ }
            None => {
                let entry = &mut self.anon[ratee as usize];
                entry.0 += report.value();
                entry.1 += 1;
                self.anonymous_reports += 1;
            }
        }
        self.dirty = true;
    }
}

impl ReputationMechanism for EigenTrust {
    fn kind(&self) -> MechanismKind {
        MechanismKind::EigenTrust
    }

    fn resize(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
            self.local.resize(n);
            self.anon.resize(n, (0.0, 0));
            self.opinion.resize(n, (0.0, 0.0));
            self.global = vec![1.0 / n as f64; n];
            self.prior = Self::compute_prior(&self.config.pretrusted, n);
            self.dirty = true;
        }
    }

    fn record(&mut self, report: &ReportView) {
        self.record_memo(report, &mut UpsertMemo::default());
    }

    fn record_batch(&mut self, reports: &[ReportView]) {
        // One memo across the batch: runs of identical (rater, ratee)
        // keys — ballot-stuffed copies, shard outboxes in rater order —
        // reuse the found cell instead of re-searching the row. The
        // per-cell float adds are issued in the same order as looped
        // `record` calls, so scores stay bit-identical.
        let mut memo = UpsertMemo::default();
        for report in reports {
            self.record_memo(report, &mut memo);
        }
    }

    fn refresh(&mut self) -> usize {
        self.power_iterate();
        self.last_iterations
    }

    fn score(&self, node: NodeId) -> f64 {
        if node.index() >= self.n {
            return 0.5;
        }
        // EigenTrust aggregation step: the system's opinion about j is the
        // global-trust-weighted mean of local opinions — colluders with no
        // trust mass cannot move the score, while the value stays a
        // `[0, 1]` quality estimate. (Cached by `power_iterate`.)
        let (weighted, weight) = self.opinion[node.index()];
        let identified = if weight > 0.0 { weighted / weight } else { 0.5 };
        let w = self.blend_weight();
        let (sum, count) = self.anon[node.index()];
        let anon_mean = if count > 0 { sum / count as f64 } else { 0.5 };
        w * identified + (1.0 - w) * anon_mean
    }

    fn len(&self) -> usize {
        self.n
    }

    fn overhead_per_report(&self) -> usize {
        // Distributed EigenTrust: report to the ratee's score managers
        // (CAN-based DHT, typically a handful of replicas).
        3
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // Layout: n, then the sparse local rows (len + ratee/s/value_sum/
        // count per cell, ascending ratee), the anonymous pools, the
        // identified/anonymous counters, and the score caches (`global`,
        // `opinion`, `dirty`, `last_iterations`). The caches matter:
        // `score` reads them without refreshing, so a restore that
        // dropped them would answer queries differently than the
        // snapshotted instance until the next refresh. `prior` is
        // derived from configuration and `walk`/`opinion_src` are
        // rebuilt wholesale by `power_iterate`, so none of them travel.
        let mut w = tsn_simnet::ByteWriter::new();
        w.put_u64(self.n as u64);
        for i in 0..self.n {
            let row = self.local.row(i);
            w.put_u64(row.len() as u64);
            for &(j, cell) in row {
                w.put_u32(j);
                w.put_f64(cell.s);
                w.put_f64(cell.value_sum);
                w.put_u64(cell.count);
            }
        }
        for &(sum, count) in &self.anon {
            w.put_f64(sum);
            w.put_u64(count);
        }
        w.put_u64(self.identified_reports);
        w.put_u64(self.anonymous_reports);
        for &g in &self.global {
            w.put_f64(g);
        }
        for &(weighted, weight) in &self.opinion {
            w.put_f64(weighted);
            w.put_f64(weight);
        }
        w.put_u8(self.dirty as u8);
        w.put_u64(self.last_iterations as u64);
        Some(w.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = tsn_simnet::ByteReader::new(bytes);
        let n = r.take_u64()? as usize;
        if n != self.n {
            return Err(format!(
                "EigenTrust snapshot is for {n} nodes, instance has {}",
                self.n
            ));
        }
        let mut local: LocalMatrix<LocalCell> = LocalMatrix::new(n);
        let mut memo = UpsertMemo::default();
        for i in 0..n {
            let len = r.take_seq_len(28)?;
            for _ in 0..len {
                let j = r.take_u32()?;
                if j as usize >= n {
                    return Err(format!("snapshot cell ratee {j} out of range (n = {n})"));
                }
                let cell = local.upsert_memo(i as u32, j, &mut memo);
                cell.s = r.take_f64()?;
                cell.value_sum = r.take_f64()?;
                cell.count = r.take_u64()?;
            }
        }
        for slot in self.anon.iter_mut() {
            *slot = (r.take_f64()?, r.take_u64()?);
        }
        self.identified_reports = r.take_u64()?;
        self.anonymous_reports = r.take_u64()?;
        for g in self.global.iter_mut() {
            *g = r.take_f64()?;
        }
        for slot in self.opinion.iter_mut() {
            *slot = (r.take_f64()?, r.take_f64()?);
        }
        self.dirty = r.take_u8()? != 0;
        self.last_iterations = r.take_u64()? as usize;
        self.local = local;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gathering::{DisclosurePolicy, FeedbackReport};
    use crate::mechanism::InteractionOutcome;
    use tsn_simnet::{SimRng, SimTime};

    fn feed(m: &mut EigenTrust, rater: u32, ratee: u32, good: bool, policy: &DisclosurePolicy) {
        let report = FeedbackReport {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: if good {
                InteractionOutcome::Success { quality: 1.0 }
            } else {
                InteractionOutcome::Failure
            },
            topic: None,
            at: SimTime::ZERO,
        };
        m.record(&policy.view(&report));
    }

    #[test]
    fn good_nodes_outrank_bad_nodes() {
        let mut m = EigenTrust::new(4, EigenTrustConfig::default());
        let full = DisclosurePolicy::full();
        // 0 and 1 praise each other and node 2; everyone reports node 3 bad.
        for _ in 0..5 {
            feed(&mut m, 0, 1, true, &full);
            feed(&mut m, 1, 0, true, &full);
            feed(&mut m, 0, 2, true, &full);
            feed(&mut m, 1, 3, false, &full);
            feed(&mut m, 0, 3, false, &full);
        }
        m.refresh();
        assert!(m.score(NodeId(0)) > m.score(NodeId(3)));
        assert!(m.score(NodeId(1)) > m.score(NodeId(3)));
        assert!(m.score(NodeId(2)) > m.score(NodeId(3)));
    }

    #[test]
    fn global_trust_is_a_distribution() {
        let mut m = EigenTrust::new(5, EigenTrustConfig::default());
        let full = DisclosurePolicy::full();
        for r in 0..5u32 {
            for e in 0..5u32 {
                if r != e {
                    feed(&mut m, r, e, e % 2 == 0, &full);
                }
            }
        }
        let t = m.global_trust();
        let sum: f64 = t.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "eigenvector sums to 1, got {sum}");
        assert!(t.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pretrusted_peers_get_teleport_mass() {
        let config = EigenTrustConfig {
            pretrusted: vec![NodeId(0)],
            ..Default::default()
        };
        let mut m = EigenTrust::new(3, config);
        // No reports at all: stationary distribution = prior = all mass on 0.
        m.refresh();
        let t = m.global_trust();
        assert!(
            t[0] > t[1] && t[0] > t[2],
            "teleport mass concentrates on the seed: {t:?}"
        );
    }

    #[test]
    fn pretrusted_weighting_discounts_colluders() {
        // Colluders 2 and 3 praise each other massively; the pretrusted
        // seed 0 rates 1 well and 3 badly. With identity-aware weighting,
        // 1 must outrank 3 despite 3 receiving more praise volume.
        let config = EigenTrustConfig {
            pretrusted: vec![NodeId(0)],
            ..Default::default()
        };
        let mut m = EigenTrust::new(4, config);
        let full = DisclosurePolicy::full();
        for _ in 0..3 {
            feed(&mut m, 0, 1, true, &full);
            feed(&mut m, 0, 3, false, &full);
        }
        for _ in 0..20 {
            feed(&mut m, 2, 3, true, &full);
            feed(&mut m, 3, 2, true, &full);
        }
        m.refresh();
        assert!(
            m.score(NodeId(1)) > m.score(NodeId(3)),
            "seed-endorsed node must outrank collusion ring: {} vs {}",
            m.score(NodeId(1)),
            m.score(NodeId(3))
        );
    }

    #[test]
    fn self_ratings_are_ignored() {
        let mut m = EigenTrust::new(3, EigenTrustConfig::default());
        let full = DisclosurePolicy::full();
        for _ in 0..10 {
            feed(&mut m, 2, 2, true, &full);
        }
        m.refresh();
        // Node 2 gained nothing: uniform prior persists.
        let s: Vec<f64> = (0..3).map(|i| m.score(NodeId(i))).collect();
        assert!(
            (s[0] - s[2]).abs() < 1e-9,
            "self-praise must not help: {s:?}"
        );
    }

    #[test]
    fn anonymous_reports_still_inform_scores() {
        let mut m = EigenTrust::new(3, EigenTrustConfig::default());
        let anon = DisclosurePolicy::minimal();
        for _ in 0..10 {
            feed(&mut m, 0, 1, true, &anon);
            feed(&mut m, 0, 2, false, &anon);
        }
        m.refresh();
        assert!(
            m.score(NodeId(1)) > m.score(NodeId(2)),
            "anonymous pool should still separate good from bad"
        );
    }

    #[test]
    fn anonymization_degrades_separation() {
        // With identities, collusion-resistant eigenvector scoring gives a
        // crisper separation than the anonymous mean under mixed feedback.
        let run = |policy: DisclosurePolicy| {
            let mut m = EigenTrust::new(4, EigenTrustConfig::default());
            for _ in 0..10 {
                feed(&mut m, 0, 1, true, &policy);
                feed(&mut m, 1, 0, true, &policy);
                feed(&mut m, 2, 3, true, &policy); // liar boosts liar
                feed(&mut m, 0, 3, false, &policy);
                feed(&mut m, 1, 3, false, &policy);
            }
            m.refresh();
            m.score(NodeId(0)) - m.score(NodeId(3))
        };
        let with_ids = run(DisclosurePolicy::full());
        let without_ids = run(DisclosurePolicy::minimal());
        assert!(
            with_ids > without_ids,
            "identity-aware separation {with_ids} should beat anonymous {without_ids}"
        );
    }

    #[test]
    fn refresh_reports_iterations_and_converges() {
        let mut m = EigenTrust::new(10, EigenTrustConfig::default());
        let full = DisclosurePolicy::full();
        for r in 0..10u32 {
            feed(&mut m, r, (r + 1) % 10, true, &full);
        }
        let iters = m.refresh();
        assert!(iters > 0 && iters <= 200);
        assert_eq!(iters, m.last_iterations());
    }

    #[test]
    fn empty_mechanism_scores_prior() {
        let mut m = EigenTrust::new(3, EigenTrustConfig::default());
        m.refresh();
        // Uniform eigenvector: max-normalized score = 1 for everyone.
        let s = m.score(NodeId(0));
        assert!(s > 0.0 && s <= 1.0);
        assert_eq!(m.score(NodeId(99)), 0.5, "out-of-range nodes get the prior");
    }

    #[test]
    fn resize_grows_tracking() {
        let mut m = EigenTrust::new(2, EigenTrustConfig::default());
        m.resize(5);
        assert_eq!(m.len(), 5);
        let full = DisclosurePolicy::full();
        feed(&mut m, 4, 3, true, &full);
        m.refresh();
        assert!(m.score(NodeId(3)) > 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(EigenTrustConfig {
            alpha: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EigenTrustConfig {
            epsilon: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EigenTrustConfig {
            max_iterations: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EigenTrustConfig::default().validate().is_ok());
    }

    /// Random but seed-reproducible report stream over `n` nodes.
    fn random_feed(m: &mut EigenTrust, n: u32, count: usize, seed: u64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let full = DisclosurePolicy::full();
        for _ in 0..count {
            let rater = rng.gen_range(0..n);
            let mut ratee = rng.gen_range(0..n);
            if ratee == rater {
                ratee = (ratee + 1) % n;
            }
            feed(m, rater, ratee, rng.gen_bool(0.7), &full);
        }
    }

    #[test]
    fn two_instances_are_bit_identical() {
        // The HashMap-backed implementation could differ in low-order
        // float bits between instances (random iteration order); the CSR
        // storage accumulates in a fixed order, so equality is exact.
        let mut a = EigenTrust::new(30, EigenTrustConfig::default());
        let mut b = EigenTrust::new(30, EigenTrustConfig::default());
        random_feed(&mut a, 30, 600, 9);
        random_feed(&mut b, 30, 600, 9);
        a.refresh();
        b.refresh();
        assert_eq!(a.global_trust(), b.global_trust());
        for i in 0..30 {
            assert_eq!(
                a.score(NodeId(i)).to_bits(),
                b.score(NodeId(i)).to_bits(),
                "node {i}"
            );
        }
    }

    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        let mut a = EigenTrust::new(25, EigenTrustConfig::default());
        random_feed(&mut a, 25, 500, 3);
        a.refresh();
        // Leave the instance mid-stream (dirty, unrefreshed tail) so the
        // snapshot covers cache + pending state, not just a clean point.
        random_feed(&mut a, 25, 100, 4);
        let snap = a.snapshot_state().expect("eigentrust supports snapshots");

        let mut b = EigenTrust::new(25, EigenTrustConfig::default());
        b.restore_state(&snap).expect("round trip");
        for i in 0..25 {
            assert_eq!(
                a.score(NodeId(i)).to_bits(),
                b.score(NodeId(i)).to_bits(),
                "restored scores must match before any refresh (node {i})"
            );
        }

        // Continuing both instances identically stays bit-identical.
        random_feed(&mut a, 25, 200, 5);
        random_feed(&mut b, 25, 200, 5);
        a.refresh();
        b.refresh();
        assert_eq!(a.global_trust(), b.global_trust());
        for i in 0..25 {
            assert_eq!(a.score(NodeId(i)).to_bits(), b.score(NodeId(i)).to_bits());
        }
    }

    #[test]
    fn snapshot_restore_rejects_bad_input() {
        let mut a = EigenTrust::new(8, EigenTrustConfig::default());
        random_feed(&mut a, 8, 50, 6);
        let snap = a.snapshot_state().unwrap();
        let mut wrong_size = EigenTrust::new(4, EigenTrustConfig::default());
        assert!(
            wrong_size.restore_state(&snap).is_err(),
            "population mismatch"
        );
        let mut same = EigenTrust::new(8, EigenTrustConfig::default());
        assert!(
            same.restore_state(&snap[..snap.len() / 2]).is_err(),
            "truncated"
        );
    }

    #[test]
    fn incremental_refreshes_match_from_scratch() {
        // Interleaving record/refresh must leave the matrix in exactly
        // the state a single batch ingest would produce: the in-place row
        // updates and resident scratch buffers carry no state between
        // refreshes.
        let mut incremental = EigenTrust::new(20, EigenTrustConfig::default());
        let mut rng = SimRng::seed_from_u64(17);
        let full = DisclosurePolicy::full();
        let mut log: Vec<(u32, u32, bool)> = Vec::new();
        for step in 0..400 {
            let rater = rng.gen_range(0..20);
            let mut ratee = rng.gen_range(0..20);
            if ratee == rater {
                ratee = (ratee + 1) % 20;
            }
            let good = rng.gen_bool(0.6);
            log.push((rater, ratee, good));
            feed(&mut incremental, rater, ratee, good, &full);
            if step % 37 == 0 {
                incremental.refresh();
            }
        }
        incremental.refresh();

        let mut scratch = EigenTrust::new(20, EigenTrustConfig::default());
        for &(rater, ratee, good) in &log {
            feed(&mut scratch, rater, ratee, good, &full);
        }
        scratch.refresh();

        assert_eq!(incremental.global_trust(), scratch.global_trust());
        for i in 0..20 {
            assert_eq!(
                incremental.score(NodeId(i)).to_bits(),
                scratch.score(NodeId(i)).to_bits(),
                "node {i}"
            );
        }
    }
}
