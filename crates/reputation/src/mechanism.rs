//! The common interface of all reputation mechanisms.

use crate::gathering::ReportView;
use tsn_simnet::NodeId;

/// The outcome of one interaction, as experienced by the consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InteractionOutcome {
    /// The provider delivered satisfactorily; `quality` in `[0, 1]` is the
    /// experienced quality (1 = perfect).
    Success {
        /// Experienced quality of the service.
        quality: f64,
    },
    /// The provider failed, cheated or served corrupted content.
    Failure,
}

impl InteractionOutcome {
    /// Scalar value of the outcome in `[0, 1]` (failures are 0).
    pub fn value(self) -> f64 {
        match self {
            InteractionOutcome::Success { quality } => quality.clamp(0.0, 1.0),
            InteractionOutcome::Failure => 0.0,
        }
    }

    /// Whether the interaction succeeded.
    pub fn is_success(self) -> bool {
        matches!(self, InteractionOutcome::Success { .. })
    }
}

/// Which mechanism a configuration selects; used by `tsn-core` configs
/// and experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// No reputation at all (baseline: random partner choice).
    None,
    /// Bayesian Beta reputation.
    Beta,
    /// EigenTrust (Kamvar et al., WWW 2003).
    EigenTrust,
    /// PowerTrust (Zhou & Hwang, TPDS 2007).
    PowerTrust,
    /// TrustMe-style anonymous trust-holders (Singh & Liu, P2P 2003).
    TrustMe,
}

impl MechanismKind {
    /// All kinds, for sweeps.
    pub const ALL: [MechanismKind; 5] = [
        MechanismKind::None,
        MechanismKind::Beta,
        MechanismKind::EigenTrust,
        MechanismKind::PowerTrust,
        MechanismKind::TrustMe,
    ];

    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::None => "none",
            MechanismKind::Beta => "beta",
            MechanismKind::EigenTrust => "eigentrust",
            MechanismKind::PowerTrust => "powertrust",
            MechanismKind::TrustMe => "trustme",
        }
    }

    /// Whether this kind implements state snapshots
    /// ([`ReputationMechanism::snapshot_state`] /
    /// [`ReputationMechanism::restore_state`]), i.e. can live inside a
    /// service checkpoint. Kept in sync with the implementations by a
    /// test in `builder.rs`.
    pub fn supports_snapshots(self) -> bool {
        matches!(
            self,
            MechanismKind::None | MechanismKind::Beta | MechanismKind::EigenTrust
        )
    }

    /// The snapshot-capable kind names, comma-separated — for error
    /// messages that should tell the caller their options.
    pub fn snapshot_capable_names() -> String {
        let names: Vec<&str> = MechanismKind::ALL
            .iter()
            .filter(|k| k.supports_snapshots())
            .map(|k| k.name())
            .collect();
        names.join(", ")
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A reputation mechanism: consumes (possibly anonymized) feedback report
/// views and produces global scores in `[0, 1]`.
///
/// Implementations must tolerate missing report fields — an anonymized
/// view may hide the rater identity or the outcome detail; mechanisms
/// degrade gracefully (that degradation *is* the reputation/privacy
/// trade-off the paper studies).
///
/// Mechanisms are `Send + Sync`: the sharded scenario engine reads
/// scores (`&self`) from several worker threads at once while all
/// mutation (`record`, `refresh`) stays on the merge barrier's single
/// thread. Implementations hold plain owned data, so this costs nothing.
pub trait ReputationMechanism: std::fmt::Debug + Send + Sync {
    /// Identifies the mechanism in reports.
    fn kind(&self) -> MechanismKind;

    /// Ensures the mechanism tracks at least `n` nodes.
    fn resize(&mut self, n: usize);

    /// Ingests one feedback report view.
    fn record(&mut self, report: &ReportView);

    /// Ingests a batch of report views, in order. Equivalent to calling
    /// [`ReputationMechanism::record`] for each view (bit-identical
    /// scores), but mechanisms backed by sorted sparse rows can exploit
    /// run locality — consecutive reports from one rater about one ratee
    /// (the ballot-stuffing shape, and the shape shard outboxes drain
    /// in) hit the same cell without re-searching the row.
    fn record_batch(&mut self, reports: &[ReportView]) {
        for report in reports {
            self.record(report);
        }
    }

    /// Recomputes global scores (may be a no-op for incremental
    /// mechanisms). Returns the number of internal iterations performed,
    /// for efficiency accounting.
    fn refresh(&mut self) -> usize;

    /// Global score of `node` in `[0, 1]`. Nodes never rated return the
    /// mechanism's prior.
    fn score(&self, node: NodeId) -> f64;

    /// Number of tracked nodes.
    fn len(&self) -> usize;

    /// Whether no nodes are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All scores, indexed by node.
    fn scores(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.score(NodeId::from_index(i)))
            .collect()
    }

    /// Nodes sorted by descending score (ties by ascending id, so the
    /// ranking is deterministic).
    fn ranking(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.len()).map(NodeId::from_index).collect();
        nodes.sort_by(|&a, &b| {
            self.score(b)
                .partial_cmp(&self.score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        nodes
    }

    /// Messages this mechanism would send per recorded report in a real
    /// deployment (overhead accounting; 0 for purely local mechanisms).
    fn overhead_per_report(&self) -> usize {
        0
    }

    /// Serializes the mechanism's evolving state (accumulated evidence,
    /// cached score vectors) into a self-contained byte blob, or `None`
    /// if the mechanism does not support checkpointing.
    ///
    /// Configuration is *not* part of the snapshot: the contract is that
    /// [`ReputationMechanism::restore_state`] is called on an instance
    /// constructed with identical parameters (the checkpoint envelope —
    /// e.g. the `tsn-service` checkpoint — records those parameters and
    /// rebuilds the instance before restoring). Within that contract the
    /// round trip is bit-identical: every `f64` travels as its IEEE-754
    /// bit pattern, so a restored mechanism scores exactly like the
    /// snapshotted one, down to the last bit.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`ReputationMechanism::snapshot_state`]
    /// onto an identically configured instance.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch for unsupported mechanisms,
    /// truncated/corrupt input, or a snapshot taken at a different
    /// population size.
    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!(
            "mechanism '{}' does not support state restore",
            self.kind()
        ))
    }
}

impl ReputationMechanism for Box<dyn ReputationMechanism> {
    fn kind(&self) -> MechanismKind {
        (**self).kind()
    }
    fn resize(&mut self, n: usize) {
        (**self).resize(n);
    }
    fn record(&mut self, report: &ReportView) {
        (**self).record(report);
    }
    fn record_batch(&mut self, reports: &[ReportView]) {
        (**self).record_batch(reports);
    }
    fn refresh(&mut self) -> usize {
        (**self).refresh()
    }
    fn score(&self, node: NodeId) -> f64 {
        (**self).score(node)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn overhead_per_report(&self) -> usize {
        (**self).overhead_per_report()
    }
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        (**self).snapshot_state()
    }
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_state(bytes)
    }
}

/// A trivial mechanism that scores everyone with the same prior; the
/// `MechanismKind::None` baseline.
#[derive(Debug, Clone)]
pub struct NoReputation {
    n: usize,
    prior: f64,
}

impl NoReputation {
    /// Creates the baseline with a 0.5 prior.
    pub fn new(n: usize) -> Self {
        NoReputation { n, prior: 0.5 }
    }
}

impl ReputationMechanism for NoReputation {
    fn kind(&self) -> MechanismKind {
        MechanismKind::None
    }

    fn resize(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    fn record(&mut self, _report: &ReportView) {}

    fn refresh(&mut self) -> usize {
        0
    }

    fn score(&self, _node: NodeId) -> f64 {
        self.prior
    }

    fn len(&self) -> usize {
        self.n
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // Stateless beyond the population size; the snapshot still
        // exists so service checkpoints work with the baseline.
        let mut w = tsn_simnet::ByteWriter::new();
        w.put_u64(self.n as u64);
        Some(w.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = tsn_simnet::ByteReader::new(bytes);
        let n = r.take_u64()? as usize;
        if n != self.n {
            return Err(format!(
                "NoReputation snapshot is for {n} nodes, instance has {}",
                self.n
            ));
        }
        Ok(())
    }
}

/// Constructs a boxed mechanism of the given kind with default parameters
/// for an `n`-node population.
pub fn build_mechanism(kind: MechanismKind, n: usize) -> Box<dyn ReputationMechanism> {
    match kind {
        MechanismKind::None => Box::new(NoReputation::new(n)),
        MechanismKind::Beta => Box::new(crate::beta::BetaReputation::new(n)),
        MechanismKind::EigenTrust => Box::new(crate::eigentrust::EigenTrust::new(
            n,
            crate::eigentrust::EigenTrustConfig::default(),
        )),
        MechanismKind::PowerTrust => Box::new(crate::powertrust::PowerTrust::new(
            n,
            crate::powertrust::PowerTrustConfig::default(),
        )),
        MechanismKind::TrustMe => Box::new(crate::trustme::TrustMe::new(
            n,
            crate::trustme::TrustMeConfig::default(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gathering::{DisclosurePolicy, FeedbackReport};
    use tsn_simnet::SimTime;

    #[test]
    fn supports_snapshots_matches_the_implementations() {
        for kind in MechanismKind::ALL {
            let mechanism = build_mechanism(kind, 8);
            assert_eq!(
                mechanism.snapshot_state().is_some(),
                kind.supports_snapshots(),
                "MechanismKind::supports_snapshots out of sync for {kind}"
            );
        }
        let names = MechanismKind::snapshot_capable_names();
        assert_eq!(names, "none, beta, eigentrust");
    }

    #[test]
    fn outcome_values() {
        assert_eq!(InteractionOutcome::Failure.value(), 0.0);
        assert_eq!(InteractionOutcome::Success { quality: 0.8 }.value(), 0.8);
        assert_eq!(
            InteractionOutcome::Success { quality: 7.0 }.value(),
            1.0,
            "clamped"
        );
        assert!(InteractionOutcome::Success { quality: 0.1 }.is_success());
        assert!(!InteractionOutcome::Failure.is_success());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(MechanismKind::EigenTrust.to_string(), "eigentrust");
        assert_eq!(MechanismKind::ALL.len(), 5);
    }

    #[test]
    fn no_reputation_scores_prior() {
        let mut m = NoReputation::new(3);
        let report = FeedbackReport {
            rater: NodeId(0),
            ratee: NodeId(1),
            outcome: InteractionOutcome::Failure,
            topic: None,
            at: SimTime::ZERO,
        };
        m.record(&DisclosurePolicy::full().view(&report));
        m.refresh();
        assert_eq!(m.score(NodeId(1)), 0.5);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        let m = NoReputation::new(4);
        assert_eq!(
            m.ranking(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn build_mechanism_matches_kind() {
        for kind in MechanismKind::ALL {
            let m = build_mechanism(kind, 10);
            assert_eq!(m.kind(), kind);
            assert_eq!(m.len(), 10);
        }
    }

    #[test]
    fn resize_only_grows() {
        let mut m = NoReputation::new(5);
        m.resize(3);
        assert_eq!(m.len(), 5);
        m.resize(8);
        assert_eq!(m.len(), 8);
    }
}
