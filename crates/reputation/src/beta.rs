//! Beta (Bayesian) reputation — the classic baseline mechanism.
//!
//! Every ratee accumulates pseudo-counts `(α, β)` from positive and
//! negative reports; the score is the posterior mean `α / (α + β)` with a
//! `Beta(1, 1)` (uniform) prior. When rater identities are disclosed the
//! report is weighted by the *rater's own current score* (credibility
//! weighting), which buys resistance against lying minorities — and is
//! lost under anonymization, again exactly the trade-off the paper plots.

use crate::gathering::ReportView;
use crate::mechanism::{MechanismKind, ReputationMechanism};
use tsn_simnet::NodeId;

/// The Beta reputation mechanism.
///
/// ```
/// use tsn_reputation::{
///     BetaReputation, DisclosurePolicy, FeedbackReport, InteractionOutcome,
///     ReputationMechanism,
/// };
/// use tsn_simnet::{NodeId, SimTime};
///
/// let mut rep = BetaReputation::new(2);
/// let report = FeedbackReport {
///     rater: NodeId(0),
///     ratee: NodeId(1),
///     outcome: InteractionOutcome::Success { quality: 1.0 },
///     topic: None,
///     at: SimTime::ZERO,
/// };
/// rep.record(&DisclosurePolicy::full().view(&report));
/// assert!(rep.score(NodeId(1)) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct BetaReputation {
    /// Positive pseudo-counts per node (prior adds 1).
    pos: Vec<f64>,
    /// Negative pseudo-counts per node (prior adds 1).
    neg: Vec<f64>,
    /// Exponential aging factor applied on [`ReputationMechanism::refresh`];
    /// 1.0 disables aging.
    aging: f64,
    /// Whether to weight reports by rater credibility when identities are
    /// available.
    credibility_weighting: bool,
}

impl BetaReputation {
    /// Creates an instance for `n` nodes with credibility weighting on and
    /// no aging.
    pub fn new(n: usize) -> Self {
        BetaReputation {
            pos: vec![0.0; n],
            neg: vec![0.0; n],
            aging: 1.0,
            credibility_weighting: true,
        }
    }

    /// Sets the aging factor in `(0, 1]`; each `refresh` multiplies all
    /// counts by it, fading old evidence.
    ///
    /// # Panics
    ///
    /// Panics if `aging` is not in `(0, 1]`.
    pub fn with_aging(mut self, aging: f64) -> Self {
        assert!(aging > 0.0 && aging <= 1.0, "aging must be in (0,1]");
        self.aging = aging;
        self
    }

    /// Disables rater-credibility weighting (used by ablations).
    pub fn without_credibility_weighting(mut self) -> Self {
        self.credibility_weighting = false;
        self
    }

    /// Total evidence (positive + negative counts) about `node`.
    pub fn evidence(&self, node: NodeId) -> f64 {
        self.pos[node.index()] + self.neg[node.index()]
    }
}

impl ReputationMechanism for BetaReputation {
    fn kind(&self) -> MechanismKind {
        MechanismKind::Beta
    }

    fn resize(&mut self, n: usize) {
        if n > self.pos.len() {
            self.pos.resize(n, 0.0);
            self.neg.resize(n, 0.0);
        }
    }

    fn record(&mut self, report: &ReportView) {
        let ratee = report.ratee.index();
        debug_assert!(ratee < self.pos.len(), "ratee out of range");
        if report.rater == Some(report.ratee) {
            return; // self-ratings are ignored
        }
        let weight = match report.rater {
            Some(rater) if self.credibility_weighting => {
                // Weight by the rater's current score; unknown raters start
                // at the 0.5 prior, so weights stay in (0, 1).
                self.score(rater).max(0.05)
            }
            _ => 1.0,
        };
        let v = report.value();
        // Fine-grained quality splits the report between α and β mass.
        self.pos[ratee] += weight * v;
        self.neg[ratee] += weight * (1.0 - v);
    }

    fn refresh(&mut self) -> usize {
        if self.aging < 1.0 {
            for x in self.pos.iter_mut().chain(self.neg.iter_mut()) {
                *x *= self.aging;
            }
            1
        } else {
            0
        }
    }

    fn score(&self, node: NodeId) -> f64 {
        if node.index() >= self.pos.len() {
            return 0.5;
        }
        let a = self.pos[node.index()] + 1.0;
        let b = self.neg[node.index()] + 1.0;
        a / (a + b)
    }

    fn len(&self) -> usize {
        self.pos.len()
    }

    fn overhead_per_report(&self) -> usize {
        // Purely local gossip of one report.
        1
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // Evolving state is exactly the two pseudo-count vectors; aging
        // and credibility weighting are construction-time configuration
        // (see the trait's restore contract).
        let mut w = tsn_simnet::ByteWriter::new();
        w.put_u64(self.pos.len() as u64);
        for &x in self.pos.iter().chain(self.neg.iter()) {
            w.put_f64(x);
        }
        Some(w.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = tsn_simnet::ByteReader::new(bytes);
        let n = r.take_seq_len(16)?;
        if n != self.pos.len() {
            return Err(format!(
                "Beta snapshot is for {n} nodes, instance has {}",
                self.pos.len()
            ));
        }
        for x in self.pos.iter_mut().chain(self.neg.iter_mut()) {
            *x = r.take_f64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gathering::{DisclosurePolicy, FeedbackReport};
    use crate::mechanism::InteractionOutcome;
    use tsn_simnet::SimTime;

    fn view(rater: u32, ratee: u32, good: bool, policy: &DisclosurePolicy) -> ReportView {
        policy.view(&FeedbackReport {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: if good {
                InteractionOutcome::Success { quality: 1.0 }
            } else {
                InteractionOutcome::Failure
            },
            topic: None,
            at: SimTime::ZERO,
        })
    }

    #[test]
    fn prior_is_half() {
        let m = BetaReputation::new(2);
        assert_eq!(m.score(NodeId(0)), 0.5);
        assert_eq!(m.score(NodeId(99)), 0.5);
    }

    #[test]
    fn positive_reports_raise_score() {
        let mut m = BetaReputation::new(2);
        let full = DisclosurePolicy::full();
        for _ in 0..10 {
            m.record(&view(0, 1, true, &full));
        }
        assert!(m.score(NodeId(1)) > 0.8);
        assert_eq!(m.score(NodeId(0)), 0.5, "rater unchanged");
    }

    #[test]
    fn negative_reports_lower_score() {
        let mut m = BetaReputation::new(2);
        let full = DisclosurePolicy::full();
        for _ in 0..10 {
            m.record(&view(0, 1, false, &full));
        }
        assert!(m.score(NodeId(1)) < 0.2);
    }

    #[test]
    fn posterior_mean_formula() {
        let mut m = BetaReputation::new(2).without_credibility_weighting();
        let full = DisclosurePolicy::full();
        m.record(&view(0, 1, true, &full));
        m.record(&view(0, 1, true, &full));
        m.record(&view(0, 1, false, &full));
        // α = 2+1, β = 1+1 → 3/5
        assert!((m.score(NodeId(1)) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn quality_detail_splits_mass() {
        let mut m = BetaReputation::new(2).without_credibility_weighting();
        let full = DisclosurePolicy::full();
        let report = FeedbackReport {
            rater: NodeId(0),
            ratee: NodeId(1),
            outcome: InteractionOutcome::Success { quality: 0.5 },
            topic: None,
            at: SimTime::ZERO,
        };
        m.record(&full.view(&report));
        // α = 0.5+1, β = 0.5+1 → 0.5
        assert!((m.score(NodeId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(m.evidence(NodeId(1)), 1.0);
    }

    #[test]
    fn credibility_weighting_discounts_distrusted_raters() {
        let full = DisclosurePolicy::full();
        let mut m = BetaReputation::new(3);
        // Node 2's reputation is first destroyed by node 0.
        for _ in 0..20 {
            m.record(&view(0, 2, false, &full));
        }
        let low_cred = m.score(NodeId(2));
        assert!(low_cred < 0.1);
        // Now node 2 (distrusted) and node 0 (prior 0.5) both praise node 1.
        let mut with_liar = m.clone();
        for _ in 0..5 {
            with_liar.record(&view(2, 1, true, &full));
        }
        let mut with_neutral = m.clone();
        for _ in 0..5 {
            with_neutral.record(&view(0, 1, true, &full));
        }
        assert!(
            with_neutral.score(NodeId(1)) > with_liar.score(NodeId(1)),
            "distrusted rater's praise must count less"
        );
    }

    #[test]
    fn anonymized_reports_have_unit_weight() {
        let anon = DisclosurePolicy::minimal();
        let mut m = BetaReputation::new(2);
        m.record(&view(0, 1, true, &anon));
        // α = 1+1, β = 0+1 → 2/3 exactly (weight 1, coarse bit)
        assert!((m.score(NodeId(1)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_ratings_ignored() {
        let full = DisclosurePolicy::full();
        let mut m = BetaReputation::new(2);
        for _ in 0..10 {
            m.record(&view(1, 1, true, &full));
        }
        assert_eq!(m.score(NodeId(1)), 0.5);
    }

    #[test]
    fn aging_fades_evidence() {
        let full = DisclosurePolicy::full();
        let mut m = BetaReputation::new(2)
            .with_aging(0.5)
            .without_credibility_weighting();
        for _ in 0..8 {
            m.record(&view(0, 1, true, &full));
        }
        let before = m.score(NodeId(1));
        for _ in 0..10 {
            m.refresh();
        }
        let after = m.score(NodeId(1));
        assert!(
            after < before,
            "aged score {after} should drop from {before}"
        );
        assert!(
            (after - 0.5).abs() < 0.01,
            "evidence fades back toward the prior"
        );
    }

    #[test]
    #[should_panic(expected = "aging must be in (0,1]")]
    fn invalid_aging_panics() {
        let _ = BetaReputation::new(1).with_aging(0.0);
    }

    #[test]
    fn resize_grows() {
        let mut m = BetaReputation::new(1);
        m.resize(4);
        assert_eq!(m.len(), 4);
        m.resize(2);
        assert_eq!(m.len(), 4, "never shrinks");
    }
}
