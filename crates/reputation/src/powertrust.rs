//! PowerTrust (Zhou & Hwang — IEEE TPDS 2007), the paper's ref \[24\].
//!
//! PowerTrust observes that feedback in real P2P systems follows a
//! power law, and exploits it: a small set of *power nodes* — the most
//! reputable peers — are given extra weight when aggregating local trust
//! (the "look-ahead random walk" / LRW aggregation). We reproduce that
//! structure:
//!
//! 1. local trust `r_ij` = mean value of `i`'s reports about `j`;
//! 2. global reputation `v` = stationary vector of the row-normalized
//!    local-trust matrix (random walk), computed by power iteration;
//! 3. the top-`m` nodes by `v` become power nodes; the walk re-runs with
//!    a teleport that lands on power nodes with probability `theta`,
//!    boosting the influence of their (presumably reliable) opinions.
//!
//! Anonymized reports (no rater id) fall into a per-ratee pool blended in
//! the same way as [`crate::eigentrust`].
//!
//! **Performance.** Like EigenTrust, the local-trust matrix is a
//! `LocalMatrix` updated in place by `record`; both walk passes run on
//! the shared `WalkMatrix` engine (flat normalized matrix rebuilt once
//! per refresh, resident `t`/`next` ping-pong buffers), so a refresh
//! performs no steady-state allocation and accumulates floats in a
//! deterministic (rater, ratee) order.

use crate::gathering::ReportView;
use crate::local_matrix::{LocalMatrix, UpsertMemo};
use crate::mechanism::{MechanismKind, ReputationMechanism};
use crate::walk::WalkMatrix;
use tsn_simnet::NodeId;

/// PowerTrust parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrustConfig {
    /// Number of power nodes (the paper's `m`); clamped to the population.
    pub power_nodes: usize,
    /// Teleport probability toward power nodes in the second pass.
    pub theta: f64,
    /// Convergence threshold (L1).
    pub epsilon: f64,
    /// Iteration cap per pass.
    pub max_iterations: usize,
}

impl Default for PowerTrustConfig {
    fn default() -> Self {
        PowerTrustConfig {
            power_nodes: 5,
            theta: 0.15,
            epsilon: 1e-9,
            max_iterations: 200,
        }
    }
}

impl PowerTrustConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.power_nodes == 0 {
            return Err("power_nodes must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err("theta must be in [0,1]".into());
        }
        if self.epsilon <= 0.0 {
            return Err("epsilon must be positive".into());
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be positive".into());
        }
        Ok(())
    }
}

/// One (rater, ratee) cell: sum of report values and their count; the
/// mean is the paper's local trust `r_ij`.
#[derive(Debug, Clone, Copy, Default)]
struct PtCell {
    sum: f64,
    count: u64,
}

impl PtCell {
    /// The local-trust mean, or 0 when no reports arrived.
    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The PowerTrust mechanism.
#[derive(Debug, Clone)]
pub struct PowerTrust {
    config: PowerTrustConfig,
    n: usize,
    /// Sparse local trust, updated in place by `record`.
    local: LocalMatrix<PtCell>,
    anon: Vec<(f64, u64)>,
    identified_reports: u64,
    anonymous_reports: u64,
    global: Vec<f64>,
    /// Cached walk-weighted opinion per node: (weighted value sum, weight).
    opinion: Vec<(f64, f64)>,
    power_set: Vec<NodeId>,
    dirty: bool,
    last_iterations: usize,
    /// The shared power-iteration engine (both passes run on the same
    /// rebuilt matrix), plus the teleport vector and election order
    /// scratch.
    walk: WalkMatrix,
    teleport: Vec<f64>,
    order: Vec<usize>,
    /// Flat (rater, ratee, local-trust mean) image of the rated cells,
    /// captured during the walk rebuild for the opinion pass.
    opinion_src: Vec<(u32, u32, f64)>,
}

impl PowerTrust {
    /// Creates an instance for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(n: usize, config: PowerTrustConfig) -> Self {
        if let Err(e) = config.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a config that validate() rejects; fallible callers validate first")
            panic!("invalid PowerTrust config: {e}");
        }
        PowerTrust {
            config,
            n,
            local: LocalMatrix::new(n),
            anon: vec![(0.0, 0); n],
            identified_reports: 0,
            anonymous_reports: 0,
            global: vec![1.0 / n.max(1) as f64; n],
            opinion: vec![(0.0, 0.0); n],
            power_set: Vec::new(),
            dirty: true,
            last_iterations: 0,
            walk: WalkMatrix::default(),
            teleport: Vec::new(),
            order: Vec::new(),
            opinion_src: Vec::new(),
        }
    }

    /// The power nodes elected by the latest refresh.
    pub fn power_nodes(&mut self) -> &[NodeId] {
        if self.dirty {
            self.recompute();
        }
        &self.power_set
    }

    /// Iterations used by the most recent refresh (both passes).
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    fn recompute(&mut self) {
        if self.n == 0 {
            self.dirty = false;
            self.last_iterations = 0;
            return;
        }
        let n = self.n;
        // Row-normalize the positive local-trust means into the walk
        // engine; both passes share the rebuilt matrix, and the same
        // traversal flattens each rated cell's mean for the opinion pass.
        let opinion_src = &mut self.opinion_src;
        opinion_src.clear();
        self.walk
            .rebuild(n, &self.local, PtCell::mean, |i, j, cell| {
                if cell.count > 0 {
                    opinion_src.push((i, j, cell.sum / cell.count as f64));
                }
            });
        // Pass 1: plain random walk elects power nodes.
        self.teleport.clear();
        self.teleport.resize(n, 1.0 / n as f64);
        let it1 = self.walk.stationary(
            &self.teleport,
            self.config.theta,
            self.config.epsilon,
            self.config.max_iterations,
        );
        let v1 = self.walk.solution();
        self.order.clear();
        self.order.extend(0..n);
        self.order.sort_by(|&a, &b| {
            v1[b]
                .partial_cmp(&v1[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let m = self.config.power_nodes.min(n);
        self.power_set.clear();
        self.power_set
            .extend(self.order[..m].iter().map(|&i| NodeId::from_index(i)));
        // Pass 2: teleport lands on power nodes, boosting their influence.
        self.teleport.clear();
        self.teleport.resize(n, 0.0);
        for p in &self.power_set {
            self.teleport[p.index()] = 1.0 / m as f64;
        }
        let it2 = self.walk.stationary(
            &self.teleport,
            self.config.theta,
            self.config.epsilon,
            self.config.max_iterations,
        );
        self.global.clear();
        self.global.extend_from_slice(self.walk.solution());
        // Cache the walk-weighted opinion aggregation: power nodes carry
        // the most weight when scoring others (the LRW aggregation).
        self.opinion.clear();
        self.opinion.resize(n, (0.0, 0.0));
        for &(i, j, mean) in &self.opinion_src {
            let w = self.global[i as usize].max(1e-6);
            let slot = &mut self.opinion[j as usize];
            slot.0 += w * mean;
            slot.1 += w;
        }
        self.dirty = false;
        self.last_iterations = it1 + it2;
    }

    fn blend_weight(&self) -> f64 {
        let total = self.identified_reports + self.anonymous_reports;
        if total == 0 {
            1.0
        } else {
            self.identified_reports as f64 / total as f64
        }
    }

    fn record_memo(&mut self, report: &ReportView, memo: &mut UpsertMemo) {
        let ratee = report.ratee.0;
        debug_assert!((ratee as usize) < self.n, "ratee out of range");
        match report.rater {
            Some(rater) if rater != report.ratee => {
                let cell = self.local.upsert_memo(rater.0, ratee, memo);
                cell.sum += report.value();
                cell.count += 1;
                self.identified_reports += 1;
            }
            Some(_) => {}
            None => {
                let entry = &mut self.anon[ratee as usize];
                entry.0 += report.value();
                entry.1 += 1;
                self.anonymous_reports += 1;
            }
        }
        self.dirty = true;
    }
}

impl ReputationMechanism for PowerTrust {
    fn kind(&self) -> MechanismKind {
        MechanismKind::PowerTrust
    }

    fn resize(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
            self.local.resize(n);
            self.anon.resize(n, (0.0, 0));
            self.opinion.resize(n, (0.0, 0.0));
            self.global = vec![1.0 / n as f64; n];
            self.dirty = true;
        }
    }

    fn record(&mut self, report: &ReportView) {
        self.record_memo(report, &mut UpsertMemo::default());
    }

    fn record_batch(&mut self, reports: &[ReportView]) {
        // See EigenTrust::record_batch: one memo across the batch, same
        // per-cell add order as looped `record`, bit-identical scores.
        let mut memo = UpsertMemo::default();
        for report in reports {
            self.record_memo(report, &mut memo);
        }
    }

    fn refresh(&mut self) -> usize {
        self.recompute();
        self.last_iterations
    }

    fn score(&self, node: NodeId) -> f64 {
        if node.index() >= self.n {
            return 0.5;
        }
        let (weighted, weight) = self.opinion[node.index()];
        let identified = if weight > 0.0 { weighted / weight } else { 0.5 };
        let w = self.blend_weight();
        let (sum, count) = self.anon[node.index()];
        let anon_mean = if count > 0 { sum / count as f64 } else { 0.5 };
        w * identified + (1.0 - w) * anon_mean
    }

    fn len(&self) -> usize {
        self.n
    }

    fn overhead_per_report(&self) -> usize {
        // Report to score manager + LRW lookahead exchange.
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gathering::{DisclosurePolicy, FeedbackReport};
    use crate::mechanism::InteractionOutcome;
    use tsn_simnet::{SimRng, SimTime};

    fn feed(m: &mut PowerTrust, rater: u32, ratee: u32, good: bool) {
        let report = FeedbackReport {
            rater: NodeId(rater),
            ratee: NodeId(ratee),
            outcome: if good {
                InteractionOutcome::Success { quality: 1.0 }
            } else {
                InteractionOutcome::Failure
            },
            topic: None,
            at: SimTime::ZERO,
        };
        m.record(&DisclosurePolicy::full().view(&report));
    }

    fn star_population(m: &mut PowerTrust, n: u32, good: &[u32]) {
        for r in 0..n {
            for e in 0..n {
                if r != e {
                    feed(m, r, e, good.contains(&e));
                }
            }
        }
    }

    #[test]
    fn good_nodes_score_higher() {
        let mut m = PowerTrust::new(
            6,
            PowerTrustConfig {
                power_nodes: 2,
                ..Default::default()
            },
        );
        star_population(&mut m, 6, &[0, 1]);
        m.refresh();
        for good in [0u32, 1] {
            for bad in [2u32, 3, 4, 5] {
                assert!(
                    m.score(NodeId(good)) > m.score(NodeId(bad)),
                    "good {good} must outrank bad {bad}"
                );
            }
        }
    }

    #[test]
    fn power_nodes_are_the_top_scorers() {
        let mut m = PowerTrust::new(
            6,
            PowerTrustConfig {
                power_nodes: 2,
                ..Default::default()
            },
        );
        star_population(&mut m, 6, &[0, 1]);
        m.refresh();
        let powers: Vec<u32> = m.power_nodes().iter().map(|p| p.0).collect();
        assert_eq!(powers.len(), 2);
        assert!(
            powers.contains(&0) && powers.contains(&1),
            "power nodes {powers:?}"
        );
    }

    #[test]
    fn power_node_count_clamps_to_population() {
        let mut m = PowerTrust::new(
            3,
            PowerTrustConfig {
                power_nodes: 10,
                ..Default::default()
            },
        );
        feed(&mut m, 0, 1, true);
        m.refresh();
        assert_eq!(m.power_nodes().len(), 3);
    }

    #[test]
    fn anonymous_pool_still_separates() {
        let mut m = PowerTrust::new(3, PowerTrustConfig::default());
        let anon = DisclosurePolicy::minimal();
        for _ in 0..10 {
            let good = FeedbackReport {
                rater: NodeId(0),
                ratee: NodeId(1),
                outcome: InteractionOutcome::Success { quality: 1.0 },
                topic: None,
                at: SimTime::ZERO,
            };
            let bad = FeedbackReport {
                ratee: NodeId(2),
                outcome: InteractionOutcome::Failure,
                ..good
            };
            m.record(&anon.view(&good));
            m.record(&anon.view(&bad));
        }
        m.refresh();
        assert!(m.score(NodeId(1)) > m.score(NodeId(2)));
    }

    #[test]
    fn refresh_counts_both_passes() {
        let mut m = PowerTrust::new(4, PowerTrustConfig::default());
        feed(&mut m, 0, 1, true);
        let iters = m.refresh();
        assert!(iters >= 2, "two walk passes, got {iters}");
    }

    #[test]
    fn self_reports_ignored() {
        let mut m = PowerTrust::new(3, PowerTrustConfig::default());
        for _ in 0..5 {
            feed(&mut m, 1, 1, true);
        }
        m.refresh();
        let scores: Vec<f64> = (0..3).map(|i| m.score(NodeId(i))).collect();
        assert!((scores[0] - scores[1]).abs() < 1e-9, "{scores:?}");
    }

    #[test]
    fn config_validation() {
        assert!(PowerTrustConfig {
            power_nodes: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PowerTrustConfig {
            theta: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PowerTrustConfig::default().validate().is_ok());
    }

    #[test]
    fn deterministic_given_same_reports() {
        let mut a = PowerTrust::new(5, PowerTrustConfig::default());
        let mut b = PowerTrust::new(5, PowerTrustConfig::default());
        for m in [&mut a, &mut b] {
            star_population(m, 5, &[0]);
            m.refresh();
        }
        for i in 0..5 {
            assert_eq!(a.score(NodeId(i)), b.score(NodeId(i)));
        }
    }

    #[test]
    fn incremental_refreshes_match_from_scratch() {
        // In-place row maintenance and resident walk buffers must carry
        // no state between refreshes: an interleaved record/refresh
        // history ends bit-identical to one batch ingest + single refresh.
        let mut incremental = PowerTrust::new(15, PowerTrustConfig::default());
        let mut rng = SimRng::seed_from_u64(23);
        let mut log: Vec<(u32, u32, bool)> = Vec::new();
        for step in 0..300 {
            let rater = rng.gen_range(0..15);
            let mut ratee = rng.gen_range(0..15);
            if ratee == rater {
                ratee = (ratee + 1) % 15;
            }
            let good = rng.gen_bool(0.7);
            log.push((rater, ratee, good));
            feed(&mut incremental, rater, ratee, good);
            if step % 41 == 0 {
                incremental.refresh();
            }
        }
        incremental.refresh();

        let mut scratch = PowerTrust::new(15, PowerTrustConfig::default());
        for &(rater, ratee, good) in &log {
            feed(&mut scratch, rater, ratee, good);
        }
        scratch.refresh();

        assert_eq!(incremental.power_nodes(), scratch.power_nodes());
        for i in 0..15 {
            assert_eq!(
                incremental.score(NodeId(i)).to_bits(),
                scratch.score(NodeId(i)).to_bits(),
                "node {i}"
            );
        }
    }
}
