//! Adversary models — the behaviour vocabulary of Marti & Garcia-Molina's
//! taxonomy (paper ref \[15\]) used across every experiment.
//!
//! A [`Population`] assigns each node a [`BehaviorClass`] and a
//! ground-truth service quality; it answers the two questions every
//! reputation experiment asks:
//!
//! * what *actually happens* when a consumer interacts with a provider
//!   ([`Population::interact`]);
//! * what the rater *reports* about it ([`Population::feedback`]),
//!   including lies and collusion.

use crate::gathering::FeedbackReport;
use crate::mechanism::InteractionOutcome;
use tsn_simnet::{NodeId, SimRng, SimTime};

/// How a node behaves as a provider and as a rater.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BehaviorClass {
    /// Serves well; reports truthfully.
    Honest,
    /// Serves badly; lies in feedback (inverts outcomes) and praises
    /// fellow malicious nodes.
    Malicious,
    /// Free-rider: often refuses service, but reports truthfully.
    Selfish,
    /// Behaves honestly for its first `switch_after` interactions as a
    /// provider, then turns malicious (the classic traitor / milker).
    Traitor {
        /// Interactions served honestly before the betrayal.
        switch_after: u64,
    },
    /// Malicious node that periodically re-enters under a fresh identity
    /// (the identity churn itself is driven by `tsn-simnet`'s churn).
    Whitewasher,
    /// Member of collusion ring `ring`: serves outsiders badly, praises
    /// ring members unconditionally, badmouths outsiders.
    Colluder {
        /// Ring identifier; members of the same ring collude.
        ring: u16,
    },
}

impl BehaviorClass {
    /// Whether the node's *service* is adversarial after `served`
    /// interactions as provider — the interaction-count trigger only.
    ///
    /// A stateless class cannot see the clock, so this does **not**
    /// apply the time-based traitor deadline
    /// (`PopulationConfig::traitor_switch_deadline`). Whenever a
    /// [`Population`] is available, ask [`Population::is_adversarial`]
    /// instead — judging a traitor by served count alone is exactly the
    /// stuck-traitor bug (never selected ⇒ never turns).
    pub fn is_adversarial_provider(self, served: u64) -> bool {
        match self {
            BehaviorClass::Honest | BehaviorClass::Selfish => false,
            BehaviorClass::Malicious
            | BehaviorClass::Whitewasher
            | BehaviorClass::Colluder { .. } => true,
            BehaviorClass::Traitor { switch_after } => served >= switch_after,
        }
    }

    /// Whether the node lies when rating, by the interaction-count
    /// trigger only (see [`BehaviorClass::is_adversarial_provider`] for
    /// the caveat: [`Population::is_adversarial`] additionally applies
    /// the time-based traitor deadline and is what the production
    /// feedback path uses).
    pub fn lies_in_feedback(self, served: u64) -> bool {
        self.is_adversarial_provider(served)
    }

    /// Short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            BehaviorClass::Honest => "honest",
            BehaviorClass::Malicious => "malicious",
            BehaviorClass::Selfish => "selfish",
            BehaviorClass::Traitor { .. } => "traitor",
            BehaviorClass::Whitewasher => "whitewasher",
            BehaviorClass::Colluder { .. } => "colluder",
        }
    }
}

/// Mix of behaviour classes for building a [`Population`]. Fractions must
/// sum to at most 1; the remainder is honest.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Fraction of plainly malicious nodes.
    pub malicious: f64,
    /// Fraction of selfish (free-riding) nodes.
    pub selfish: f64,
    /// Fraction of traitors.
    pub traitor: f64,
    /// Interactions a traitor serves honestly before switching.
    pub traitor_switch_after: u64,
    /// Wall-clock betrayal deadline: a traitor also turns once the
    /// population clock (see [`Population::advance_clock`]) reaches this
    /// time, even if it was never selected as a provider. Without it, a
    /// traitor that no consumer happens to pick keeps serving — and
    /// rating — honestly forever, which silently understates the threat
    /// in every sweep. `None` disables the time trigger (interaction
    /// count only).
    pub traitor_switch_deadline: Option<SimTime>,
    /// Fraction of whitewashers.
    pub whitewasher: f64,
    /// Fraction of colluders (split into rings of `ring_size`).
    pub colluder: f64,
    /// Colluder ring size.
    pub ring_size: usize,
    /// Mean service quality of honest providers.
    pub honest_quality: f64,
    /// Success probability of adversarial providers.
    pub adversarial_quality: f64,
    /// Probability a selfish node refuses service.
    pub selfish_refusal: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            malicious: 0.0,
            selfish: 0.0,
            traitor: 0.0,
            traitor_switch_after: 20,
            traitor_switch_deadline: None,
            whitewasher: 0.0,
            colluder: 0.0,
            ring_size: 5,
            honest_quality: 0.9,
            adversarial_quality: 0.1,
            selfish_refusal: 0.6,
        }
    }
}

impl PopulationConfig {
    /// A population with only a malicious fraction — the standard
    /// EigenTrust-style threat sweep.
    pub fn with_malicious(fraction: f64) -> Self {
        PopulationConfig {
            malicious: fraction,
            ..Default::default()
        }
    }

    /// Validates fractions and qualities.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let fractions = [
            self.malicious,
            self.selfish,
            self.traitor,
            self.whitewasher,
            self.colluder,
        ];
        for f in fractions {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fraction {f} not in [0,1]"));
            }
        }
        let total: f64 = fractions.iter().sum();
        if total > 1.0 + 1e-9 {
            return Err(format!("fractions sum to {total} > 1"));
        }
        for q in [
            self.honest_quality,
            self.adversarial_quality,
            self.selfish_refusal,
        ] {
            if !(0.0..=1.0).contains(&q) {
                return Err(format!("probability {q} not in [0,1]"));
            }
        }
        if self.ring_size == 0 {
            return Err("ring_size must be positive".into());
        }
        Ok(())
    }

    /// The total adversarial fraction (nodes that serve badly at some
    /// point).
    pub fn adversarial_fraction(&self) -> f64 {
        self.malicious + self.traitor + self.whitewasher + self.colluder
    }
}

/// A concrete node population: classes, ground-truth qualities, counters.
///
/// ```
/// use tsn_reputation::{Population, PopulationConfig};
/// use tsn_simnet::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(7);
/// let pop = Population::new(10, PopulationConfig::with_malicious(0.3), &mut rng);
/// assert_eq!(pop.adversarial_nodes().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    classes: Vec<BehaviorClass>,
    /// Ground-truth success quality of each node *as provider today*.
    base_quality: Vec<f64>,
    /// Interactions each node has served as provider.
    served: Vec<u64>,
    /// Population clock, advanced by the experiment loop; drives the
    /// time-based traitor betrayal trigger.
    now: SimTime,
    config: PopulationConfig,
}

impl Population {
    /// Builds a population of `n` nodes with deterministically shuffled
    /// class assignment.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(n: usize, config: PopulationConfig, rng: &mut SimRng) -> Self {
        if let Err(e) = config.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a config that validate() rejects; fallible callers validate first")
            panic!("invalid population config: {e}");
        }
        let count = |f: f64| (f * n as f64).round() as usize;
        let mut classes = Vec::with_capacity(n);
        let n_colluders = count(config.colluder);
        for i in 0..n_colluders {
            classes.push(BehaviorClass::Colluder {
                ring: (i / config.ring_size) as u16,
            });
        }
        for _ in 0..count(config.malicious) {
            classes.push(BehaviorClass::Malicious);
        }
        for _ in 0..count(config.selfish) {
            classes.push(BehaviorClass::Selfish);
        }
        for _ in 0..count(config.traitor) {
            classes.push(BehaviorClass::Traitor {
                switch_after: config.traitor_switch_after,
            });
        }
        for _ in 0..count(config.whitewasher) {
            classes.push(BehaviorClass::Whitewasher);
        }
        while classes.len() < n {
            classes.push(BehaviorClass::Honest);
        }
        classes.truncate(n);
        rng.shuffle(&mut classes);
        let base_quality = classes
            .iter()
            .map(|c| match c {
                BehaviorClass::Honest | BehaviorClass::Traitor { .. } => {
                    // Per-node quality jitter around the honest mean.
                    (config.honest_quality + rng.gen_normal(0.0, 0.05)).clamp(0.0, 1.0)
                }
                BehaviorClass::Selfish => config.honest_quality * (1.0 - config.selfish_refusal),
                _ => config.adversarial_quality,
            })
            .collect();
        Population {
            classes,
            base_quality,
            served: vec![0; n],
            now: SimTime::ZERO,
            config,
        }
    }

    /// Advances the population clock (monotonically; earlier times are
    /// ignored). Experiment loops call this once per round so the
    /// time-based traitor trigger fires even for traitors that are never
    /// selected as providers.
    pub fn advance_clock(&mut self, now: SimTime) {
        if now > self.now {
            self.now = now;
        }
    }

    /// Whether the traitor in slot `i` has turned — by having served
    /// enough interactions, or by the wall-clock deadline passing.
    fn traitor_turned(&self, i: usize, switch_after: u64) -> bool {
        self.served[i] >= switch_after
            || self
                .config
                .traitor_switch_deadline
                .is_some_and(|deadline| self.now >= deadline)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Behaviour class of `node`.
    pub fn class(&self, node: NodeId) -> BehaviorClass {
        self.classes[node.index()]
    }

    /// The configuration used to build this population.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Current ground-truth quality of `node` as provider: the probability
    /// an interaction with it succeeds *right now* (traitors degrade after
    /// their switch point).
    pub fn true_quality(&self, node: NodeId) -> f64 {
        let i = node.index();
        match self.classes[i] {
            BehaviorClass::Traitor { switch_after } if self.traitor_turned(i, switch_after) => {
                self.config.adversarial_quality
            }
            _ => self.base_quality[i],
        }
    }

    /// Whether `node` is adversarial *as of now*.
    pub fn is_adversarial(&self, node: NodeId) -> bool {
        let i = node.index();
        match self.classes[i] {
            BehaviorClass::Traitor { switch_after } => self.traitor_turned(i, switch_after),
            class => class.is_adversarial_provider(self.served[i]),
        }
    }

    /// Simulates one interaction where `provider` serves `consumer`.
    pub fn interact(
        &mut self,
        provider: NodeId,
        _consumer: NodeId,
        rng: &mut SimRng,
    ) -> InteractionOutcome {
        let outcome = self.interact_frozen(provider, rng);
        self.served[provider.index()] += 1;
        outcome
    }

    /// [`Population::interact`] against *frozen* state: the outcome draw
    /// is identical draw-for-draw, but the provider's served counter is
    /// not advanced. The sharded scenario engine interacts against a
    /// round-start snapshot and merges the counters afterwards with
    /// [`Population::note_served`], so outcomes cannot depend on which
    /// shard executes first.
    pub fn interact_frozen(&self, provider: NodeId, rng: &mut SimRng) -> InteractionOutcome {
        let q = self.true_quality(provider);
        if rng.gen_bool(q) {
            // Experienced quality jitters *below* the ceiling: the true
            // quality is the best the provider delivers, so the draw is
            // one-sided into [0, q]. (A symmetric draw clamped to
            // [0.1, 1.0] used to exceed q half the time and floor bad
            // providers at 0.1 — adversaries with true quality 0.1 had a
            // reported mean *above* their ceiling, skewing every threat
            // sweep.)
            let quality = (q - rng.gen_normal(0.0, 0.05).abs()).max(0.0);
            InteractionOutcome::Success { quality }
        } else {
            InteractionOutcome::Failure
        }
    }

    /// Credits `provider` with `count` served interactions. The merge
    /// half of [`Population::interact_frozen`].
    pub fn note_served(&mut self, provider: NodeId, count: u64) {
        self.served[provider.index()] += count;
    }

    /// Produces the feedback `rater` files about `ratee` after `actual`
    /// happened — applying the rater's lying strategy.
    pub fn feedback(
        &self,
        rater: NodeId,
        ratee: NodeId,
        actual: InteractionOutcome,
        at: SimTime,
        topic: Option<usize>,
    ) -> FeedbackReport {
        let rater_class = self.classes[rater.index()];
        let reported = match rater_class {
            BehaviorClass::Colluder { ring } => {
                match self.classes[ratee.index()] {
                    // Unconditional praise inside the ring.
                    BehaviorClass::Colluder { ring: r2 } if r2 == ring => {
                        InteractionOutcome::Success { quality: 1.0 }
                    }
                    // Badmouth everyone else.
                    _ => InteractionOutcome::Failure,
                }
            }
            // Traitors lie once turned — by served count *or* by the
            // clock (a traitor that is never selected as provider must
            // still betray; `lies_in_feedback` alone would keep it
            // truthful forever).
            _ if self.is_adversarial(rater) => {
                // Invert the truth.
                match actual {
                    InteractionOutcome::Success { .. } => InteractionOutcome::Failure,
                    InteractionOutcome::Failure => InteractionOutcome::Success { quality: 1.0 },
                }
            }
            _ => actual,
        };
        FeedbackReport {
            rater,
            ratee,
            outcome: reported,
            topic,
            at,
        }
    }

    /// Per-node ground-truth qualities (the "reality" a mechanism's
    /// consistency is judged against).
    pub fn true_qualities(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.true_quality(NodeId::from_index(i)))
            .collect()
    }

    /// Indices of currently adversarial nodes.
    pub fn adversarial_nodes(&self) -> Vec<NodeId> {
        (0..self.len())
            .map(NodeId::from_index)
            .filter(|&n| self.is_adversarial(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_fractions() {
        let config = PopulationConfig {
            malicious: 0.2,
            selfish: 0.1,
            colluder: 0.1,
            ring_size: 5,
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(0);
        let pop = Population::new(100, config, &mut rng);
        let count = |label: &str| {
            (0..100)
                .filter(|&i| pop.class(NodeId(i)).label() == label)
                .count()
        };
        assert_eq!(count("malicious"), 20);
        assert_eq!(count("selfish"), 10);
        assert_eq!(count("colluder"), 10);
        assert_eq!(count("honest"), 60);
    }

    #[test]
    fn honest_nodes_mostly_succeed_malicious_mostly_fail() {
        let mut rng = SimRng::seed_from_u64(1);
        let pop0 = Population::new(10, PopulationConfig::with_malicious(0.5), &mut rng);
        let mut pop = pop0;
        let mut honest_ok = 0;
        let mut bad_ok = 0;
        let honest: Vec<NodeId> = (0..10)
            .map(NodeId::from_index)
            .filter(|&n| !pop.is_adversarial(n))
            .collect();
        let bad: Vec<NodeId> = (0..10)
            .map(NodeId::from_index)
            .filter(|&n| pop.is_adversarial(n))
            .collect();
        for _ in 0..200 {
            if pop.interact(honest[0], NodeId(9), &mut rng).is_success() {
                honest_ok += 1;
            }
            if pop.interact(bad[0], NodeId(9), &mut rng).is_success() {
                bad_ok += 1;
            }
        }
        assert!(honest_ok > 150, "honest ok {honest_ok}");
        assert!(bad_ok < 50, "bad ok {bad_ok}");
    }

    #[test]
    fn traitor_switches_after_threshold() {
        let config = PopulationConfig {
            traitor: 1.0,
            traitor_switch_after: 5,
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(2);
        let mut pop = Population::new(1, config, &mut rng);
        let t = NodeId(0);
        assert!(!pop.is_adversarial(t));
        let q_before = pop.true_quality(t);
        for _ in 0..5 {
            pop.interact(t, t, &mut rng);
        }
        assert!(pop.is_adversarial(t));
        assert!(pop.true_quality(t) < q_before);
    }

    #[test]
    fn never_selected_traitor_turns_by_deadline() {
        // The stuck-traitor regression: a traitor that is never selected
        // as provider (served stays 0) must still betray once the clock
        // passes the deadline — both in service quality and in feedback.
        let config = PopulationConfig {
            traitor: 1.0,
            traitor_switch_after: 5,
            traitor_switch_deadline: Some(SimTime::from_secs(100)),
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(11);
        let mut pop = Population::new(2, config, &mut rng);
        let t = NodeId(0);
        let actual = InteractionOutcome::Success { quality: 1.0 };
        assert!(!pop.is_adversarial(t), "honest before the deadline");
        assert_eq!(
            pop.feedback(t, NodeId(1), actual, SimTime::ZERO, None)
                .outcome,
            actual,
            "truthful before the deadline"
        );
        pop.advance_clock(SimTime::from_secs(100));
        assert!(pop.is_adversarial(t), "turned with served == 0");
        assert!(pop.true_quality(t) <= 0.2, "service quality collapses");
        assert_eq!(
            pop.feedback(t, NodeId(1), actual, SimTime::ZERO, None)
                .outcome,
            InteractionOutcome::Failure,
            "a turned traitor lies even though it never served"
        );
        // The clock is monotone: a stale timestamp cannot un-turn it.
        pop.advance_clock(SimTime::ZERO);
        assert!(pop.is_adversarial(t));
    }

    #[test]
    fn success_jitter_stays_below_true_quality() {
        // The jitter contract: experienced quality never exceeds the
        // provider's true quality ceiling and never goes negative — in
        // particular an adversarial provider (ceiling 0.1) must not
        // report a mean quality above 0.1.
        let mut rng = SimRng::seed_from_u64(12);
        let mut pop = Population::new(4, PopulationConfig::with_malicious(0.5), &mut rng);
        for i in 0..4u32 {
            let node = NodeId(i);
            let ceiling = pop.true_quality(node);
            for _ in 0..300 {
                if let InteractionOutcome::Success { quality } =
                    pop.interact(node, NodeId(0), &mut rng)
                {
                    assert!(
                        (0.0..=ceiling).contains(&quality),
                        "quality {quality} outside [0, {ceiling}]"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_interact_matches_interact_draw_for_draw() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut pop = Population::new(6, PopulationConfig::with_malicious(0.3), &mut rng);
        let frozen = pop.clone();
        let mut rng_a = SimRng::seed_from_u64(99);
        let mut rng_b = SimRng::seed_from_u64(99);
        for i in 0..6u32 {
            let a = pop.interact(NodeId(i), NodeId(0), &mut rng_a);
            let b = frozen.interact_frozen(NodeId(i), &mut rng_b);
            assert_eq!(a, b);
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "same draw count");
        }
        // Merging the counters catches the frozen copy up.
        let mut merged = frozen;
        for i in 0..6u32 {
            merged.note_served(NodeId(i), 1);
        }
        for i in 0..6 {
            assert_eq!(merged.served[i], pop.served[i]);
        }
    }

    #[test]
    fn malicious_raters_invert_feedback() {
        let mut rng = SimRng::seed_from_u64(3);
        let pop = Population::new(2, PopulationConfig::with_malicious(0.5), &mut rng);
        let (liar, honest): (NodeId, NodeId) = if pop.is_adversarial(NodeId(0)) {
            (NodeId(0), NodeId(1))
        } else {
            (NodeId(1), NodeId(0))
        };
        let actual = InteractionOutcome::Success { quality: 1.0 };
        let lie = pop.feedback(liar, honest, actual, SimTime::ZERO, None);
        assert_eq!(lie.outcome, InteractionOutcome::Failure);
        let truth = pop.feedback(honest, liar, actual, SimTime::ZERO, None);
        assert_eq!(truth.outcome, actual);
    }

    #[test]
    fn colluders_praise_ring_and_badmouth_outside() {
        let config = PopulationConfig {
            colluder: 0.5,
            ring_size: 2,
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(4);
        let pop = Population::new(8, config, &mut rng);
        let colluders: Vec<NodeId> = (0..8)
            .map(NodeId::from_index)
            .filter(|&n| matches!(pop.class(n), BehaviorClass::Colluder { .. }))
            .collect();
        let honest = (0..8)
            .map(NodeId::from_index)
            .find(|&n| matches!(pop.class(n), BehaviorClass::Honest))
            .unwrap();
        // Find two colluders in the same ring.
        let (a, b) = colluders
            .iter()
            .flat_map(|&a| colluders.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| {
                a != b
                    && matches!(
                        (pop.class(a), pop.class(b)),
                        (BehaviorClass::Colluder { ring: r1 }, BehaviorClass::Colluder { ring: r2 }) if r1 == r2
                    )
            })
            .expect("a ring of size 2 exists");
        let fail = InteractionOutcome::Failure;
        let praise = pop.feedback(a, b, fail, SimTime::ZERO, None);
        assert!(
            praise.outcome.is_success(),
            "ring members praise each other"
        );
        let smear = pop.feedback(
            a,
            honest,
            InteractionOutcome::Success { quality: 1.0 },
            SimTime::ZERO,
            None,
        );
        assert_eq!(
            smear.outcome,
            InteractionOutcome::Failure,
            "outsiders get badmouthed"
        );
    }

    #[test]
    fn selfish_nodes_report_truthfully_but_serve_poorly() {
        let config = PopulationConfig {
            selfish: 1.0,
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(5);
        let pop = Population::new(2, config, &mut rng);
        let actual = InteractionOutcome::Success { quality: 0.9 };
        let fb = pop.feedback(NodeId(0), NodeId(1), actual, SimTime::ZERO, None);
        assert_eq!(fb.outcome, actual);
        assert!(pop.true_quality(NodeId(0)) < 0.5);
        assert!(
            !pop.is_adversarial(NodeId(0)),
            "selfish ≠ adversarial provider"
        );
    }

    #[test]
    fn validation_rejects_oversubscription() {
        let config = PopulationConfig {
            malicious: 0.7,
            selfish: 0.5,
            ..Default::default()
        };
        assert!(config.validate().is_err());
        assert!(PopulationConfig::default().validate().is_ok());
        assert_eq!(
            PopulationConfig::with_malicious(0.3).adversarial_fraction(),
            0.3
        );
    }

    #[test]
    fn true_qualities_and_adversarial_nodes_consistent() {
        let mut rng = SimRng::seed_from_u64(6);
        let pop = Population::new(50, PopulationConfig::with_malicious(0.4), &mut rng);
        let qualities = pop.true_qualities();
        for n in pop.adversarial_nodes() {
            assert!(qualities[n.index()] <= 0.2);
        }
        assert_eq!(pop.adversarial_nodes().len(), 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = SimRng::seed_from_u64(7);
            Population::new(30, PopulationConfig::with_malicious(0.3), &mut rng).true_qualities()
        };
        assert_eq!(build(), build());
    }
}
