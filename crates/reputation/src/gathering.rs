//! Information gathering — the first block of the Marti–Garcia-Molina
//! taxonomy, and the privacy coupling point.
//!
//! A [`FeedbackReport`] is what the rater *knows*; a [`ReportView`] is what
//! the system *shares*, after the [`DisclosurePolicy`] has stripped or
//! coarsened fields. The paper's Figure 2 turns on exactly this dial:
//! sharing more fields makes mechanisms more powerful and privacy weaker.

use crate::mechanism::InteractionOutcome;
use tsn_simnet::{NodeId, SimTime};

/// A complete, truthful-as-far-as-the-rater-goes feedback record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackReport {
    /// Who experienced the interaction.
    pub rater: NodeId,
    /// Who provided the service.
    pub ratee: NodeId,
    /// What happened.
    pub outcome: InteractionOutcome,
    /// Topic / context of the interaction, if meaningful.
    pub topic: Option<usize>,
    /// When the interaction ended.
    pub at: SimTime,
}

/// The individually shareable fields of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DisclosureField {
    /// The rater's identity (needed for rater-credibility weighting).
    RaterIdentity,
    /// Fine-grained outcome quality (vs. a coarse success bit).
    OutcomeDetail,
    /// Interaction topic/context.
    Topic,
    /// Interaction timestamp.
    Timestamp,
}

impl DisclosureField {
    /// All fields, in sensitivity order (most sensitive first).
    pub const ALL: [DisclosureField; 4] = [
        DisclosureField::RaterIdentity,
        DisclosureField::Topic,
        DisclosureField::Timestamp,
        DisclosureField::OutcomeDetail,
    ];

    /// Relative privacy sensitivity weight of the field (sums to 1 over
    /// `ALL`). Identity dominates: linking feedback to a person is the
    /// canonical privacy breach of reputation systems.
    pub fn sensitivity(self) -> f64 {
        match self {
            DisclosureField::RaterIdentity => 0.5,
            DisclosureField::Topic => 0.25,
            DisclosureField::Timestamp => 0.15,
            DisclosureField::OutcomeDetail => 0.10,
        }
    }
}

/// Which report fields are shared with the reputation system.
///
/// The policy is the paper's "quantity of shared information" knob, with
/// [`DisclosurePolicy::exposure`] as its scalar measure in `[0, 1]`.
///
/// ```
/// use tsn_reputation::DisclosurePolicy;
///
/// let anonymous = DisclosurePolicy::ladder(0);
/// let full = DisclosurePolicy::ladder(4);
/// assert!(anonymous.exposure() < full.exposure());
/// assert!(!anonymous.rater_identity && full.rater_identity);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DisclosurePolicy {
    /// Share the rater identity.
    pub rater_identity: bool,
    /// Share fine-grained outcome quality.
    pub outcome_detail: bool,
    /// Share the topic.
    pub topic: bool,
    /// Share the timestamp.
    pub timestamp: bool,
}

impl DisclosurePolicy {
    /// Everything shared — maximum reputation power, minimum privacy.
    pub fn full() -> Self {
        DisclosurePolicy {
            rater_identity: true,
            outcome_detail: true,
            topic: true,
            timestamp: true,
        }
    }

    /// Nothing but the anonymous success bit — maximum privacy.
    pub fn minimal() -> Self {
        DisclosurePolicy {
            rater_identity: false,
            outcome_detail: false,
            topic: false,
            timestamp: false,
        }
    }

    /// A ladder of policies from minimal (0) to full (4), adding fields in
    /// increasing sensitivity order. `level` is clamped to `0..=4`.
    ///
    /// This is the x-axis of the paper's Figure 2 (right): each step
    /// shares strictly more information.
    pub fn ladder(level: usize) -> Self {
        let level = level.min(4);
        DisclosurePolicy {
            outcome_detail: level >= 1,
            timestamp: level >= 2,
            topic: level >= 3,
            rater_identity: level >= 4,
        }
    }

    /// Number of ladder levels (0 through 4).
    pub const LADDER_LEVELS: usize = 5;

    /// Whether a given field is shared.
    pub fn shares(&self, field: DisclosureField) -> bool {
        match field {
            DisclosureField::RaterIdentity => self.rater_identity,
            DisclosureField::OutcomeDetail => self.outcome_detail,
            DisclosureField::Topic => self.topic,
            DisclosureField::Timestamp => self.timestamp,
        }
    }

    /// Scalar exposure in `[0, 1]`: the sensitivity-weighted fraction of
    /// fields shared. 0 = minimal, 1 = full.
    pub fn exposure(&self) -> f64 {
        let sum: f64 = DisclosureField::ALL
            .iter()
            .filter(|&&f| self.shares(f))
            .map(|f| f.sensitivity())
            .sum();
        // An empty float sum is -0.0; keep the exposure's zero unsigned.
        sum + 0.0
    }

    /// Applies the policy to a report, producing the shared view.
    pub fn view(&self, report: &FeedbackReport) -> ReportView {
        ReportView {
            rater: self.rater_identity.then_some(report.rater),
            ratee: report.ratee,
            success: report.outcome.is_success(),
            quality: self.outcome_detail.then(|| report.outcome.value()),
            topic: if self.topic { report.topic } else { None },
            at: self.timestamp.then_some(report.at),
        }
    }
}

impl Default for DisclosurePolicy {
    /// The full policy: classic reputation systems assume full feedback.
    fn default() -> Self {
        DisclosurePolicy::full()
    }
}

/// What the reputation system actually receives.
///
/// Every field except the ratee is optional: mechanisms must cope with
/// whatever the disclosure policy leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportView {
    /// Rater identity, when disclosed.
    pub rater: Option<NodeId>,
    /// The rated node (always known: you cannot score without a subject).
    pub ratee: NodeId,
    /// Coarse outcome: did the interaction succeed?
    pub success: bool,
    /// Fine-grained quality, when disclosed.
    pub quality: Option<f64>,
    /// Topic, when disclosed.
    pub topic: Option<usize>,
    /// Timestamp, when disclosed.
    pub at: Option<SimTime>,
}

impl ReportView {
    /// The best available scalar value of the outcome: the fine-grained
    /// quality when disclosed, else the success bit.
    pub fn value(&self) -> f64 {
        self.quality.unwrap_or(if self.success { 1.0 } else { 0.0 })
    }

    /// Count of populated optional fields (used in tests and exposure
    /// accounting).
    pub fn disclosed_fields(&self) -> usize {
        usize::from(self.rater.is_some())
            + usize::from(self.quality.is_some())
            + usize::from(self.topic.is_some())
            + usize::from(self.at.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FeedbackReport {
        FeedbackReport {
            rater: NodeId(3),
            ratee: NodeId(7),
            outcome: InteractionOutcome::Success { quality: 0.8 },
            topic: Some(2),
            at: SimTime::from_secs(5),
        }
    }

    #[test]
    fn full_policy_shares_everything() {
        let v = DisclosurePolicy::full().view(&report());
        assert_eq!(v.rater, Some(NodeId(3)));
        assert_eq!(v.quality, Some(0.8));
        assert_eq!(v.topic, Some(2));
        assert_eq!(v.at, Some(SimTime::from_secs(5)));
        assert_eq!(v.disclosed_fields(), 4);
        assert!(v.success);
    }

    #[test]
    fn minimal_policy_shares_only_the_bit() {
        let v = DisclosurePolicy::minimal().view(&report());
        assert_eq!(v.rater, None);
        assert_eq!(v.quality, None);
        assert_eq!(v.topic, None);
        assert_eq!(v.at, None);
        assert_eq!(v.disclosed_fields(), 0);
        assert!(v.success);
        assert_eq!(v.ratee, NodeId(7));
    }

    #[test]
    fn view_value_prefers_detail() {
        let v = DisclosurePolicy::full().view(&report());
        assert_eq!(v.value(), 0.8);
        let v = DisclosurePolicy::minimal().view(&report());
        assert_eq!(v.value(), 1.0, "success bit only");
        let mut failed = report();
        failed.outcome = InteractionOutcome::Failure;
        assert_eq!(DisclosurePolicy::minimal().view(&failed).value(), 0.0);
    }

    #[test]
    fn exposure_is_monotone_on_the_ladder() {
        let mut last = -1.0;
        for level in 0..DisclosurePolicy::LADDER_LEVELS {
            let e = DisclosurePolicy::ladder(level).exposure();
            assert!(e > last, "exposure must strictly increase per level");
            last = e;
        }
        assert_eq!(DisclosurePolicy::ladder(0), DisclosurePolicy::minimal());
        assert_eq!(DisclosurePolicy::ladder(4), DisclosurePolicy::full());
        assert_eq!(
            DisclosurePolicy::ladder(99),
            DisclosurePolicy::full(),
            "clamped"
        );
    }

    #[test]
    fn exposure_extremes() {
        assert_eq!(DisclosurePolicy::minimal().exposure(), 0.0);
        assert!((DisclosurePolicy::full().exposure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sensitivities_sum_to_one() {
        let total: f64 = DisclosureField::ALL.iter().map(|f| f.sensitivity()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(DisclosurePolicy::default(), DisclosurePolicy::full());
    }
}
