//! # tsn-reputation — reputation mechanisms for decentralized networks
//!
//! Implements the *reputation* facet of the `tsn` reproduction, structured
//! after the three basic blocks of Marti & Garcia-Molina's taxonomy
//! (the paper's ref \[15\]):
//!
//! 1. **Information gathering** — [`gathering`]: feedback reports, and the
//!    *disclosure policy* deciding which report fields (rater identity,
//!    outcome detail, context, …) are shared. This is the coupling point
//!    with the privacy facet: Figure 2 of the paper varies exactly this.
//! 2. **Scoring and ranking** — [`mechanism`] defines the common
//!    [`ReputationMechanism`] trait; four mechanisms from the paper's
//!    bibliography are implemented from their original descriptions:
//!    [`eigentrust`] (ref \[13\]), [`beta`] (the classic Bayesian baseline),
//!    [`powertrust`] (ref \[24\]) and [`trustme`] (ref \[20\], anonymous
//!    trust-holders). [`anonymous`] wraps any mechanism with
//!    anonymization (refs \[2\], \[4\]).
//! 3. **Response** — [`response`]: partner-selection policies that act on
//!    scores.
//!
//! [`attack`] provides the adversary vocabulary (malicious, selfish,
//! traitor, whitewasher, colluder) and [`accuracy`] measures mechanism
//! *power* — reliability, efficiency, consistency with reality — which is
//! the paper's "Reputation" axis. [`testbed`] runs the standard
//! interaction loop used by experiments and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod anonymous;
pub mod attack;
pub mod beta;
pub mod eigentrust;
pub mod gathering;
mod local_matrix;
pub mod mechanism;
pub mod powertrust;
pub mod response;
pub mod testbed;
pub mod trustme;
mod walk;

pub use accuracy::{MechanismPower, PowerReport};
pub use anonymous::{AnonymizationConfig, Anonymized};
pub use attack::{BehaviorClass, Population, PopulationConfig};
pub use beta::BetaReputation;
pub use eigentrust::{EigenTrust, EigenTrustConfig};
pub use gathering::{DisclosureField, DisclosurePolicy, FeedbackReport, ReportView};
pub use mechanism::{build_mechanism, InteractionOutcome, MechanismKind, ReputationMechanism};
pub use powertrust::{PowerTrust, PowerTrustConfig};
pub use response::{SelectionPolicy, SelectionScratch};
pub use testbed::{Testbed, TestbedConfig, TestbedSummary};
pub use trustme::{TrustMe, TrustMeConfig};
pub use tsn_simnet::NodeId;
