//! The standard interaction loop used by reputation experiments.
//!
//! A [`Testbed`] wires together a social graph, a behaviour
//! [`Population`], a [`ReputationMechanism`] behind a [`DisclosurePolicy`]
//! and a [`SelectionPolicy`], then runs rounds of consumer→provider
//! interactions. It produces both aggregate outcomes (success rates,
//! message counts) and the mechanism's measured [`PowerReport`] — the raw
//! material for the A1/A2 ablations and, via `tsn-core`, for every
//! figure of the paper.

use crate::accuracy::{self, PowerReport};
use crate::anonymous::{AnonymizationConfig, Anonymized};
use crate::attack::{Population, PopulationConfig};
use crate::gathering::DisclosurePolicy;
use crate::mechanism::{build_mechanism, MechanismKind, ReputationMechanism};
use crate::response::SelectionPolicy;
use tsn_graph::{generators, Graph};
use tsn_simnet::{NodeId, SimRng, SimTime};

/// Full testbed configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Population size.
    pub nodes: usize,
    /// Rounds of interactions.
    pub rounds: usize,
    /// Interactions initiated per node per round.
    pub interactions_per_node: usize,
    /// Behaviour mix.
    pub population: PopulationConfig,
    /// Scoring mechanism.
    pub mechanism: MechanismKind,
    /// Which report fields reach the mechanism.
    pub disclosure: DisclosurePolicy,
    /// Extra anonymization layer, if any.
    pub anonymization: Option<AnonymizationConfig>,
    /// Partner selection.
    pub selection: SelectionPolicy,
    /// Rounds between mechanism refreshes.
    pub refresh_every: usize,
    /// Number of pre-trusted seed peers (EigenTrust only): that many
    /// known-honest nodes anchor the teleport vector, exactly as in the
    /// EigenTrust paper's evaluation. Ignored by other mechanisms.
    pub pretrusted: usize,
    /// Watts–Strogatz mean degree of the social graph (even).
    pub graph_degree: usize,
    /// Watts–Strogatz rewiring probability.
    pub graph_beta: f64,
    /// Random seed: `(seed, config)` fully reproduces a run.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            nodes: 100,
            rounds: 30,
            interactions_per_node: 2,
            population: PopulationConfig::default(),
            mechanism: MechanismKind::EigenTrust,
            disclosure: DisclosurePolicy::full(),
            anonymization: None,
            selection: SelectionPolicy::Proportional { sharpness: 2.0 },
            refresh_every: 5,
            pretrusted: 3,
            graph_degree: 8,
            graph_beta: 0.1,
            seed: 42,
        }
    }
}

impl TestbedConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 3 {
            return Err("need at least 3 nodes".into());
        }
        if self.rounds == 0 || self.interactions_per_node == 0 {
            return Err("rounds and interactions_per_node must be positive".into());
        }
        if self.refresh_every == 0 {
            return Err("refresh_every must be positive".into());
        }
        if !self.graph_degree.is_multiple_of(2)
            || self.graph_degree == 0
            || self.graph_degree >= self.nodes
        {
            return Err("graph_degree must be even, positive and < nodes".into());
        }
        self.population.validate()?;
        if let Some(a) = &self.anonymization {
            a.validate()?;
        }
        Ok(())
    }
}

/// Aggregate result of one testbed run.
#[derive(Debug, Clone)]
pub struct TestbedSummary {
    /// Fraction of all interactions that succeeded.
    pub success_rate: f64,
    /// Success rate experienced by honest consumers only — the headline
    /// number of the EigenTrust-style evaluation.
    pub honest_success_rate: f64,
    /// Measured mechanism power.
    pub power: PowerReport,
    /// Total interactions executed.
    pub interactions: u64,
    /// Total protocol messages (interactions + reporting overhead).
    pub messages: u64,
    /// Per-node success fraction as consumer (NaN-free; nodes that never
    /// consumed get 0.5).
    pub per_node_success: Vec<f64>,
    /// Ground-truth qualities at the end of the run.
    pub true_qualities: Vec<f64>,
    /// Refresh iterations accumulated.
    pub refresh_iterations: usize,
}

/// The testbed.
#[derive(Debug)]
pub struct Testbed {
    config: TestbedConfig,
    graph: Graph,
    population: Population,
    mechanism: Box<dyn ReputationMechanism>,
    rng: SimRng,
}

impl Testbed {
    /// Builds the testbed (graph, population, mechanism) from `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid.
    pub fn new(config: TestbedConfig) -> Result<Self, String> {
        config.validate()?;
        let mut rng = SimRng::seed_from_u64(config.seed);
        let mut graph_rng = rng.fork(1);
        let graph = generators::watts_strogatz(
            config.nodes,
            config.graph_degree,
            config.graph_beta,
            &mut graph_rng,
        )
        .map_err(|e| e.to_string())?;
        let mut pop_rng = rng.fork(2);
        let population = Population::new(config.nodes, config.population.clone(), &mut pop_rng);
        let base: Box<dyn ReputationMechanism> =
            if config.mechanism == MechanismKind::EigenTrust && config.pretrusted > 0 {
                // Anchor the teleport vector on known-honest seeds, as the
                // EigenTrust evaluation does.
                let pretrusted: Vec<NodeId> = (0..config.nodes)
                    .map(NodeId::from_index)
                    .filter(|&n| !population.is_adversarial(n))
                    .take(config.pretrusted)
                    .collect();
                Box::new(crate::eigentrust::EigenTrust::new(
                    config.nodes,
                    crate::eigentrust::EigenTrustConfig {
                        pretrusted,
                        ..Default::default()
                    },
                ))
            } else {
                build_mechanism(config.mechanism, config.nodes)
            };
        let mechanism: Box<dyn ReputationMechanism> = match config.anonymization {
            Some(anon) => Box::new(Anonymized::new(base, anon, rng.fork(3))),
            None => base,
        };
        Ok(Testbed {
            config,
            graph,
            population,
            mechanism,
            rng,
        })
    }

    /// The underlying social graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The behaviour population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Runs the full configured number of rounds and summarizes.
    pub fn run(&mut self) -> TestbedSummary {
        let n = self.config.nodes;
        let mut ok = vec![0u64; n];
        let mut tried = vec![0u64; n];
        let mut interactions = 0u64;
        let mut messages = 0u64;
        let mut refresh_iterations = 0usize;
        let mut now = SimTime::ZERO;
        for round in 0..self.config.rounds {
            for consumer_idx in 0..n {
                let consumer = NodeId::from_index(consumer_idx);
                for _ in 0..self.config.interactions_per_node {
                    let candidates = self.graph.neighbors(consumer);
                    let mech = &self.mechanism;
                    let Some(provider) =
                        self.config
                            .selection
                            .select(candidates, |c| mech.score(c), &mut self.rng)
                    else {
                        continue;
                    };
                    let outcome = self.population.interact(provider, consumer, &mut self.rng);
                    interactions += 1;
                    messages += 2; // request + response
                    tried[consumer_idx] += 1;
                    if outcome.is_success() {
                        ok[consumer_idx] += 1;
                    }
                    let report = self
                        .population
                        .feedback(consumer, provider, outcome, now, None);
                    let view = self.config.disclosure.view(&report);
                    self.mechanism.record(&view);
                    messages += self.mechanism.overhead_per_report() as u64;
                }
            }
            if (round + 1) % self.config.refresh_every == 0 {
                refresh_iterations += self.mechanism.refresh();
            }
            now += tsn_simnet::SimDuration::from_secs(60);
        }
        refresh_iterations += self.mechanism.refresh();

        let adversarial: Vec<bool> = (0..n)
            .map(|i| self.population.is_adversarial(NodeId::from_index(i)))
            .collect();
        let true_qualities = self.population.true_qualities();
        let power = accuracy::evaluate(
            self.mechanism.as_ref(),
            &true_qualities,
            &adversarial,
            refresh_iterations,
        );

        let per_node_success: Vec<f64> = (0..n)
            .map(|i| {
                if tried[i] == 0 {
                    0.5
                } else {
                    ok[i] as f64 / tried[i] as f64
                }
            })
            .collect();
        let total_ok: u64 = ok.iter().sum();
        let total_tried: u64 = tried.iter().sum();
        let (mut honest_ok, mut honest_tried) = (0u64, 0u64);
        for i in 0..n {
            if !adversarial[i] {
                honest_ok += ok[i];
                honest_tried += tried[i];
            }
        }
        TestbedSummary {
            success_rate: if total_tried == 0 {
                0.0
            } else {
                total_ok as f64 / total_tried as f64
            },
            honest_success_rate: if honest_tried == 0 {
                0.0
            } else {
                honest_ok as f64 / honest_tried as f64
            },
            power,
            interactions,
            messages,
            per_node_success,
            true_qualities,
            refresh_iterations,
        }
    }
}

/// Convenience: build and run in one call.
///
/// # Errors
///
/// Returns an error when the configuration is invalid.
pub fn run_testbed(config: TestbedConfig) -> Result<TestbedSummary, String> {
    Ok(Testbed::new(config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mechanism: MechanismKind, malicious: f64, seed: u64) -> TestbedConfig {
        TestbedConfig {
            nodes: 60,
            rounds: 15,
            interactions_per_node: 2,
            population: PopulationConfig::with_malicious(malicious),
            mechanism,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn all_honest_population_mostly_succeeds() {
        let summary = run_testbed(quick(MechanismKind::Beta, 0.0, 1)).unwrap();
        assert!(
            summary.success_rate > 0.8,
            "success {}",
            summary.success_rate
        );
        assert_eq!(summary.interactions, 60 * 15 * 2);
    }

    #[test]
    fn reputation_beats_no_reputation_under_attack() {
        // Averaged over seeds to keep the assertion robust to one lucky
        // random-selection run.
        let mean = |mech: MechanismKind, selection: SelectionPolicy| {
            (0..3)
                .map(|seed| {
                    let mut cfg = quick(mech, 0.4, 100 + seed);
                    cfg.selection = selection;
                    cfg.rounds = 25;
                    run_testbed(cfg).unwrap().honest_success_rate
                })
                .sum::<f64>()
                / 3.0
        };
        let with = mean(
            MechanismKind::EigenTrust,
            SelectionPolicy::Proportional { sharpness: 2.0 },
        );
        let without = mean(MechanismKind::None, SelectionPolicy::Random);
        assert!(with > without + 0.03, "eigentrust {with} vs none {without}");
    }

    #[test]
    fn mechanism_power_is_measured() {
        let summary = run_testbed(quick(MechanismKind::Beta, 0.3, 3)).unwrap();
        assert!(
            summary.power.consistency > 0.7,
            "consistency {}",
            summary.power.consistency
        );
        assert!(
            summary.power.reliability > 0.7,
            "reliability {}",
            summary.power.reliability
        );
    }

    #[test]
    fn anonymization_reduces_power() {
        let clean = run_testbed(quick(MechanismKind::Beta, 0.3, 4)).unwrap();
        let mut anon_cfg = quick(MechanismKind::Beta, 0.3, 4);
        anon_cfg.anonymization = Some(AnonymizationConfig {
            strip_probability: 1.0,
            flip_probability: 0.3,
        });
        let anon = run_testbed(anon_cfg).unwrap();
        assert!(
            clean.power.consistency > anon.power.consistency,
            "clean {} vs anonymized {}",
            clean.power.consistency,
            anon.power.consistency
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run_testbed(quick(MechanismKind::PowerTrust, 0.3, 5)).unwrap();
        let b = run_testbed(quick(MechanismKind::PowerTrust, 0.3, 5)).unwrap();
        assert_eq!(a.success_rate, b.success_rate);
        assert_eq!(a.power.consistency, b.power.consistency);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_testbed(quick(MechanismKind::Beta, 0.3, 6)).unwrap();
        let b = run_testbed(quick(MechanismKind::Beta, 0.3, 7)).unwrap();
        assert_ne!(a.success_rate, b.success_rate);
    }

    #[test]
    fn message_accounting_includes_overhead() {
        let summary = run_testbed(quick(MechanismKind::TrustMe, 0.0, 8)).unwrap();
        // TrustMe: 2 transport + (holders+1)=4 overhead per interaction.
        assert_eq!(summary.messages, summary.interactions * 6);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cases = [
            TestbedConfig {
                nodes: 2,
                ..Default::default()
            },
            TestbedConfig {
                graph_degree: 7,
                ..Default::default()
            },
            TestbedConfig {
                rounds: 0,
                ..Default::default()
            },
        ];
        for c in cases {
            assert!(Testbed::new(c).is_err());
        }
    }

    #[test]
    fn per_node_success_is_populated() {
        let summary = run_testbed(quick(MechanismKind::Beta, 0.2, 9)).unwrap();
        assert_eq!(summary.per_node_success.len(), 60);
        assert!(summary
            .per_node_success
            .iter()
            .all(|s| (0.0..=1.0).contains(s)));
    }
}
