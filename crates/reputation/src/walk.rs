//! The shared power-iteration engine behind EigenTrust and PowerTrust.
//!
//! Both mechanisms compute the stationary distribution of a damped
//! random walk over the row-normalized local-trust matrix. This module
//! owns that computation: [`WalkMatrix::rebuild`] flattens a
//! [`LocalMatrix`] into CSR form inside resident buffers, and
//! [`WalkMatrix::stationary`] runs the iteration with ping-pong
//! `t`/`next` buffers — no allocation per refresh or per iteration.
//!
//! The rebuild traverses the nested (pointer-chasing) rows exactly
//! once: edges are pushed unnormalized and the freshly appended flat
//! slice is divided by the row sum in place, which is bit-identical to
//! normalizing before the push (`w / sum` either way) but touches the
//! cold nested storage half as often. The iteration itself runs over
//! the flat arrays in ascending (rater, ratee) order — the fixed
//! accumulation order that makes every refresh reproducible
//! bit-for-bit across runs, processes and thread counts.

use crate::local_matrix::LocalMatrix;

/// A row-normalized walk matrix in flat CSR form, plus the iteration
/// buffers. Rebuilt in place from the mutable [`LocalMatrix`] on every
/// refresh; cloneable (flat buffers) so mechanisms stay cloneable.
#[derive(Debug, Clone, Default)]
pub(crate) struct WalkMatrix {
    n: usize,
    /// Row start offsets (`n + 1` entries). An empty row is a *dangling*
    /// rater (no positive outgoing trust): its walk mass teleports.
    row_ptr: Vec<u32>,
    /// Ratee of each edge, ascending within a row.
    cols: Vec<u32>,
    /// Normalized trust `c_ij` of each edge.
    vals: Vec<f64>,
    /// Ping-pong iteration buffers.
    t: Vec<f64>,
    next: Vec<f64>,
}

impl WalkMatrix {
    /// Rebuilds the CSR structure from `local`, taking each cell's raw
    /// weight from `weight`. Cells with weight ≤ 0 carry no edge; each
    /// edge is normalized by its row's positive-weight sum (accumulated
    /// in ascending-ratee order); rows without any positive weight end
    /// up empty (dangling). `visit` is called for *every* cell in
    /// ascending (rater, ratee) order during the single traversal of
    /// `local` — mechanisms use it to flatten whatever per-cell data
    /// their own post-walk passes need, without re-chasing the rows.
    pub fn rebuild<C>(
        &mut self,
        n: usize,
        local: &LocalMatrix<C>,
        weight: impl Fn(&C) -> f64,
        mut visit: impl FnMut(u32, u32, &C),
    ) {
        self.n = n;
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.cols.clear();
        self.vals.clear();
        for i in 0..n {
            let row_start = self.vals.len();
            let mut sum = 0.0;
            for (j, cell) in local.row(i) {
                visit(i as u32, *j, cell);
                let w = weight(cell);
                if w > 0.0 {
                    sum += w;
                    self.cols.push(*j);
                    self.vals.push(w);
                }
            }
            // Normalize the freshly appended (cache-hot) slice in place:
            // `w / sum` exactly as if divided before the push.
            for v in &mut self.vals[row_start..] {
                *v /= sum;
            }
            self.row_ptr.push(self.cols.len() as u32);
        }
    }

    /// Runs `t ← (1 − damping) tᵀC + damping · teleport` from
    /// `t = teleport` until the L1 change drops below `epsilon` or
    /// `max_iterations` is reached. Returns the iteration count; the
    /// final vector is available via [`WalkMatrix::solution`].
    pub fn stationary(
        &mut self,
        teleport: &[f64],
        damping: f64,
        epsilon: f64,
        max_iterations: usize,
    ) -> usize {
        let n = self.n;
        debug_assert_eq!(teleport.len(), n);
        self.t.clear();
        self.t.extend_from_slice(teleport);
        self.next.clear();
        self.next.resize(n, 0.0);
        let row_ptr = &self.row_ptr;
        let cols = &self.cols;
        let vals = &self.vals;
        let mut iterations = 0;
        for _ in 0..max_iterations {
            iterations += 1;
            let t: &[f64] = &self.t;
            let next = &mut self.next;
            next.fill(0.0);
            // tᵀ C  (walk forward along trust edges), rows ascending so
            // every slot accumulates its contributions in ascending
            // rater order. Dangling raters only contribute their summed
            // mass: accumulating it per-rater (ascending, like the
            // edges) and scattering once keeps the iteration O(n + nnz)
            // — the per-dangling-rater teleport scatter it replaces was
            // O(dangling · n), which made sparse mega-scale refreshes
            // (most nodes not yet raters) quadratic in the node count.
            let mut dangling = 0.0;
            for (i, window) in row_ptr.windows(2).enumerate() {
                let (row_start, row_end) = (window[0] as usize, window[1] as usize);
                let ti = t[i];
                if row_start == row_end {
                    dangling += ti;
                } else {
                    let row_cols = &cols[row_start..row_end];
                    let row_vals = &vals[row_start..row_end];
                    for (&j, &c) in row_cols.iter().zip(row_vals) {
                        next[j as usize] += ti * c;
                    }
                }
            }
            if dangling != 0.0 {
                for (next_k, &teleport_k) in next.iter_mut().zip(teleport) {
                    *next_k += dangling * teleport_k;
                }
            }
            let mut delta = 0.0;
            for (next_k, (&t_k, &teleport_k)) in next.iter_mut().zip(t.iter().zip(teleport)) {
                let damped = (1.0 - damping) * *next_k + damping * teleport_k;
                delta += (damped - t_k).abs();
                *next_k = damped;
            }
            std::mem::swap(&mut self.t, &mut self.next);
            if delta < epsilon {
                break;
            }
        }
        iterations
    }

    /// The stationary vector computed by the last
    /// [`WalkMatrix::stationary`] call.
    pub fn solution(&self) -> &[f64] {
        &self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, edges: &[(u32, u32, f64)]) -> LocalMatrix<f64> {
        let mut m = LocalMatrix::new(n);
        for &(i, j, w) in edges {
            *m.upsert(i, j) += w;
        }
        m
    }

    /// A direct transcription of the nested implementation (with the
    /// same summed-dangling-mass teleport the engine uses), kept as the
    /// reference the flat CSR engine must match bit-for-bit.
    fn reference_stationary(
        n: usize,
        local: &LocalMatrix<f64>,
        teleport: &[f64],
        damping: f64,
        epsilon: f64,
        max_iterations: usize,
    ) -> (Vec<f64>, usize) {
        let mut row_sum = vec![0.0; n];
        for (i, _, &w) in local.iter() {
            row_sum[i as usize] += w.max(0.0);
        }
        let mut t = teleport.to_vec();
        let mut iterations = 0;
        for _ in 0..max_iterations {
            iterations += 1;
            let mut next = vec![0.0; n];
            let mut dangling = 0.0;
            for i in 0..n {
                if row_sum[i] == 0.0 {
                    dangling += t[i];
                } else {
                    for (j, w) in local.row(i) {
                        if *w > 0.0 {
                            next[*j as usize] += t[i] * (*w / row_sum[i]);
                        }
                    }
                }
            }
            if dangling != 0.0 {
                for (k, next_k) in next.iter_mut().enumerate() {
                    *next_k += dangling * teleport[k];
                }
            }
            for k in 0..n {
                next[k] = (1.0 - damping) * next[k] + damping * teleport[k];
            }
            let delta: f64 = next.iter().zip(&t).map(|(a, b)| (a - b).abs()).sum();
            t = next;
            if delta < epsilon {
                break;
            }
        }
        (t, iterations)
    }

    #[test]
    fn flat_engine_matches_nested_reference_bit_for_bit() {
        let mut rng = tsn_simnet::SimRng::seed_from_u64(11);
        for case in 0..30 {
            let n = 4 + (case % 9);
            let mut local = LocalMatrix::new(n);
            for _ in 0..n * 6 {
                let i = rng.gen_range(0..n as u32);
                let j = rng.gen_range(0..n as u32);
                // Mixed signs so some rows end up dangling.
                *local.upsert(i, j) += rng.gen_f64() * 2.0 - 0.7;
            }
            let teleport: Vec<f64> = vec![1.0 / n as f64; n];
            let (expected, expected_iters) =
                reference_stationary(n, &local, &teleport, 0.15, 1e-9, 200);
            let mut walk = WalkMatrix::default();
            let mut visited = 0usize;
            walk.rebuild(n, &local, |&w| w, |_, _, _| visited += 1);
            assert_eq!(visited, local.iter().count(), "visit sees every cell");
            let iters = walk.stationary(&teleport, 0.15, 1e-9, 200);
            assert_eq!(iters, expected_iters, "case {case}");
            assert_eq!(walk.solution(), &expected[..], "case {case}");
        }
    }

    #[test]
    fn dangling_mass_teleports_to_hand_computed_values() {
        // Independent of both the engine and the nested reference
        // (which share the summed-dangling-mass formulation): one
        // iteration against values computed by hand, all dyadic so the
        // comparison is float-exact. n = 3; only node 0 has an outgoing
        // edge (0 → 1, weight 1); nodes 1 and 2 dangle.
        //
        //   t = teleport = [1/2, 1/4, 1/4], damping 1/2
        //   edges:    next  = [0, t₀, 0]              = [0, 1/2, 0]
        //   dangling: D = t₁ + t₂ = 1/2; next += D·teleport
        //                                           → [1/4, 5/8, 1/8]
        //   damping:  next = 1/2·next + 1/2·teleport → [3/8, 7/16, 3/16]
        let local = matrix(3, &[(0, 1, 1.0)]);
        let mut walk = WalkMatrix::default();
        walk.rebuild(3, &local, |&w| w, |_, _, _| {});
        let teleport = [0.5, 0.25, 0.25];
        let iters = walk.stationary(&teleport, 0.5, 1e-300, 1);
        assert_eq!(iters, 1);
        assert_eq!(walk.solution(), &[0.375, 0.4375, 0.1875]);
    }

    #[test]
    fn all_dangling_converges_to_teleport() {
        let local = matrix(3, &[]);
        let teleport = [0.5, 0.25, 0.25];
        let mut walk = WalkMatrix::default();
        walk.rebuild(3, &local, |&w| w, |_, _, _| {});
        walk.stationary(&teleport, 0.15, 1e-9, 200);
        for (got, want) in walk.solution().iter().zip(&teleport) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn rebuild_is_reusable() {
        let mut walk = WalkMatrix::default();
        let a = matrix(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let teleport = vec![1.0 / 3.0; 3];
        walk.rebuild(3, &a, |&w| w, |_, _, _| {});
        walk.stationary(&teleport, 0.15, 1e-9, 200);
        let cycle = walk.solution().to_vec();
        // Rebuild over a different matrix reuses every buffer.
        let b = matrix(3, &[(0, 1, 1.0)]);
        walk.rebuild(3, &b, |&w| w, |_, _, _| {});
        walk.stationary(&teleport, 0.15, 1e-9, 200);
        assert_ne!(walk.solution(), &cycle[..]);
        // And back: identical to the first run.
        walk.rebuild(3, &a, |&w| w, |_, _, _| {});
        walk.stationary(&teleport, 0.15, 1e-9, 200);
        assert_eq!(walk.solution(), &cycle[..]);
    }
}
