//! TrustMe-style anonymous trust management (Singh & Liu — P2P 2003),
//! the paper's ref \[20\].
//!
//! TrustMe decouples *who stores a trust value* from *whom it is about*:
//! each peer's reputation lives at `k` randomly assigned, mutually unknown
//! **trust-holder** peers, and all protocol traffic is anonymized, so the
//! system never learns who rated whom. The price is simpler aggregation —
//! trust-holders can only average the (anonymous) reports they receive —
//! and per-report message overhead for the holder indirection.
//!
//! We model exactly that: rater identity is discarded *by construction*
//! (even when the disclosure policy would allow it), reports are sharded
//! over `k` holders, and the queried score is the holder-average with a
//! Laplace-smoothed prior. The mechanism is thus natively
//! privacy-preserving but less consistent with ground truth than
//! EigenTrust under lying minorities — the trade-off the paper places on
//! the privacy–reputation axis.

use crate::gathering::ReportView;
use crate::mechanism::{MechanismKind, ReputationMechanism};
use tsn_simnet::NodeId;

/// TrustMe parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustMeConfig {
    /// Number of trust-holder peers per subject (replication factor).
    pub holders: usize,
    /// Smoothing pseudo-count toward the 0.5 prior.
    pub smoothing: f64,
}

impl Default for TrustMeConfig {
    fn default() -> Self {
        TrustMeConfig {
            holders: 3,
            smoothing: 2.0,
        }
    }
}

impl TrustMeConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.holders == 0 {
            return Err("holders must be positive".into());
        }
        if self.smoothing < 0.0 {
            return Err("smoothing must be non-negative".into());
        }
        Ok(())
    }
}

/// Per-subject state sharded across simulated trust-holders.
#[derive(Debug, Clone, Default)]
struct HolderShard {
    sum: f64,
    count: u64,
}

/// The TrustMe mechanism.
#[derive(Debug, Clone)]
pub struct TrustMe {
    config: TrustMeConfig,
    /// `shards[subject][holder]`.
    shards: Vec<Vec<HolderShard>>,
    /// Round-robin cursor so reports spread deterministically over holders.
    cursor: Vec<usize>,
}

impl TrustMe {
    /// Creates an instance for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(n: usize, config: TrustMeConfig) -> Self {
        if let Err(e) = config.validate() {
            // tsn-lint: allow(no-unwrap, "documented contract: new() panics on a config that validate() rejects; fallible callers validate first")
            panic!("invalid TrustMe config: {e}");
        }
        let holders = config.holders;
        TrustMe {
            config,
            shards: (0..n)
                .map(|_| vec![HolderShard::default(); holders])
                .collect(),
            cursor: vec![0; n],
        }
    }

    /// Reports stored about `node` across all its holders.
    pub fn report_count(&self, node: NodeId) -> u64 {
        self.shards[node.index()].iter().map(|s| s.count).sum()
    }
}

impl ReputationMechanism for TrustMe {
    fn kind(&self) -> MechanismKind {
        MechanismKind::TrustMe
    }

    fn resize(&mut self, n: usize) {
        while self.shards.len() < n {
            self.shards
                .push(vec![HolderShard::default(); self.config.holders]);
            self.cursor.push(0);
        }
    }

    fn record(&mut self, report: &ReportView) {
        let subject = report.ratee.index();
        debug_assert!(subject < self.shards.len(), "ratee out of range");
        // Anonymity by construction: the rater identity, even if disclosed,
        // never reaches a trust-holder — so no self-report filtering is
        // possible either (a known TrustMe weakness we model faithfully).
        let holder = self.cursor[subject];
        self.cursor[subject] = (holder + 1) % self.config.holders;
        let shard = &mut self.shards[subject][holder];
        shard.sum += report.value();
        shard.count += 1;
    }

    fn refresh(&mut self) -> usize {
        0 // averaging is incremental
    }

    fn score(&self, node: NodeId) -> f64 {
        if node.index() >= self.shards.len() {
            return 0.5;
        }
        // Query all holders; average with smoothing toward the prior.
        let (sum, count) = self.shards[node.index()]
            .iter()
            .fold((0.0, 0u64), |(s, c), shard| {
                (s + shard.sum, c + shard.count)
            });
        let k = self.config.smoothing;
        (sum + 0.5 * k) / (count as f64 + k)
    }

    fn len(&self) -> usize {
        self.shards.len()
    }

    fn overhead_per_report(&self) -> usize {
        // One anonymized submission per holder plus the certificate
        // exchange before the transaction (modelled as one message).
        self.config.holders + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gathering::{DisclosurePolicy, FeedbackReport};
    use crate::mechanism::InteractionOutcome;
    use tsn_simnet::SimTime;

    fn view(ratee: u32, good: bool) -> ReportView {
        DisclosurePolicy::full().view(&FeedbackReport {
            rater: NodeId(0),
            ratee: NodeId(ratee),
            outcome: if good {
                InteractionOutcome::Success { quality: 1.0 }
            } else {
                InteractionOutcome::Failure
            },
            topic: None,
            at: SimTime::ZERO,
        })
    }

    #[test]
    fn prior_is_half() {
        let m = TrustMe::new(2, TrustMeConfig::default());
        assert_eq!(m.score(NodeId(0)), 0.5);
    }

    #[test]
    fn averaging_with_smoothing() {
        let mut m = TrustMe::new(
            2,
            TrustMeConfig {
                holders: 3,
                smoothing: 2.0,
            },
        );
        for _ in 0..4 {
            m.record(&view(1, true));
        }
        // (4 + 1) / (4 + 2) = 5/6
        assert!((m.score(NodeId(1)) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(m.report_count(NodeId(1)), 4);
    }

    #[test]
    fn reports_shard_round_robin() {
        let mut m = TrustMe::new(
            1,
            TrustMeConfig {
                holders: 3,
                smoothing: 0.0,
            },
        );
        for _ in 0..7 {
            m.record(&view(0, true));
        }
        let counts: Vec<u64> = m.shards[0].iter().map(|s| s.count).collect();
        assert_eq!(counts, vec![3, 2, 2]);
    }

    #[test]
    fn bad_reports_lower_score() {
        let mut m = TrustMe::new(2, TrustMeConfig::default());
        for _ in 0..10 {
            m.record(&view(1, false));
        }
        assert!(m.score(NodeId(1)) < 0.15);
    }

    #[test]
    fn rater_identity_is_discarded_by_construction() {
        // Self-promotion works against TrustMe (anonymity prevents
        // filtering) — we assert the modelled weakness explicitly.
        let mut m = TrustMe::new(2, TrustMeConfig::default());
        let self_report = DisclosurePolicy::full().view(&FeedbackReport {
            rater: NodeId(1),
            ratee: NodeId(1),
            outcome: InteractionOutcome::Success { quality: 1.0 },
            topic: None,
            at: SimTime::ZERO,
        });
        m.record(&self_report);
        assert!(
            m.score(NodeId(1)) > 0.5,
            "anonymous self-report is accepted"
        );
    }

    #[test]
    fn overhead_scales_with_holders() {
        let m = TrustMe::new(
            1,
            TrustMeConfig {
                holders: 5,
                smoothing: 1.0,
            },
        );
        assert_eq!(m.overhead_per_report(), 6);
    }

    #[test]
    fn resize_grows() {
        let mut m = TrustMe::new(1, TrustMeConfig::default());
        m.resize(3);
        assert_eq!(m.len(), 3);
        m.record(&view(2, true));
        assert!(m.score(NodeId(2)) > 0.5);
    }

    #[test]
    fn config_validation() {
        assert!(TrustMeConfig {
            holders: 0,
            smoothing: 1.0
        }
        .validate()
        .is_err());
        assert!(TrustMeConfig {
            holders: 1,
            smoothing: -1.0
        }
        .validate()
        .is_err());
        assert!(TrustMeConfig::default().validate().is_ok());
    }
}
